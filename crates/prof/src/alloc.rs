//! Opt-in global-allocator instrumentation.
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`]; a binary installs it
//! with `#[global_allocator]` and the counters stay dormant (one
//! relaxed load per allocation) until `SFN_PROF_ALLOC=1` (or
//! [`set_alloc_tracking`]) arms them. [`crate::KernelScope`] snapshots
//! the counters at entry and attributes the delta to the kernel at
//! exit.
//!
//! The per-scope *peak* is approximate by construction: the allocator
//! tracks one process-wide high-water mark of live bytes, and a scope
//! reports how far that mark rose above the live size at its entry. A
//! peak reached on another thread during the scope is charged to the
//! scope — see DESIGN.md §11.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static TRACK: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// True when allocation tracking is armed.
pub fn alloc_tracking() -> bool {
    TRACK.load(Ordering::Relaxed)
}

/// Arms or disarms allocation tracking (the `SFN_PROF_ALLOC=1` switch,
/// programmatically). Has no visible effect unless [`CountingAlloc`]
/// is installed as the global allocator.
pub fn set_alloc_tracking(on: bool) {
    set_tracking(on);
}

pub(crate) fn set_tracking(on: bool) {
    TRACK.store(on, Ordering::Relaxed);
}

fn note_alloc(size: usize) {
    let size = size as u64;
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(size, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

fn note_dealloc(size: usize) {
    let size = size as u64;
    // Saturating decrement: frees of blocks allocated before tracking
    // was armed must not wrap the live counter.
    let _ = LIVE_BYTES.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_sub(size))
    });
}

/// Counter snapshot used for per-scope deltas.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct AllocSnapshot {
    pub allocs: u64,
    pub bytes: u64,
    pub live: u64,
    pub peak: u64,
}

/// Delta between two snapshots, as per-scope attribution.
pub(crate) struct AllocDelta {
    pub allocs: u64,
    pub bytes: u64,
    pub peak: u64,
}

pub(crate) fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOCS.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        live: LIVE_BYTES.load(Ordering::Relaxed),
        peak: PEAK_BYTES.load(Ordering::Relaxed),
    }
}

impl AllocSnapshot {
    /// `self` is the scope-exit snapshot, `start` the scope-entry one.
    pub(crate) fn delta_since(&self, start: &AllocSnapshot) -> AllocDelta {
        let peak = if self.peak > start.peak {
            // The high-water mark moved during the scope: report how far
            // above the entry live size it rose.
            self.peak.saturating_sub(start.live)
        } else {
            0
        };
        AllocDelta {
            allocs: self.allocs.saturating_sub(start.allocs),
            bytes: self.bytes.saturating_sub(start.bytes),
            peak,
        }
    }
}

/// A counting wrapper around the system allocator. Install in a binary
/// with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: sfn_prof::CountingAlloc = sfn_prof::CountingAlloc;
/// ```
///
/// Counting stays off (one relaxed load per call) until
/// `SFN_PROF_ALLOC=1` / [`set_alloc_tracking`] arms it.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() && TRACK.load(Ordering::Relaxed) {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if TRACK.load(Ordering::Relaxed) {
            note_dealloc(layout.size());
        }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() && TRACK.load(Ordering::Relaxed) {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && TRACK.load(Ordering::Relaxed) {
            note_alloc(new_size);
            note_dealloc(layout.size());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The prof test binary does not install CountingAlloc globally (that
    // would perturb every other test); exercise the bookkeeping and the
    // GlobalAlloc implementation directly instead. The counters are
    // process-global, so the tests that arm tracking serialise here.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn deltas_attribute_allocations_between_snapshots() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_tracking(true);
        let before = snapshot();
        note_alloc(1024);
        note_alloc(4096);
        note_dealloc(1024);
        let after = snapshot();
        set_tracking(false);
        let d = after.delta_since(&before);
        assert_eq!(d.allocs, 2);
        assert_eq!(d.bytes, 5120);
        assert!(d.peak >= 4096, "peak {} covers the larger block", d.peak);
    }

    #[test]
    fn untracked_frees_never_wrap_live_bytes() {
        note_dealloc(usize::MAX);
        assert!(LIVE_BYTES.load(Ordering::Relaxed) < u64::MAX / 2);
    }

    #[test]
    fn counting_alloc_round_trips_real_memory() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let a = CountingAlloc;
        let layout = Layout::from_size_align(256, 8).unwrap();
        set_tracking(true);
        let before = snapshot();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            p.write_bytes(0xAB, 256);
            a.dealloc(p, layout);
        }
        let after = snapshot();
        set_tracking(false);
        let d = after.delta_since(&before);
        assert!(d.allocs >= 1);
        assert!(d.bytes >= 256);
    }
}
