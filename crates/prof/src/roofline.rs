//! Roofline calibration and classification.
//!
//! The roofline model places a kernel by its *arithmetic intensity*
//! (FLOPs per byte of memory traffic) against the *machine balance*
//! (peak FLOP/s ÷ stream bandwidth): below the balance the kernel
//! cannot saturate the ALUs no matter how well it is scheduled
//! (memory-bound), above it the memory system is not the limit
//! (compute-bound). [`calibrate`] measures both machine numbers with
//! short micro-benchmarks; [`classify`] is the pure decision function
//! so the edge cases are testable without timing anything.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Which resource bounds a kernel on the calibrated roofline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Arithmetic intensity at or above the machine balance: the ALUs
    /// are the ceiling.
    Compute,
    /// Intensity below the balance: memory traffic is the ceiling.
    Memory,
}

impl Bound {
    /// The lowercase name used in reports (`"compute"` / `"memory"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Bound::Compute => "compute",
            Bound::Memory => "memory",
        }
    }
}

/// Arithmetic intensity in FLOPs per byte.
///
/// Conventions for the degenerate corners: zero FLOPs is intensity 0
/// (a pure data move), and nonzero FLOPs over zero bytes is infinite
/// intensity (a pure compute loop) — both well-ordered against any
/// finite machine balance.
pub fn intensity(flops: u64, bytes: u64) -> f64 {
    if flops == 0 {
        return 0.0;
    }
    if bytes == 0 {
        return f64::INFINITY;
    }
    flops as f64 / bytes as f64
}

/// Classifies a kernel against a machine balance (FLOPs per byte).
///
/// Zero-FLOP kernels are memory-bound by definition; zero-byte kernels
/// with any FLOPs are compute-bound. A non-finite or non-positive
/// balance (a degenerate calibration) classifies everything
/// memory-bound except pure-compute kernels, the conservative answer
/// for SIMD planning.
pub fn classify(flops: u64, bytes: u64, balance: f64) -> Bound {
    if flops == 0 {
        return Bound::Memory;
    }
    if bytes == 0 {
        return Bound::Compute;
    }
    let i = intensity(flops, bytes);
    if balance.is_finite() && balance > 0.0 && i >= balance {
        Bound::Compute
    } else {
        Bound::Memory
    }
}

/// Measured machine ceilings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Peak sustained scalar FLOP/s, in GFLOP/s.
    pub peak_gflops: f64,
    /// Sustained stream (copy) bandwidth, in GB/s.
    pub stream_gbps: f64,
}

impl Calibration {
    /// Machine balance in FLOPs per byte.
    pub fn balance(&self) -> f64 {
        if self.stream_gbps > 0.0 {
            self.peak_gflops / self.stream_gbps
        } else {
            f64::INFINITY
        }
    }

    /// Classifies a kernel's totals against this machine.
    pub fn classify(&self, flops: u64, bytes: u64) -> Bound {
        classify(flops, bytes, self.balance())
    }
}

fn calib_budget() -> Duration {
    let ms = std::env::var("SFN_PROF_CALIB_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(10)
        .clamp(1, 1000);
    Duration::from_millis(ms)
}

/// Peak FLOP/s estimate: independent multiply–add chains, enough of
/// them to cover the FPU latency×throughput product.
fn measure_peak_flops(budget: Duration) -> f64 {
    let mut acc = [1.0f64, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7];
    let c = 1.000_000_001_f64;
    let d = 1e-9f64;
    let start = Instant::now();
    let mut ops: u64 = 0;
    loop {
        for _ in 0..4096 {
            for a in &mut acc {
                *a = *a * c + d;
            }
        }
        ops += 2 * acc.len() as u64 * 4096;
        if start.elapsed() >= budget {
            break;
        }
    }
    std::hint::black_box(acc);
    ops as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// Stream bandwidth estimate: buffer-to-buffer copies over arrays well
/// past L2 (8 MiB each way), counting read + write traffic.
fn measure_stream_bandwidth(budget: Duration) -> f64 {
    let n = 1 << 20; // 1 Mi f64 = 8 MiB per buffer
    let src = vec![1.0f64; n];
    let mut dst = vec![0.0f64; n];
    let start = Instant::now();
    let mut bytes: u64 = 0;
    loop {
        dst.copy_from_slice(&src);
        std::hint::black_box(&dst);
        bytes += 16 * n as u64; // 8 read + 8 written per element
        if start.elapsed() >= budget {
            break;
        }
    }
    bytes as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// Runs the calibration micro-benchmarks (`SFN_PROF_CALIB_MS` per
/// phase, default 10 ms each).
pub fn calibrate() -> Calibration {
    let budget = calib_budget();
    Calibration {
        peak_gflops: measure_peak_flops(budget) / 1e9,
        stream_gbps: measure_stream_bandwidth(budget) / 1e9,
    }
}

/// The process-wide calibration, measured once on first use.
pub fn calibration() -> Calibration {
    static CAL: OnceLock<Calibration> = OnceLock::new();
    *CAL.get_or_init(calibrate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_edge_cases() {
        assert_eq!(intensity(0, 0), 0.0, "no work at all");
        assert_eq!(intensity(0, 1024), 0.0, "pure data move");
        assert_eq!(intensity(1024, 0), f64::INFINITY, "pure compute");
        assert_eq!(intensity(100, 50), 2.0);
    }

    #[test]
    fn classification_edge_cases() {
        let balance = 8.0;
        assert_eq!(classify(0, 0, balance), Bound::Memory, "zero flops, zero bytes");
        assert_eq!(classify(0, 1 << 30, balance), Bound::Memory, "zero flops");
        assert_eq!(classify(1 << 30, 0, balance), Bound::Compute, "zero bytes");
        assert_eq!(classify(80, 10, balance), Bound::Compute, "at the balance point");
        assert_eq!(classify(79, 10, balance), Bound::Memory, "just below");
    }

    #[test]
    fn saturated_counters_classify_without_overflow() {
        // u64::MAX counters must convert to f64 and order sanely.
        assert!(intensity(u64::MAX, 1).is_finite());
        assert_eq!(classify(u64::MAX, 1, 8.0), Bound::Compute);
        assert_eq!(classify(1, u64::MAX, 8.0), Bound::Memory);
        assert_eq!(classify(u64::MAX, u64::MAX, 8.0), Bound::Memory);
    }

    #[test]
    fn degenerate_balance_is_conservative() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert_eq!(classify(100, 10, bad), Bound::Memory, "balance {bad}");
            assert_eq!(classify(100, 0, bad), Bound::Compute, "pure compute, balance {bad}");
        }
    }

    #[test]
    fn calibration_measures_positive_ceilings() {
        std::env::set_var("SFN_PROF_CALIB_MS", "2");
        let cal = calibrate();
        std::env::remove_var("SFN_PROF_CALIB_MS");
        assert!(cal.peak_gflops > 0.0, "{cal:?}");
        assert!(cal.stream_gbps > 0.0, "{cal:?}");
        assert!(cal.balance() > 0.0);
    }
}
