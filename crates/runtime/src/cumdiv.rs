//! `CumDivNorm` accumulation and extrapolation (§6.1).
//!
//! "We use five time steps to build a linear regression model … we
//! skip the first five time steps and build the regression model after
//! each five steps. Also, in each five time steps (a check interval)
//! … we skip the first two to make sure the trend is stable and only
//! use the remaining three to build the model."

use sfn_stats::LinearRegression;

/// Accumulates per-step `DivNorm` values and predicts the final
/// `CumDivNorm` by extrapolating the recent growth rate.
#[derive(Debug, Clone)]
pub struct CumDivNormTracker {
    cum: Vec<f64>,
    warmup_steps: usize,
    skip_per_interval: usize,
}

impl CumDivNormTracker {
    /// Creates a tracker with the paper's defaults: skip the first 5
    /// steps entirely, and within each interval's fit window skip the
    /// first 2 points.
    pub fn new() -> Self {
        Self::with_params(5, 2)
    }

    /// Custom warm-up length and per-interval skip count.
    pub fn with_params(warmup_steps: usize, skip_per_interval: usize) -> Self {
        Self {
            cum: Vec::new(),
            warmup_steps,
            skip_per_interval,
        }
    }

    /// Rebuilds a tracker from a previously captured cumulative series
    /// and its parameters — the durable-checkpoint resume path. The
    /// series is adopted verbatim so predictions after resume are
    /// bit-identical to the uninterrupted run.
    pub fn from_parts(series: Vec<f64>, warmup_steps: usize, skip_per_interval: usize) -> Self {
        Self { cum: series, warmup_steps, skip_per_interval }
    }

    /// The configured warm-up length.
    pub fn warmup_steps(&self) -> usize {
        self.warmup_steps
    }

    /// The configured per-interval skip count.
    pub fn skip_per_interval(&self) -> usize {
        self.skip_per_interval
    }

    /// Records the `DivNorm` of a completed step (Eq. 9 accumulation).
    pub fn push(&mut self, div_norm: f64) {
        let prev = self.cum.last().copied().unwrap_or(0.0);
        self.cum.push(prev + div_norm.max(0.0));
    }

    /// Steps recorded so far.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// True when no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// The running `CumDivNorm` series.
    pub fn series(&self) -> &[f64] {
        &self.cum
    }

    /// Current accumulated value.
    pub fn current(&self) -> f64 {
        self.cum.last().copied().unwrap_or(0.0)
    }

    /// Clears the history (used when the scheduler restarts with PCG).
    pub fn reset(&mut self) {
        self.cum.clear();
    }

    /// Predicts `CumDivNorm` at step `final_step` (1-based count of
    /// total steps) by fitting the last `window` points, skipping the
    /// first `skip_per_interval` of them.
    ///
    /// Returns `None` during warm-up or when the fit is degenerate.
    pub fn predict_final(&self, window: usize, final_step: usize) -> Option<f64> {
        let n = self.cum.len();
        if n <= self.warmup_steps || n < window {
            return None;
        }
        let usable = window.saturating_sub(self.skip_per_interval);
        if usable < 2 {
            return None;
        }
        let start = n - usable;
        let xs: Vec<f64> = (start..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = self.cum[start..n].to_vec();
        let fit = LinearRegression::fit(&xs, &ys)?;
        // Growth can never be negative: CumDivNorm is non-decreasing.
        let slope = fit.slope.max(0.0);
        let last = self.cum[n - 1];
        let remaining = final_step.saturating_sub(n) as f64;
        Some(last + slope * remaining)
    }
}

impl Default for CumDivNormTracker {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_monotonically() {
        let mut t = CumDivNormTracker::new();
        for v in [1.0, 2.0, 0.5] {
            t.push(v);
        }
        assert_eq!(t.series(), &[1.0, 3.0, 3.5]);
        assert_eq!(t.current(), 3.5);
    }

    #[test]
    fn negative_divnorm_is_clamped() {
        let mut t = CumDivNormTracker::new();
        t.push(-5.0);
        assert_eq!(t.current(), 0.0);
    }

    #[test]
    fn no_prediction_during_warmup() {
        let mut t = CumDivNormTracker::new();
        for _ in 0..5 {
            t.push(1.0);
        }
        assert_eq!(t.predict_final(5, 128), None);
    }

    #[test]
    fn exact_extrapolation_of_linear_growth() {
        let mut t = CumDivNormTracker::new();
        // Constant DivNorm 2.0 -> CumDivNorm = 2·k exactly.
        for _ in 0..10 {
            t.push(2.0);
        }
        let predicted = t.predict_final(5, 128).expect("prediction available");
        assert!((predicted - 256.0).abs() < 1e-9, "predicted {predicted}");
    }

    #[test]
    fn early_transient_is_ignored() {
        let mut t = CumDivNormTracker::new();
        // Wild warm-up, then a steady 1.0 growth rate.
        for v in [50.0, 30.0, 10.0, 5.0, 2.0] {
            t.push(v);
        }
        for _ in 0..10 {
            t.push(1.0);
        }
        let n = t.len();
        let predicted = t.predict_final(5, n + 10).expect("prediction");
        assert!((predicted - (t.current() + 10.0)).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_state() {
        let mut t = CumDivNormTracker::new();
        for _ in 0..8 {
            t.push(1.0);
        }
        t.reset();
        assert!(t.is_empty());
        assert_eq!(t.predict_final(5, 100), None);
    }

    #[test]
    fn too_short_history_yields_none() {
        // Shorter than the fit window (even past warm-up): no prediction
        // — the scheduler treats this as "keep the current model".
        let mut t = CumDivNormTracker::with_params(2, 2);
        for _ in 0..4 {
            t.push(1.0);
        }
        assert_eq!(t.predict_final(5, 100), None);
        // A window whose usable part is < 2 points is degenerate too.
        assert_eq!(t.predict_final(3, 100), None);
    }

    #[test]
    fn all_zero_history_predicts_zero() {
        // An exact projector produces DivNorm ~ 0 every step; the
        // extrapolation must stay finite and pinned at zero rather than
        // failing or inventing growth.
        let mut t = CumDivNormTracker::new();
        for _ in 0..10 {
            t.push(0.0);
        }
        let p = t.predict_final(5, 128).expect("flat history still fits");
        assert_eq!(p, 0.0);
    }

    #[test]
    fn non_finite_divnorm_does_not_poison_the_series() {
        // `push` clamps via f64::max(0.0), which maps NaN to 0.0 — a
        // corrupted step cannot poison every later prediction.
        let mut t = CumDivNormTracker::new();
        for _ in 0..6 {
            t.push(1.0);
        }
        t.push(f64::NAN);
        for _ in 0..5 {
            t.push(1.0);
        }
        let p = t.predict_final(5, 64).expect("prediction");
        assert!(p.is_finite(), "prediction {p} not finite");
    }

    #[test]
    fn from_parts_resumes_bit_identically() {
        let mut live = CumDivNormTracker::with_params(4, 1);
        for v in [2.0, 1.5, 0.25, 3.0, 1.0, 1.0, 1.0] {
            live.push(v);
        }
        let mut resumed = CumDivNormTracker::from_parts(
            live.series().to_vec(),
            live.warmup_steps(),
            live.skip_per_interval(),
        );
        assert_eq!(resumed.series(), live.series());
        // Predictions after further pushes stay bit-identical.
        for v in [0.5, 0.5, 0.5] {
            live.push(v);
            resumed.push(v);
        }
        assert_eq!(live.predict_final(5, 64), resumed.predict_final(5, 64));
    }

    #[test]
    fn prediction_at_current_step_is_current_value() {
        let mut t = CumDivNormTracker::new();
        for _ in 0..12 {
            t.push(3.0);
        }
        let p = t.predict_final(5, 12).expect("prediction");
        assert!((p - t.current()).abs() < 1e-9);
    }
}
