//! The quality-aware model-switch algorithm (Algorithm 2), hardened
//! with a self-healing loop.
//!
//! The runtime starts with the candidate the MLP rates most likely to
//! meet the requirement, then at every check interval predicts the
//! final quality loss (`CumDivNorm` regression → KNN lookup) and
//! switches to a more accurate model when the prediction violates the
//! requirement, to a faster one when there is comfortable slack, and
//! restarts with PCG when no candidate can satisfy the requirement.
//!
//! On top of Algorithm 2 the loop carries a fault-recovery layer:
//!
//! * a **checkpoint** (simulation snapshot + tracker state) is refreshed
//!   at every healthy check interval;
//! * a corrupted step (NaN/∞ state or `DivNorm`) **strikes** the running
//!   model in a [`QuarantineTable`], rolls the simulation back to the
//!   checkpoint and switches to the best available replacement — far
//!   cheaper than the from-scratch PCG restart of Algorithm 2 line 16;
//! * when every candidate is quarantined or ejected the run **degrades**
//!   to the exact PCG projector from the checkpoint onward — a
//!   guaranteed-terminal path: no further model can corrupt the state.
//!
//! Termination: every loop iteration either advances the step counter
//! or records a strike; strikes are bounded by `MAX_STRIKES` per model,
//! and once all models are barred the degraded tail is a straight loop.

use crate::cumdiv::CumDivNormTracker;
use crate::error::RuntimeError;
use crate::knn::KnnDatabase;
use crate::persist::{self, DurableCheckpointer};
use crate::quarantine::{QuarantineDecision, QuarantineTable};
use sfn_ckpt::{CheckpointDoc, SchedulerState};
use sfn_grid::Field2;
use sfn_nn::network::SavedModel;
use sfn_nn::Network;
use sfn_obs::json::{obj, FromJson, JsonError, ToJson, Value};
use sfn_obs::{Level, ScopedTimer};
use sfn_sim::{ExactProjector, Simulation};
use sfn_solver::{MicPreconditioner, PcgSolver};
use sfn_surrogate::NeuralProjector;

/// One candidate network with its offline statistics.
#[derive(Debug, Clone)]
pub struct CandidateModel {
    /// Display name (`M7` style).
    pub name: String,
    /// Trained weights.
    pub saved: SavedModel,
    /// MLP-predicted probability of meeting the requirement.
    pub probability: f64,
    /// Offline mean execution time per simulation (seconds).
    pub exec_time: f64,
    /// Offline mean quality loss (accuracy rank; lower = better).
    pub quality_loss: f64,
}

/// Scheduler parameters.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// The check interval `L` (paper default 5).
    pub check_interval: usize,
    /// Total simulation steps `N`.
    pub total_steps: usize,
    /// Quality requirement `q` (Eq. 3 loss target).
    pub quality_target: f64,
    /// Relative "close to q" band of Algorithm 2 line 9 (e.g. 0.15 =
    /// predictions within ±15% of `q` keep the current model).
    pub tolerance: f64,
    /// Use MLP probabilities to pick the starting model (Figure 12's
    /// "with MLP"); otherwise start from the fastest candidate and only
    /// escalate, mimicking the paper's no-MLP baseline.
    pub use_mlp: bool,
    /// Enable Algorithm 2's model switching. With `false` the starting
    /// model runs to completion unchecked — the "static" policy every
    /// single-model baseline in the paper implicitly uses; exposed for
    /// the scheduler ablation. Corruption recovery stays active either
    /// way: it is a safety net, not part of the ablated policy.
    pub adaptive: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            check_interval: 5,
            total_steps: 64,
            quality_target: 0.013,
            tolerance: 0.15,
            use_mlp: true,
            adaptive: true,
        }
    }
}

/// External bounds on one run, checked at step boundaries. The serving
/// layer attaches a request's deadline budget and (under brownout) a
/// reduced step budget; a run that hits either sheds the remaining
/// work instead of running to completion.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunLimits {
    /// Wall-clock deadline. Checked after every step (including the
    /// PCG restart/degraded tails), so a run overshoots its budget by
    /// at most one step.
    pub deadline: Option<std::time::Instant>,
    /// Hard cap on executed steps, overriding `total_steps` when
    /// smaller. Rolled-back steps count: the budget bounds work done,
    /// not progress achieved.
    pub max_steps: Option<usize>,
}

impl RunLimits {
    /// No bounds — the behaviour of [`SmartRuntime::run`].
    pub fn none() -> Self {
        Self::default()
    }

    /// Which bound (if any) the run has hit at `step` after `executed`
    /// total executed steps.
    fn exceeded(&self, step: usize, executed: usize) -> Option<Truncation> {
        if let Some(max) = self.max_steps {
            if executed >= max {
                return Some(Truncation::StepBudget { step });
            }
        }
        if let Some(deadline) = self.deadline {
            if std::time::Instant::now() >= deadline {
                return Some(Truncation::DeadlineExpired { step });
            }
        }
        None
    }
}

/// Why a bounded run stopped before `total_steps`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truncation {
    /// The [`RunLimits::deadline`] passed; work past `step` was shed.
    DeadlineExpired {
        /// Last completed simulation step.
        step: usize,
    },
    /// The [`RunLimits::max_steps`] budget was consumed at `step`.
    StepBudget {
        /// Last completed simulation step.
        step: usize,
    },
}

impl Truncation {
    /// Stable label used in `runtime.shed` events.
    pub fn reason(&self) -> &'static str {
        match self {
            Truncation::DeadlineExpired { .. } => "deadline",
            Truncation::StepBudget { .. } => "step_budget",
        }
    }

    /// Last completed step before the shed.
    pub fn step(&self) -> usize {
        match self {
            Truncation::DeadlineExpired { step } | Truncation::StepBudget { step } => *step,
        }
    }
}

/// The Algorithm 2 line 8-16 verdict at one check interval, carrying
/// the switch target with it so acting on the decision can never
/// dereference an empty candidate neighbourhood (the verdict is typed,
/// not a string to re-interpret).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Escalate to the (available) candidate at this index.
    SwitchUp(usize),
    /// Relax to the (available) candidate at this index.
    SwitchDown(usize),
    /// No available candidate can meet the target: restart on PCG.
    Restart,
    /// Prediction inside the band (or nowhere better to go).
    Keep,
}

impl Action {
    /// Stable label for `scheduler.decision` events (the audit replay
    /// contract).
    fn as_str(&self) -> &'static str {
        match self {
            Action::SwitchUp(_) => "switch_up",
            Action::SwitchDown(_) => "switch_down",
            Action::Restart => "restart",
            Action::Keep => "keep",
        }
    }
}

/// A scheduling event, for telemetry and tests.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerEvent {
    /// Switched models at `step` because the predicted loss crossed the
    /// requirement.
    Switch {
        /// Simulation step of the decision.
        step: usize,
        /// Model before the switch.
        from: String,
        /// Model after the switch.
        to: String,
        /// Predicted final quality loss that triggered the decision.
        predicted_loss: f64,
    },
    /// All candidates exhausted; restarted the whole run with PCG.
    Restart {
        /// Simulation step of the decision.
        step: usize,
        /// Predicted final quality loss that triggered the restart.
        predicted_loss: f64,
    },
    /// A model corrupted the state and was struck into quarantine.
    Quarantine {
        /// Simulation step at which the corruption was detected.
        step: usize,
        /// The struck model.
        model: String,
        /// Strikes accumulated by the model so far.
        strikes: u32,
        /// First check interval at which it may run again, or `None`
        /// when the strike ejected it for the rest of the run.
        until_interval: Option<u64>,
    },
    /// The simulation was rolled back to the last healthy checkpoint
    /// and handed to a replacement model.
    Rollback {
        /// Step at which the corruption was detected.
        step: usize,
        /// Checkpoint step the simulation was restored to.
        to_step: usize,
        /// The corrupting model.
        from: String,
        /// The replacement model.
        to: String,
    },
    /// Every candidate was quarantined or ejected; the run finishes on
    /// the exact PCG projector from the checkpoint onward.
    Degrade {
        /// Checkpoint step the degraded tail resumed from.
        step: usize,
        /// Candidates barred at the time of degradation.
        barred: usize,
    },
}

impl ToJson for CandidateModel {
    fn to_json_value(&self) -> Value {
        obj([
            ("name", self.name.to_json_value()),
            ("saved", self.saved.to_json_value()),
            ("probability", self.probability.to_json_value()),
            ("exec_time", self.exec_time.to_json_value()),
            ("quality_loss", self.quality_loss.to_json_value()),
        ])
    }
}

impl FromJson for CandidateModel {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        Ok(CandidateModel {
            name: v.field("name")?,
            saved: v.field("saved")?,
            probability: v.field("probability")?,
            exec_time: v.field("exec_time")?,
            quality_loss: v.field("quality_loss")?,
        })
    }
}

impl ToJson for RuntimeConfig {
    fn to_json_value(&self) -> Value {
        obj([
            ("check_interval", self.check_interval.to_json_value()),
            ("total_steps", self.total_steps.to_json_value()),
            ("quality_target", self.quality_target.to_json_value()),
            ("tolerance", self.tolerance.to_json_value()),
            ("use_mlp", self.use_mlp.to_json_value()),
            ("adaptive", self.adaptive.to_json_value()),
        ])
    }
}

impl FromJson for RuntimeConfig {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        Ok(RuntimeConfig {
            check_interval: v.field("check_interval")?,
            total_steps: v.field("total_steps")?,
            quality_target: v.field("quality_target")?,
            tolerance: v.field("tolerance")?,
            use_mlp: v.field("use_mlp")?,
            adaptive: v.field("adaptive")?,
        })
    }
}

impl ToJson for SchedulerEvent {
    fn to_json_value(&self) -> Value {
        match self {
            SchedulerEvent::Switch { step, from, to, predicted_loss } => obj([(
                "Switch",
                obj([
                    ("step", step.to_json_value()),
                    ("from", from.to_json_value()),
                    ("to", to.to_json_value()),
                    ("predicted_loss", predicted_loss.to_json_value()),
                ]),
            )]),
            SchedulerEvent::Restart { step, predicted_loss } => obj([(
                "Restart",
                obj([
                    ("step", step.to_json_value()),
                    ("predicted_loss", predicted_loss.to_json_value()),
                ]),
            )]),
            SchedulerEvent::Quarantine { step, model, strikes, until_interval } => obj([(
                "Quarantine",
                obj([
                    ("step", step.to_json_value()),
                    ("model", model.to_json_value()),
                    ("strikes", strikes.to_json_value()),
                    ("until_interval", until_interval.to_json_value()),
                ]),
            )]),
            SchedulerEvent::Rollback { step, to_step, from, to } => obj([(
                "Rollback",
                obj([
                    ("step", step.to_json_value()),
                    ("to_step", to_step.to_json_value()),
                    ("from", from.to_json_value()),
                    ("to", to.to_json_value()),
                ]),
            )]),
            SchedulerEvent::Degrade { step, barred } => obj([(
                "Degrade",
                obj([
                    ("step", step.to_json_value()),
                    ("barred", barred.to_json_value()),
                ]),
            )]),
        }
    }
}

impl FromJson for SchedulerEvent {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        let err = |m: String| JsonError { at: 0, message: m };
        let fields = v
            .as_obj()
            .ok_or_else(|| err("expected SchedulerEvent object".to_string()))?;
        let [(tag, body)] = fields else {
            return Err(err(format!(
                "expected single-variant object, got {} keys",
                fields.len()
            )));
        };
        match tag.as_str() {
            "Switch" => Ok(SchedulerEvent::Switch {
                step: body.field("step")?,
                from: body.field("from")?,
                to: body.field("to")?,
                predicted_loss: body.field("predicted_loss")?,
            }),
            "Restart" => Ok(SchedulerEvent::Restart {
                step: body.field("step")?,
                predicted_loss: body.field("predicted_loss")?,
            }),
            "Quarantine" => Ok(SchedulerEvent::Quarantine {
                step: body.field("step")?,
                model: body.field("model")?,
                strikes: body.field("strikes")?,
                until_interval: body.field("until_interval")?,
            }),
            "Rollback" => Ok(SchedulerEvent::Rollback {
                step: body.field("step")?,
                to_step: body.field("to_step")?,
                from: body.field("from")?,
                to: body.field("to")?,
            }),
            "Degrade" => Ok(SchedulerEvent::Degrade {
                step: body.field("step")?,
                barred: body.field("barred")?,
            }),
            other => Err(err(format!("unknown SchedulerEvent variant `{other}`"))),
        }
    }
}

/// The outcome of one scheduled simulation.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Final smoke density (the rendered frame).
    pub density: Field2,
    /// Scheduling events in order.
    pub events: Vec<SchedulerEvent>,
    /// Candidate names in scheduler order — the index space of
    /// `time_per_model` and `steps_per_model`.
    pub model_names: Vec<String>,
    /// Seconds of projection time attributed to each candidate, by
    /// candidate index (Table 3's time distribution). Rolled-back
    /// (wasted) steps stay attributed: the wall time was really spent.
    pub time_per_model: Vec<f64>,
    /// Steps executed by each candidate (including rolled-back steps).
    pub steps_per_model: Vec<usize>,
    /// Every checkpoint's `(step, predicted final quality loss)` —
    /// the runtime's internal belief trace, for diagnostics.
    pub predictions: Vec<(usize, f64)>,
    /// True if the run fell back to the original PCG simulation.
    pub restarted: bool,
    /// Projection seconds of the PCG fallback — the full restart of
    /// Algorithm 2 or the degraded tail (0 when neither happened).
    pub restart_time: f64,
    /// Total wall time of the run (including any restart).
    pub wall_time: f64,
    /// The `CumDivNorm` series of the final (surviving) run.
    pub cum_div_norm: Vec<f64>,
    /// Checkpoint rollbacks performed after corruption strikes.
    pub rollbacks: usize,
    /// True if every candidate was barred and the run finished on PCG
    /// from the last checkpoint (graceful degradation).
    pub degraded: bool,
    /// `(model, strikes)` for every candidate that was struck at least
    /// once during the run.
    pub quarantined: Vec<(String, u32)>,
    /// Step a durable checkpoint resumed the run from, or `None` for a
    /// fresh start. The per-model accounting above covers only the
    /// resumed portion of the run.
    pub resumed_from: Option<usize>,
    /// `Some` when a [`RunLimits`] bound stopped the run early (the
    /// density is the state at the shed boundary, still finite and
    /// renderable); `None` for a run-to-completion.
    pub truncation: Option<Truncation>,
}

/// The Algorithm 2 scheduler.
pub struct SmartRuntime {
    /// Candidates sorted from fastest/least-accurate to
    /// slowest/most-accurate (by offline quality loss, descending).
    candidates: Vec<CandidateModel>,
    projectors: Vec<NeuralProjector>,
    knn: KnnDatabase,
    config: RuntimeConfig,
}

impl SmartRuntime {
    /// Builds a runtime over the candidate set.
    ///
    /// A candidate whose snapshot fails to load is *demoted* — dropped
    /// from the set with a `scheduler.candidate_rejected` event — rather
    /// than panicking the runtime; the error is returned only when no
    /// candidate survives.
    pub fn try_new(
        mut candidates: Vec<CandidateModel>,
        knn: KnnDatabase,
        config: RuntimeConfig,
    ) -> Result<Self, RuntimeError> {
        if config.check_interval < 3 {
            return Err(RuntimeError::InvalidConfig(format!(
                "check interval {} too small for the regression (need >= 3)",
                config.check_interval
            )));
        }
        // Accuracy order: index 0 = least accurate (fastest end of the
        // Pareto front), last = most accurate.
        candidates.sort_by(|a, b| b.quality_loss.total_cmp(&a.quality_loss));
        let mut kept = Vec::with_capacity(candidates.len());
        let mut projectors = Vec::with_capacity(candidates.len());
        let mut rejected = Vec::new();
        for c in candidates {
            match Network::load(&c.saved, 0) {
                Ok(net) => {
                    projectors.push(NeuralProjector::new(net, c.name.clone()));
                    kept.push(c);
                }
                Err(e) => {
                    let why = e.to_string();
                    sfn_obs::counter_add("scheduler.candidates_rejected", 1);
                    sfn_obs::event(Level::Warn, "scheduler.candidate_rejected")
                        .field_str("model", &c.name)
                        .field_str("reason", &why)
                        .emit();
                    rejected.push((c.name, why));
                }
            }
        }
        if kept.is_empty() {
            return Err(RuntimeError::NoUsableCandidates { rejected });
        }
        Ok(Self {
            candidates: kept,
            projectors,
            knn,
            config,
        })
    }

    /// Builds a runtime over the candidate set.
    ///
    /// # Panics
    /// Panics where [`SmartRuntime::try_new`] would return an error:
    /// no loadable candidate, or an invalid configuration.
    pub fn new(candidates: Vec<CandidateModel>, knn: KnnDatabase, config: RuntimeConfig) -> Self {
        Self::try_new(candidates, knn, config).expect("runtime construction failed")
    }

    /// The candidates in scheduler (accuracy) order.
    pub fn candidates(&self) -> &[CandidateModel] {
        &self.candidates
    }

    /// Index of the starting model per Algorithm 2 line 1 (highest MLP
    /// probability) or the no-MLP baseline (fastest model).
    fn start_index(&self) -> usize {
        if self.config.use_mlp {
            let mut best = 0;
            for (i, c) in self.candidates.iter().enumerate() {
                if c.probability > self.candidates[best].probability {
                    best = i;
                }
            }
            best
        } else {
            0 // least accurate = fastest end
        }
    }

    /// Runs one simulation under the scheduler.
    pub fn run(&mut self, sim: Simulation) -> RunOutcome {
        self.run_with_checkpoints(sim, None).0
    }

    /// Runs one simulation under the scheduler with external bounds
    /// (deadline / step budget) checked at every step boundary — the
    /// serving entry point. A bounded run never panics on expiry; it
    /// sheds the remaining steps and reports the cut in
    /// [`RunOutcome::truncation`].
    pub fn run_bounded(&mut self, sim: Simulation, limits: RunLimits) -> RunOutcome {
        self.run_inner(sim, None, limits).0
    }

    /// Attempts to resume scheduler state from `ckpt`'s newest valid
    /// durable checkpoint. Returns the resume step, or `None` when
    /// there is nothing (valid) to resume from.
    #[allow(clippy::too_many_arguments)]
    fn try_resume(
        &self,
        ckpt: &mut DurableCheckpointer,
        roster: &[String],
        sim: &mut Simulation,
        tracker: &mut CumDivNormTracker,
        quarantine: &mut QuarantineTable,
        current: &mut usize,
        rollbacks: &mut usize,
    ) -> Option<usize> {
        let recovery = match ckpt.recover() {
            Ok(Some(r)) => r,
            Ok(None) => return None,
            Err(e) => {
                sfn_obs::event(Level::Warn, "ckpt.recover_failed")
                    .field_str("dir", &ckpt.dir().display().to_string())
                    .field_str("error", &e.to_string())
                    .emit();
                return None;
            }
        };
        let doc = recovery.doc;
        // A checkpoint from a different candidate roster would resume
        // quarantine strikes and the model index against the wrong
        // models — refuse it and run fresh.
        let Some(sched) = doc.scheduler.as_ref().filter(|s| s.model_names == roster) else {
            sfn_obs::event(Level::Warn, "ckpt.roster_mismatch")
                .field_str("path", &recovery.path.display().to_string())
                .emit();
            return None;
        };
        if let Err(e) = sim.restore(&doc.snapshot) {
            sfn_obs::event(Level::Warn, "ckpt.geometry_mismatch")
                .field_str("path", &recovery.path.display().to_string())
                .field_str("error", &e.to_string())
                .emit();
            return None;
        }
        *tracker = persist::tracker_from_state(&doc.tracker);
        *quarantine = persist::quarantine_from_state(&sched.quarantine);
        *current = sched.current as usize;
        *rollbacks = sched.rollbacks as usize;
        sfn_obs::event(Level::Info, "runtime.resume")
            .field_u64("step", doc.step)
            .field_str("model", &roster[*current])
            .field_u64("skipped", recovery.rejected.len() as u64)
            .field_str("path", &recovery.path.display().to_string())
            .emit();
        Some(doc.step as usize)
    }

    /// Runs one simulation under the scheduler with optional durable
    /// checkpointing, returning the outcome *and* the final simulation
    /// state (the bit-identity oracle of the crash-recovery harness).
    ///
    /// With a checkpointer the run first resumes from the newest valid
    /// checkpoint in its directory (if any), then writes a durable
    /// checkpoint at every healthy check interval that honours the
    /// cadence. Durable writes are best-effort: an I/O failure warns
    /// (`ckpt.write_failed`) and the run continues on the in-RAM anchor.
    pub fn run_with_checkpoints(
        &mut self,
        sim: Simulation,
        ckpt: Option<&mut DurableCheckpointer>,
    ) -> (RunOutcome, Simulation) {
        self.run_inner(sim, ckpt, RunLimits::none())
    }

    fn run_inner(
        &mut self,
        mut sim: Simulation,
        ckpt: Option<&mut DurableCheckpointer>,
        limits: RunLimits,
    ) -> (RunOutcome, Simulation) {
        let cfg = self.config;
        let n_models = self.candidates.len();
        // Live observability: if `SFN_METRICS_ADDR` is set, the first
        // run in the process brings up the /metrics endpoint (listener
        // + collector stay alive for the process lifetime).
        let _metrics = sfn_metrics::serve_from_env();
        let timer = ScopedTimer::start("runtime/run");
        let mut tracker = CumDivNormTracker::new();
        let mut events = Vec::new();
        let mut time_per_model = vec![0.0; n_models];
        let mut steps_per_model = vec![0usize; n_models];
        let mut predictions = Vec::new();
        let mut current = self.start_index();
        let fresh_sim = sim.clone();
        let mut restarted = false;
        let mut degraded = false;
        let mut rollbacks = 0usize;
        let mut quarantine = QuarantineTable::new(n_models);
        let roster: Vec<String> = self.candidates.iter().map(|c| c.name.clone()).collect();

        let mut durable = ckpt;
        let mut step = 0usize;
        let mut resumed_from = None;
        if let Some(d) = durable.as_deref_mut() {
            resumed_from = self.try_resume(
                d,
                &roster,
                &mut sim,
                &mut tracker,
                &mut quarantine,
                &mut current,
                &mut rollbacks,
            );
            step = resumed_from.unwrap_or(0);
        }

        // DivNorm (Eq. 5) is an un-normalised sum over cells; dividing
        // by the cell count makes the KNN database — built offline on
        // *small* problems (§6.1) — transfer across grid sizes.
        let inv_cells = 1.0 / (sim.flags().nx() * sim.flags().ny()) as f64;

        // The rollback anchor: the newest known-healthy state, refreshed
        // at every healthy check interval. Quarantine time is measured
        // in check-interval indices derived from the step counter, so a
        // rollback rewinds the backoff clock too.
        let mut checkpoint = (sim.snapshot(), tracker.clone(), step);

        // Executed-step counter for `RunLimits::max_steps`: unlike
        // `step` it never rewinds on rollback, so a corruption storm
        // cannot stretch a bounded run past its work budget.
        let mut executed = 0usize;
        let mut truncation: Option<Truncation> = None;

        while step < cfg.total_steps {
            // Bound check first: `sim` here is always the newest healthy
            // state (the corruption guard restores before looping), so a
            // shed result is degraded-but-valid, never NaN soup.
            if let Some(t) = limits.exceeded(step, executed) {
                emit_shed(&t, executed);
                truncation = Some(t);
                break;
            }
            // Per-step timeline record (Trace level): the raw material
            // for `sfn-trace analyze` / `export` — timing is only taken
            // when something would record the event.
            let step_t0 = (sfn_obs::event_enabled(Level::Trace) || sfn_metrics::live())
                .then(std::time::Instant::now);
            let stats = sim.step(&mut self.projectors[current]);
            let div_norm = stats.div_norm * inv_cells;
            tracker.push(div_norm);
            sfn_obs::histogram_record("runtime.div_norm", div_norm);
            time_per_model[current] += stats.projection_time.as_secs_f64();
            steps_per_model[current] += 1;
            step += 1;
            executed += 1;
            if let Some(t0) = step_t0 {
                let secs = t0.elapsed().as_secs_f64();
                sfn_metrics::record_step(&self.candidates[current].name, secs);
                sfn_obs::event(Level::Trace, "runtime.step")
                    .field_u64("step", step as u64)
                    .field_str("model", &self.candidates[current].name)
                    .field_f64("secs", secs)
                    .field_f64("proj_secs", stats.projection_time.as_secs_f64())
                    .field_f64("div_norm", div_norm)
                    .emit();
            }
            // Crash-harness boundary: a scheduled `crash` fault SIGKILLs
            // the process here, mid-run between durable checkpoints.
            sfn_faults::crash_point("runtime/mid_step", step as u64);

            // Corruption guard: a surrogate that produced NaNs or blew
            // the simulation up is struck and the state rolled back.
            if !sim.is_healthy() || !stats.div_norm.is_finite() {
                let corrupt_step = step;
                let interval_now = (step / cfg.check_interval) as u64;
                let decision = quarantine.strike(current, interval_now);
                let (strikes, until_interval) = match decision {
                    QuarantineDecision::Quarantined { strikes, until_interval } => {
                        (strikes, Some(until_interval))
                    }
                    QuarantineDecision::Ejected { strikes } => (strikes, None),
                };
                sfn_obs::counter_add("runtime.quarantines", 1);
                sfn_obs::event(Level::Warn, "runtime.quarantine")
                    .field_u64("step", corrupt_step as u64)
                    .field_str("model", &self.candidates[current].name)
                    .field_u64("strikes", u64::from(strikes))
                    .field_bool("ejected", until_interval.is_none())
                    .emit();
                events.push(SchedulerEvent::Quarantine {
                    step: corrupt_step,
                    model: self.candidates[current].name.clone(),
                    strikes,
                    until_interval,
                });

                // Roll back to the last healthy checkpoint. The anchor
                // was snapshotted from this very simulation, so its
                // geometry always matches.
                sim.restore(&checkpoint.0)
                    .expect("rollback anchor geometry matches the live simulation");
                tracker = checkpoint.1.clone();
                step = checkpoint.2;
                rollbacks += 1;
                sfn_obs::counter_add("runtime.rollbacks", 1);

                let rewound = (step / cfg.check_interval) as u64;
                match quarantine.next_available(current, rewound) {
                    Some(next) => {
                        sfn_obs::counter_add("runtime.recoveries", 1);
                        sfn_obs::event(Level::Warn, "runtime.rollback")
                            .field_u64("from_step", corrupt_step as u64)
                            .field_u64("to_step", step as u64)
                            .field_str("from", &self.candidates[current].name)
                            .field_str("to", &self.candidates[next].name)
                            .emit();
                        events.push(SchedulerEvent::Rollback {
                            step: corrupt_step,
                            to_step: step,
                            from: self.candidates[current].name.clone(),
                            to: self.candidates[next].name.clone(),
                        });
                        current = next;
                    }
                    None => {
                        // Every candidate is barred: degrade to PCG for
                        // the rest of the run (terminal — the exact
                        // solver cannot be quarantined).
                        degraded = true;
                        let barred = quarantine.unavailable(rewound).len();
                        sfn_obs::counter_add("runtime.degraded", 1);
                        sfn_obs::event(Level::Error, "runtime.degraded")
                            .field_u64("step", step as u64)
                            .field_u64("barred", barred as u64)
                            .field_str("fallback", "pcg")
                            .emit();
                        events.push(SchedulerEvent::Degrade { step, barred });
                        break;
                    }
                }
                continue;
            }

            let at_checkpoint =
                step.is_multiple_of(cfg.check_interval) && step < cfg.total_steps;
            if !at_checkpoint {
                continue;
            }
            // Healthy check interval: refresh the rollback anchor even
            // when the static policy skips the quality check.
            checkpoint = (sim.snapshot(), tracker.clone(), step);
            // ...and persist it when the durable cadence is due. The
            // snapshot was just taken, so the checkpoint document is
            // exactly the in-RAM anchor.
            if let Some(d) = durable.as_deref_mut() {
                if d.due(step as u64) {
                    let doc = CheckpointDoc {
                        step: step as u64,
                        snapshot: checkpoint.0.clone(),
                        tracker: persist::tracker_state(&tracker),
                        scheduler: Some(SchedulerState {
                            current: current as u32,
                            model_names: roster.clone(),
                            quarantine: persist::quarantine_state(&quarantine),
                            rollbacks: rollbacks as u64,
                        }),
                    };
                    if let Err(e) = d.write(&doc) {
                        sfn_obs::event(Level::Warn, "ckpt.write_failed")
                            .field_u64("step", step as u64)
                            .field_str("error", &e.to_string())
                            .emit();
                    }
                }
            }
            if !cfg.adaptive {
                continue;
            }

            let cdn_pred = match tracker.predict_final(cfg.check_interval, cfg.total_steps) {
                Some(cdn) => cdn,
                // Warm-up or degenerate history: keep the current model.
                None => continue,
            };
            let predicted_loss = self.knn.predict(cdn_pred);
            predictions.push((step, predicted_loss));

            let hi = cfg.quality_target * (1.0 + cfg.tolerance);
            let lo = cfg.quality_target * (1.0 - cfg.tolerance);
            let interval_now = (step / cfg.check_interval) as u64;
            // Switch targets honour the quarantine table: escalation
            // picks the nearest available model above, relaxation the
            // nearest available below.
            let up = (current + 1..n_models).find(|&m| quarantine.is_available(m, interval_now));
            let down = (0..current).rev().find(|&m| quarantine.is_available(m, interval_now));
            // Decide first, mutate after: the whole Algorithm 2 check is
            // reported as exactly one structured event either way.
            let action = if predicted_loss > hi {
                match up {
                    Some(to) => Action::SwitchUp(to),
                    None => Action::Restart, // Algorithm 2 line 16: fall back to PCG.
                }
            } else if predicted_loss < lo && cfg.use_mlp {
                // Comfortable slack: move to a faster model — unless
                // quarantine emptied the neighbourhood below, in which
                // case there is nowhere to relax to and we keep.
                down.map_or(Action::Keep, Action::SwitchDown)
            } else {
                Action::Keep
            };
            sfn_obs::counter_add("scheduler.checks", 1);
            // The decision record carries everything `sfn-trace audit`
            // needs to replay Algorithm 2 offline: the prediction, the
            // band, the candidate neighbourhood and the quarantine
            // state that shaped the switch targets.
            sfn_obs::event(Level::Info, "scheduler.decision")
                .field_u64("step", step as u64)
                .field_str("model", &self.candidates[current].name)
                .field_f64("predicted_loss", predicted_loss)
                .field_f64("cdn_pred", cdn_pred)
                .field_f64("target", cfg.quality_target)
                .field_f64("band_lo", lo)
                .field_f64("band_hi", hi)
                .field_bool("mlp", cfg.use_mlp)
                .field_str("up", up.map_or("none", |m| self.candidates[m].name.as_str()))
                .field_str("down", down.map_or("none", |m| self.candidates[m].name.as_str()))
                .field_u64("barred", quarantine.unavailable(interval_now).len() as u64)
                .field_u64("rank", current as u64)
                .field_u64("candidates", n_models as u64)
                .field_str("action", action.as_str())
                .emit();
            match action {
                // The switch target rides inside the verdict, so a
                // depleted neighbourhood can no longer panic here: it
                // was already folded into Restart/Keep above.
                Action::SwitchUp(to) | Action::SwitchDown(to) => {
                    sfn_obs::counter_add("scheduler.switches", 1);
                    events.push(SchedulerEvent::Switch {
                        step,
                        from: self.candidates[current].name.clone(),
                        to: self.candidates[to].name.clone(),
                        predicted_loss,
                    });
                    current = to;
                }
                Action::Restart => {
                    sfn_obs::counter_add("scheduler.restarts", 1);
                    events.push(SchedulerEvent::Restart {
                        step,
                        predicted_loss,
                    });
                    restarted = true;
                }
                Action::Keep => {}
            }
            if restarted {
                break;
            }
        }

        let mut restart_time = 0.0;
        if degraded {
            // Graceful degradation: finish on the exact solver from the
            // restored checkpoint. A straight loop — no checks, no
            // models, nothing left to quarantine.
            let _span = sfn_obs::span!("runtime/degraded");
            let mut pcg = ExactProjector::labelled(
                PcgSolver::new(MicPreconditioner::default(), 1e-7, 200_000),
                "pcg-degraded",
            );
            while step < cfg.total_steps {
                if let Some(t) = limits.exceeded(step, executed) {
                    emit_shed(&t, executed);
                    truncation = Some(t);
                    break;
                }
                let step_t0 = (sfn_obs::event_enabled(Level::Trace) || sfn_metrics::live())
                    .then(std::time::Instant::now);
                let s = sim.step(&mut pcg);
                tracker.push(s.div_norm * inv_cells);
                restart_time += s.projection_time.as_secs_f64();
                step += 1;
                executed += 1;
                if let Some(t0) = step_t0 {
                    let secs = t0.elapsed().as_secs_f64();
                    sfn_metrics::record_step("pcg-degraded", secs);
                    sfn_obs::event(Level::Trace, "runtime.step")
                        .field_u64("step", step as u64)
                        .field_str("model", "pcg-degraded")
                        .field_f64("secs", secs)
                        .field_f64("proj_secs", s.projection_time.as_secs_f64())
                        .field_f64("div_norm", s.div_norm * inv_cells)
                        .emit();
                }
            }
        }

        let (density, cum) = if restarted {
            let _span = sfn_obs::span!("runtime/restart");
            sim = fresh_sim;
            let mut pcg = ExactProjector::labelled(
                PcgSolver::new(MicPreconditioner::default(), 1e-7, 200_000),
                "pcg",
            );
            let mut restart_tracker = CumDivNormTracker::new();
            for restart_step in 0..cfg.total_steps {
                if let Some(t) = limits.exceeded(restart_step, executed) {
                    emit_shed(&t, executed);
                    truncation = Some(t);
                    break;
                }
                let step_t0 = (sfn_obs::event_enabled(Level::Trace) || sfn_metrics::live())
                    .then(std::time::Instant::now);
                let s = sim.step(&mut pcg);
                restart_tracker.push(s.div_norm * inv_cells);
                restart_time += s.projection_time.as_secs_f64();
                executed += 1;
                if let Some(t0) = step_t0 {
                    let secs = t0.elapsed().as_secs_f64();
                    sfn_metrics::record_step("pcg", secs);
                    sfn_obs::event(Level::Trace, "runtime.step")
                        .field_u64("step", restart_step as u64 + 1)
                        .field_str("model", "pcg")
                        .field_f64("secs", secs)
                        .field_f64("proj_secs", s.projection_time.as_secs_f64())
                        .field_f64("div_norm", s.div_norm * inv_cells)
                        .emit();
                }
            }
            (sim.density().clone(), restart_tracker.series().to_vec())
        } else {
            (sim.density().clone(), tracker.series().to_vec())
        };

        let quarantined = self
            .candidates
            .iter()
            .enumerate()
            .filter(|&(i, _)| quarantine.strikes(i) > 0)
            .map(|(i, c)| (c.name.clone(), quarantine.strikes(i)))
            .collect();

        let outcome = RunOutcome {
            density,
            events,
            model_names: roster,
            time_per_model,
            steps_per_model,
            predictions,
            restarted,
            restart_time,
            wall_time: timer.stop().as_secs_f64(),
            cum_div_norm: cum,
            rollbacks,
            degraded,
            quarantined,
            resumed_from,
            truncation,
        };
        (outcome, sim)
    }
}

/// One `runtime.shed` record per truncated run: the serving layer and
/// `sfn-trace` both key off this to distinguish a deadline shed from a
/// completed run.
fn emit_shed(t: &Truncation, executed: usize) {
    sfn_obs::counter_add("runtime.sheds", 1);
    sfn_obs::event(Level::Warn, "runtime.shed")
        .field_u64("step", t.step() as u64)
        .field_str("reason", t.reason())
        .field_u64("executed", executed as u64)
        .emit();
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfn_grid::CellFlags;
    use sfn_nn::Network;
    use sfn_sim::SimConfig;
    use sfn_surrogate::{tompson_spec, yang_spec};

    fn candidate(name: &str, spec: &sfn_nn::NetworkSpec, seed: u64, prob: f64, q: f64, t: f64) -> CandidateModel {
        let mut net = Network::from_spec(spec, seed).unwrap();
        CandidateModel {
            name: name.into(),
            saved: net.save(),
            probability: prob,
            exec_time: t,
            quality_loss: q,
        }
    }

    fn broken_candidate(name: &str, prob: f64, q: f64) -> CandidateModel {
        // NaN weights: the surrogate corrupts the state on its first step.
        let mut net = Network::from_spec(&yang_spec(2), 1).unwrap();
        for view in net.params() {
            view.values.fill(f32::NAN);
        }
        CandidateModel {
            name: name.into(),
            saved: net.save(),
            probability: prob,
            exec_time: 0.1,
            quality_loss: q,
        }
    }

    fn knn() -> KnnDatabase {
        // A plausible monotone CumDivNorm -> Qloss mapping.
        KnnDatabase::new((0..64).map(|i| (i as f64 * 10.0, i as f64 * 0.001)).collect()).unwrap()
    }

    fn simulation(n: usize) -> Simulation {
        Simulation::new(SimConfig::plume(n), CellFlags::smoke_box(n, n))
    }

    #[test]
    fn starts_with_highest_probability_model() {
        let c = vec![
            candidate("fast", &yang_spec(2), 1, 0.6, 0.05, 0.1),
            candidate("mid", &yang_spec(4), 2, 0.9, 0.03, 0.2),
            candidate("slow", &tompson_spec(8), 3, 0.7, 0.01, 0.4),
        ];
        let rt = SmartRuntime::new(c, knn(), RuntimeConfig::default());
        // Accuracy order: fast(0.05), mid(0.03), slow(0.01).
        assert_eq!(rt.candidates()[rt.start_index()].name, "mid");
    }

    #[test]
    fn no_mlp_starts_with_fastest() {
        let c = vec![
            candidate("fast", &yang_spec(2), 1, 0.6, 0.05, 0.1),
            candidate("slow", &tompson_spec(8), 3, 0.9, 0.01, 0.4),
        ];
        let rt = SmartRuntime::new(
            c,
            knn(),
            RuntimeConfig {
                use_mlp: false,
                ..Default::default()
            },
        );
        assert_eq!(rt.candidates()[rt.start_index()].name, "fast");
    }

    #[test]
    fn unloadable_candidate_is_demoted_not_fatal() {
        let mut bad = candidate("bad", &yang_spec(2), 1, 0.9, 0.05, 0.1);
        bad.saved.weights.pop(); // truncate the snapshot
        let good = candidate("good", &yang_spec(4), 2, 0.5, 0.02, 0.2);
        let rt = SmartRuntime::try_new(vec![bad, good], knn(), RuntimeConfig::default())
            .expect("one loadable candidate is enough");
        assert_eq!(rt.candidates().len(), 1);
        assert_eq!(rt.candidates()[0].name, "good");
    }

    #[test]
    fn all_candidates_unloadable_is_a_typed_error() {
        let mut bad = candidate("bad", &yang_spec(2), 1, 0.9, 0.05, 0.1);
        bad.saved.weights.clear();
        match SmartRuntime::try_new(vec![bad], knn(), RuntimeConfig::default()) {
            Err(RuntimeError::NoUsableCandidates { rejected }) => {
                assert_eq!(rejected.len(), 1);
                assert_eq!(rejected[0].0, "bad");
            }
            other => panic!("expected NoUsableCandidates, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn tiny_check_interval_is_rejected() {
        let c = vec![candidate("a", &yang_spec(2), 1, 0.8, 0.05, 0.1)];
        let cfg = RuntimeConfig { check_interval: 2, ..Default::default() };
        assert!(matches!(
            SmartRuntime::try_new(c, knn(), cfg),
            Err(RuntimeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn run_completes_and_accounts_time() {
        let c = vec![
            candidate("a", &yang_spec(2), 1, 0.8, 0.05, 0.1),
            candidate("b", &yang_spec(4), 2, 0.7, 0.02, 0.2),
        ];
        let mut rt = SmartRuntime::new(
            c,
            knn(),
            RuntimeConfig {
                total_steps: 20,
                quality_target: 1.0, // always satisfied -> no restart
                ..Default::default()
            },
        );
        let out = rt.run(simulation(16));
        assert!(!out.restarted);
        assert!(!out.degraded);
        assert_eq!(out.rollbacks, 0);
        assert!(out.quarantined.is_empty());
        assert_eq!(out.steps_per_model.iter().sum::<usize>(), 20);
        assert!(out.time_per_model.iter().sum::<f64>() > 0.0);
        assert_eq!(out.cum_div_norm.len(), 20);
        assert!(out.density.all_finite());
        // The first check interval (step 5) is still inside the tracker
        // warm-up: predict_final returns None and the scheduler keeps
        // the current model without recording a belief.
        assert_eq!(out.predictions.first().map(|p| p.0), Some(10));
    }

    #[test]
    fn impossible_target_restarts_with_pcg() {
        let c = vec![
            candidate("a", &yang_spec(2), 1, 0.8, 0.05, 0.1),
            candidate("b", &yang_spec(4), 2, 0.7, 0.02, 0.2),
        ];
        let mut rt = SmartRuntime::new(
            c,
            knn(),
            RuntimeConfig {
                total_steps: 30,
                quality_target: 1e-9, // untrained nets can never meet this
                ..Default::default()
            },
        );
        let out = rt.run(simulation(16));
        assert!(out.restarted, "events: {:?}", out.events);
        assert!(matches!(out.events.last(), Some(SchedulerEvent::Restart { .. })));
        // The PCG fallback still produces a full, healthy run.
        assert!(out.density.all_finite());
        assert_eq!(out.cum_div_norm.len(), 30);
        // PCG keeps DivNorm tiny.
        assert!(*out.cum_div_norm.last().unwrap() < 1e-4);
    }

    #[test]
    fn escalates_through_models_before_restarting() {
        let c = vec![
            candidate("m0", &yang_spec(2), 1, 0.9, 0.05, 0.1),
            candidate("m1", &yang_spec(3), 2, 0.8, 0.03, 0.2),
            candidate("m2", &yang_spec(4), 3, 0.7, 0.01, 0.3),
        ];
        let mut rt = SmartRuntime::new(
            c,
            knn(),
            RuntimeConfig {
                total_steps: 40,
                quality_target: 1e-9,
                use_mlp: false, // start from the fastest
                ..Default::default()
            },
        );
        let out = rt.run(simulation(16));
        let switches: Vec<(&String, &String)> = out
            .events
            .iter()
            .filter_map(|e| match e {
                SchedulerEvent::Switch { from, to, .. } => Some((from, to)),
                _ => None,
            })
            .collect();
        assert_eq!(switches.len(), 2, "events: {:?}", out.events);
        assert_eq!(switches[0].0, "m0");
        assert_eq!(switches[1].1, "m2");
        assert!(out.restarted);
    }

    #[test]
    fn static_policy_never_switches() {
        let c = vec![
            candidate("a", &yang_spec(2), 1, 0.8, 0.05, 0.1),
            candidate("b", &yang_spec(4), 2, 0.7, 0.02, 0.2),
        ];
        let mut rt = SmartRuntime::new(
            c,
            knn(),
            RuntimeConfig {
                total_steps: 20,
                quality_target: 1e-9, // would force switches when adaptive
                adaptive: false,
                ..Default::default()
            },
        );
        let out = rt.run(simulation(16));
        assert!(out.events.is_empty(), "static policy produced {:?}", out.events);
        assert!(!out.restarted);
        // Only the starting model ran.
        assert_eq!(out.steps_per_model.iter().filter(|&&s| s > 0).count(), 1);
    }

    #[test]
    fn corrupting_model_rolls_back_and_switches() {
        // The high-probability candidate corrupts the state on its first
        // step; the runtime must strike it, roll back and finish the run
        // on the healthy candidate — no restart, no degradation.
        let c = vec![
            broken_candidate("broken", 0.9, 0.05),
            candidate("healthy", &yang_spec(4), 2, 0.5, 0.02, 0.2),
        ];
        let mut rt = SmartRuntime::new(
            c,
            knn(),
            RuntimeConfig {
                total_steps: 20,
                quality_target: 1.0, // quality never forces an escalation
                use_mlp: false,      // ...nor a relaxation back to `broken`
                ..Default::default()
            },
        );
        let out = rt.run(simulation(16));
        assert!(!out.restarted && !out.degraded, "events: {:?}", out.events);
        assert_eq!(out.rollbacks, 1);
        assert_eq!(out.quarantined, vec![("broken".to_string(), 1)]);
        assert!(matches!(out.events[0], SchedulerEvent::Quarantine { ref model, strikes: 1, .. } if model == "broken"));
        assert!(matches!(out.events[1], SchedulerEvent::Rollback { to_step: 0, .. }));
        assert!(out.density.all_finite());
        assert_eq!(out.cum_div_norm.len(), 20);
        // The healthy model carried the whole surviving run.
        let healthy = out.model_names.iter().position(|n| n == "healthy").unwrap();
        assert_eq!(out.steps_per_model[healthy], 20);
    }

    #[test]
    fn single_candidate_band_exits_never_panic() {
        // Regression: acting on a band exit used to `unwrap()` the
        // switch target, so a roster with no neighbour in the switch
        // direction was a latent panic. Drive both exits over a
        // one-model roster: the upward exit must fold into a restart
        // and the downward one into a keep.
        let c = vec![candidate("only", &yang_spec(2), 1, 0.8, 0.05, 0.1)];
        let mut rt = SmartRuntime::new(
            c.clone(),
            knn(),
            RuntimeConfig {
                total_steps: 30,
                quality_target: 1e-9, // always above the band: wants up
                ..Default::default()
            },
        );
        let out = rt.run(simulation(16));
        assert!(out.restarted, "no up-neighbour must restart: {:?}", out.events);

        let mut rt = SmartRuntime::new(
            c,
            knn(),
            RuntimeConfig {
                total_steps: 30,
                quality_target: 1e9, // always below the band: wants down
                use_mlp: true,
                ..Default::default()
            },
        );
        let out = rt.run(simulation(16));
        assert!(!out.restarted && out.events.is_empty(), "no down-neighbour must keep");
        assert_eq!(out.cum_div_norm.len(), 30);
    }

    #[test]
    fn expired_deadline_sheds_immediately_with_valid_state() {
        let c = vec![candidate("a", &yang_spec(2), 1, 0.8, 0.05, 0.1)];
        let mut rt = SmartRuntime::new(
            c,
            knn(),
            RuntimeConfig { total_steps: 20, quality_target: 1.0, ..Default::default() },
        );
        let limits = RunLimits {
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_millis(1)),
            max_steps: None,
        };
        let out = rt.run_bounded(simulation(16), limits);
        assert_eq!(out.truncation, Some(Truncation::DeadlineExpired { step: 0 }));
        assert!(out.cum_div_norm.is_empty());
        assert!(out.density.all_finite(), "a shed run still returns renderable state");
    }

    #[test]
    fn step_budget_truncates_at_the_boundary() {
        let c = vec![candidate("a", &yang_spec(2), 1, 0.8, 0.05, 0.1)];
        let mut rt = SmartRuntime::new(
            c,
            knn(),
            RuntimeConfig { total_steps: 20, quality_target: 1.0, ..Default::default() },
        );
        let limits = RunLimits { deadline: None, max_steps: Some(7) };
        let out = rt.run_bounded(simulation(16), limits);
        assert_eq!(out.truncation, Some(Truncation::StepBudget { step: 7 }));
        assert_eq!(out.cum_div_norm.len(), 7);
        assert_eq!(out.steps_per_model.iter().sum::<usize>(), 7);
        assert!(out.density.all_finite());
    }

    fn temp_ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("sfn-runtime-scheduler")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn bits(f: &Field2) -> Vec<u64> {
        f.data().iter().map(|v| v.to_bits()).collect()
    }

    fn ckpt_candidates() -> Vec<CandidateModel> {
        vec![
            candidate("a", &yang_spec(2), 1, 0.8, 0.05, 0.1),
            candidate("b", &yang_spec(4), 2, 0.7, 0.02, 0.2),
        ]
    }

    fn ckpt_config() -> RuntimeConfig {
        RuntimeConfig {
            total_steps: 20,
            quality_target: 1.0, // always satisfied -> no restart
            ..Default::default()
        }
    }

    #[test]
    fn durable_checkpoints_are_written_at_cadence() {
        let dir = temp_ckpt_dir("cadence");
        let mut rt = SmartRuntime::new(ckpt_candidates(), knn(), ckpt_config());
        let mut d = DurableCheckpointer::new(&dir, 5, 10).unwrap();
        let (out, _) = rt.run_with_checkpoints(simulation(16), Some(&mut d));
        assert_eq!(out.resumed_from, None);
        // Anchors at steps 5, 10, 15 (20 = total is not an anchor).
        let steps: Vec<u64> = sfn_ckpt::CheckpointStore::open(&dir)
            .unwrap()
            .list()
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(steps, vec![5, 10, 15]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn killed_run_resumes_bit_identically() {
        // Reference: one uninterrupted run.
        let mut rt = SmartRuntime::new(ckpt_candidates(), knn(), ckpt_config());
        let (reference, ref_sim) = rt.run_with_checkpoints(simulation(16), None);

        // "Crashed" run: same schedule, but stop consuming it after the
        // step-10 checkpoint by running a copy only up to the durable
        // write, then resume from disk with a fresh runtime + sim.
        let dir = temp_ckpt_dir("resume");
        let mut rt1 = SmartRuntime::new(ckpt_candidates(), knn(), ckpt_config());
        let mut d1 = DurableCheckpointer::new(&dir, 5, 10).unwrap();
        let _ = rt1.run_with_checkpoints(simulation(16), Some(&mut d1));
        // Drop the newest checkpoints so the resume really recomputes
        // steps 10..20 instead of starting at 15 (simulates a kill at
        // step ~12: only checkpoints 5 and 10 had been written).
        std::fs::remove_file(dir.join("ckpt-00000015.sfnc")).unwrap();

        let mut rt2 = SmartRuntime::new(ckpt_candidates(), knn(), ckpt_config());
        let mut d2 = DurableCheckpointer::new(&dir, 5, 10).unwrap();
        let (resumed, resumed_sim) = rt2.run_with_checkpoints(simulation(16), Some(&mut d2));
        assert_eq!(resumed.resumed_from, Some(10));
        assert_eq!(resumed.steps_per_model.iter().sum::<usize>(), 10, "only the tail re-ran");

        // The oracle: final state is bit-identical to the uninterrupted run.
        assert_eq!(bits(&resumed.density), bits(&reference.density));
        let (a, b) = (ref_sim.snapshot(), resumed_sim.snapshot());
        assert_eq!(bits(&a.vel().u), bits(&b.vel().u));
        assert_eq!(bits(&a.vel().v), bits(&b.vel().v));
        assert_eq!(bits(a.density()), bits(b.density()));
        assert_eq!(a.steps_done(), b.steps_done());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn roster_mismatch_refuses_resume() {
        let dir = temp_ckpt_dir("roster");
        let mut rt = SmartRuntime::new(ckpt_candidates(), knn(), ckpt_config());
        let mut d = DurableCheckpointer::new(&dir, 5, 10).unwrap();
        let _ = rt.run_with_checkpoints(simulation(16), Some(&mut d));

        // A runtime over a *different* candidate set must not adopt the
        // old quarantine/current state.
        let other = vec![
            candidate("x", &yang_spec(2), 7, 0.8, 0.05, 0.1),
            candidate("y", &yang_spec(4), 8, 0.7, 0.02, 0.2),
        ];
        let mut rt2 = SmartRuntime::new(other, knn(), ckpt_config());
        let mut d2 = DurableCheckpointer::new(&dir, 5, 10).unwrap();
        let (out, _) = rt2.run_with_checkpoints(simulation(16), Some(&mut d2));
        assert_eq!(out.resumed_from, None, "mismatched roster must run fresh");
        assert_eq!(out.steps_per_model.iter().sum::<usize>(), 20);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn geometry_mismatch_refuses_resume() {
        let dir = temp_ckpt_dir("geom");
        let mut rt = SmartRuntime::new(ckpt_candidates(), knn(), ckpt_config());
        let mut d = DurableCheckpointer::new(&dir, 5, 10).unwrap();
        let _ = rt.run_with_checkpoints(simulation(16), Some(&mut d));

        // Same roster, different grid: the snapshot must be refused and
        // the run started fresh on the new geometry.
        let mut rt2 = SmartRuntime::new(ckpt_candidates(), knn(), ckpt_config());
        let mut d2 = DurableCheckpointer::new(&dir, 5, 10).unwrap();
        let (out, sim) = rt2.run_with_checkpoints(simulation(24), Some(&mut d2));
        assert_eq!(out.resumed_from, None);
        assert_eq!(sim.snapshot().density().w(), 24);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_models_corrupt_degrades_to_pcg() {
        // Every candidate corrupts: the runtime must quarantine them all
        // and finish the run on the exact solver — never panic, never
        // loop forever.
        let c = vec![broken_candidate("broken", 0.9, 0.02)];
        let mut rt = SmartRuntime::new(
            c,
            knn(),
            RuntimeConfig {
                total_steps: 12,
                quality_target: 0.05,
                ..Default::default()
            },
        );
        let out = rt.run(simulation(16));
        assert!(out.degraded, "events: {:?}", out.events);
        assert!(!out.restarted);
        assert!(matches!(out.events.last(), Some(SchedulerEvent::Degrade { barred: 1, .. })));
        assert_eq!(out.quarantined, vec![("broken".to_string(), 1)]);
        assert!(out.density.all_finite(), "PCG tail must produce a clean frame");
        assert_eq!(out.cum_div_norm.len(), 12, "degraded tail completes the run");
        // PCG keeps the tail's DivNorm tiny.
        assert!(out.cum_div_norm.last().unwrap().is_finite());
    }
}
