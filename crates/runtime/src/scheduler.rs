//! The quality-aware model-switch algorithm (Algorithm 2).
//!
//! The runtime starts with the candidate the MLP rates most likely to
//! meet the requirement, then at every check interval predicts the
//! final quality loss (`CumDivNorm` regression → KNN lookup) and
//! switches to a more accurate model when the prediction violates the
//! requirement, to a faster one when there is comfortable slack, and
//! restarts with PCG when no candidate can satisfy the requirement.

use crate::cumdiv::CumDivNormTracker;
use crate::knn::KnnDatabase;
use serde::{Deserialize, Serialize};
use sfn_grid::Field2;
use sfn_nn::network::SavedModel;
use sfn_nn::Network;
use sfn_obs::{Level, ScopedTimer};
use sfn_sim::{ExactProjector, Simulation};
use sfn_solver::{MicPreconditioner, PcgSolver};
use sfn_surrogate::NeuralProjector;

/// One candidate network with its offline statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateModel {
    /// Display name (`M7` style).
    pub name: String,
    /// Trained weights.
    pub saved: SavedModel,
    /// MLP-predicted probability of meeting the requirement.
    pub probability: f64,
    /// Offline mean execution time per simulation (seconds).
    pub exec_time: f64,
    /// Offline mean quality loss (accuracy rank; lower = better).
    pub quality_loss: f64,
}

/// Scheduler parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// The check interval `L` (paper default 5).
    pub check_interval: usize,
    /// Total simulation steps `N`.
    pub total_steps: usize,
    /// Quality requirement `q` (Eq. 3 loss target).
    pub quality_target: f64,
    /// Relative "close to q" band of Algorithm 2 line 9 (e.g. 0.15 =
    /// predictions within ±15% of `q` keep the current model).
    pub tolerance: f64,
    /// Use MLP probabilities to pick the starting model (Figure 12's
    /// "with MLP"); otherwise start from the fastest candidate and only
    /// escalate, mimicking the paper's no-MLP baseline.
    pub use_mlp: bool,
    /// Enable Algorithm 2's model switching. With `false` the starting
    /// model runs to completion unchecked — the "static" policy every
    /// single-model baseline in the paper implicitly uses; exposed for
    /// the scheduler ablation.
    pub adaptive: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            check_interval: 5,
            total_steps: 64,
            quality_target: 0.013,
            tolerance: 0.15,
            use_mlp: true,
            adaptive: true,
        }
    }
}

/// A scheduling event, for telemetry and tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SchedulerEvent {
    /// Switched models at `step` because the predicted loss crossed the
    /// requirement.
    Switch {
        /// Simulation step of the decision.
        step: usize,
        /// Model before the switch.
        from: String,
        /// Model after the switch.
        to: String,
        /// Predicted final quality loss that triggered the decision.
        predicted_loss: f64,
    },
    /// All candidates exhausted; restarted the whole run with PCG.
    Restart {
        /// Simulation step of the decision.
        step: usize,
        /// Predicted final quality loss that triggered the restart.
        predicted_loss: f64,
    },
}

/// The outcome of one scheduled simulation.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Final smoke density (the rendered frame).
    pub density: Field2,
    /// Scheduling events in order.
    pub events: Vec<SchedulerEvent>,
    /// Candidate names in scheduler order — the index space of
    /// `time_per_model` and `steps_per_model`.
    pub model_names: Vec<String>,
    /// Seconds of projection time attributed to each candidate, by
    /// candidate index (Table 3's time distribution).
    pub time_per_model: Vec<f64>,
    /// Steps executed by each candidate.
    pub steps_per_model: Vec<usize>,
    /// Every checkpoint's `(step, predicted final quality loss)` —
    /// the runtime's internal belief trace, for diagnostics.
    pub predictions: Vec<(usize, f64)>,
    /// True if the run fell back to the original PCG simulation.
    pub restarted: bool,
    /// Projection seconds of the PCG restart (0 when not restarted) —
    /// the price of a violated requirement.
    pub restart_time: f64,
    /// Total wall time of the run (including any restart).
    pub wall_time: f64,
    /// The `CumDivNorm` series of the final (surviving) run.
    pub cum_div_norm: Vec<f64>,
}

/// The Algorithm 2 scheduler.
pub struct SmartRuntime {
    /// Candidates sorted from fastest/least-accurate to
    /// slowest/most-accurate (by offline quality loss, descending).
    candidates: Vec<CandidateModel>,
    projectors: Vec<NeuralProjector>,
    knn: KnnDatabase,
    config: RuntimeConfig,
}

impl SmartRuntime {
    /// Builds a runtime over the candidate set.
    ///
    /// # Panics
    /// Panics if `candidates` is empty or a snapshot fails to load.
    pub fn new(mut candidates: Vec<CandidateModel>, knn: KnnDatabase, config: RuntimeConfig) -> Self {
        assert!(!candidates.is_empty(), "need at least one candidate");
        assert!(config.check_interval >= 3, "check interval too small for the regression");
        // Accuracy order: index 0 = least accurate (fastest end of the
        // Pareto front), last = most accurate.
        candidates.sort_by(|a, b| b.quality_loss.total_cmp(&a.quality_loss));
        let projectors = candidates
            .iter()
            .map(|c| {
                let net = Network::load(&c.saved, 0).expect("candidate snapshot must load");
                NeuralProjector::new(net, c.name.clone())
            })
            .collect();
        Self {
            candidates,
            projectors,
            knn,
            config,
        }
    }

    /// The candidates in scheduler (accuracy) order.
    pub fn candidates(&self) -> &[CandidateModel] {
        &self.candidates
    }

    /// Index of the starting model per Algorithm 2 line 1 (highest MLP
    /// probability) or the no-MLP baseline (fastest model).
    fn start_index(&self) -> usize {
        if self.config.use_mlp {
            let mut best = 0;
            for (i, c) in self.candidates.iter().enumerate() {
                if c.probability > self.candidates[best].probability {
                    best = i;
                }
            }
            best
        } else {
            0 // least accurate = fastest end
        }
    }

    /// Runs one simulation under the scheduler.
    pub fn run(&mut self, mut sim: Simulation) -> RunOutcome {
        let cfg = self.config;
        let n_models = self.candidates.len();
        let timer = ScopedTimer::start("runtime/run");
        let mut tracker = CumDivNormTracker::new();
        let mut events = Vec::new();
        let mut time_per_model = vec![0.0; n_models];
        let mut steps_per_model = vec![0usize; n_models];
        let mut predictions = Vec::new();
        let mut current = self.start_index();
        let fresh_sim = sim.clone();
        let mut restarted = false;

        // DivNorm (Eq. 5) is an un-normalised sum over cells; dividing
        // by the cell count makes the KNN database — built offline on
        // *small* problems (§6.1) — transfer across grid sizes.
        let inv_cells = 1.0 / (sim.flags().nx() * sim.flags().ny()) as f64;

        let mut step = 0usize;
        while step < cfg.total_steps {
            let stats = sim.step(&mut self.projectors[current]);
            let div_norm = stats.div_norm * inv_cells;
            tracker.push(div_norm);
            sfn_obs::histogram_record("runtime.div_norm", div_norm);
            time_per_model[current] += stats.projection_time.as_secs_f64();
            steps_per_model[current] += 1;
            step += 1;

            // Failure injection guard: a surrogate that produced NaNs or
            // blew the simulation up is treated as an immediate
            // requirement violation.
            let unhealthy = !sim.is_healthy() || !stats.div_norm.is_finite();

            let at_checkpoint = cfg.adaptive
                && step.is_multiple_of(cfg.check_interval)
                && step < cfg.total_steps;
            if !(at_checkpoint || unhealthy) {
                continue;
            }
            let predicted_loss = if unhealthy {
                f64::INFINITY
            } else {
                match tracker.predict_final(cfg.check_interval, cfg.total_steps) {
                    Some(cdn) => self.knn.predict(cdn),
                    None => continue, // still warming up
                }
            };
            predictions.push((step, predicted_loss));

            let hi = cfg.quality_target * (1.0 + cfg.tolerance);
            let lo = cfg.quality_target * (1.0 - cfg.tolerance);
            // Decide first, mutate after: the whole Algorithm 2 check is
            // reported as exactly one structured event either way.
            let action = if predicted_loss > hi || unhealthy {
                if current + 1 < n_models {
                    "switch_up"
                } else {
                    "restart" // Algorithm 2 line 16: fall back to PCG.
                }
            } else if predicted_loss < lo && cfg.use_mlp && current > 0 {
                // Comfortable slack: move to a faster model.
                "switch_down"
            } else {
                "keep"
            };
            sfn_obs::counter_add("scheduler.checks", 1);
            sfn_obs::event(Level::Info, "scheduler.decision")
                .field_u64("step", step as u64)
                .field_str("model", &self.candidates[current].name)
                .field_f64("predicted_loss", predicted_loss)
                .field_f64("target", cfg.quality_target)
                .field_f64("band_lo", lo)
                .field_f64("band_hi", hi)
                .field_bool("unhealthy", unhealthy)
                .field_str("action", action)
                .emit();
            match action {
                "switch_up" => {
                    sfn_obs::counter_add("scheduler.switches", 1);
                    events.push(SchedulerEvent::Switch {
                        step,
                        from: self.candidates[current].name.clone(),
                        to: self.candidates[current + 1].name.clone(),
                        predicted_loss,
                    });
                    current += 1;
                }
                "switch_down" => {
                    sfn_obs::counter_add("scheduler.switches", 1);
                    events.push(SchedulerEvent::Switch {
                        step,
                        from: self.candidates[current].name.clone(),
                        to: self.candidates[current - 1].name.clone(),
                        predicted_loss,
                    });
                    current -= 1;
                }
                "restart" => {
                    sfn_obs::counter_add("scheduler.restarts", 1);
                    events.push(SchedulerEvent::Restart {
                        step,
                        predicted_loss,
                    });
                    restarted = true;
                }
                _ => {}
            }
            if restarted {
                break;
            }
        }

        let mut restart_time = 0.0;
        let (density, cum) = if restarted {
            let _span = sfn_obs::span!("runtime/restart");
            let mut sim = fresh_sim;
            let mut pcg = ExactProjector::labelled(
                PcgSolver::new(MicPreconditioner::default(), 1e-7, 200_000),
                "pcg",
            );
            let mut restart_tracker = CumDivNormTracker::new();
            for _ in 0..cfg.total_steps {
                let s = sim.step(&mut pcg);
                restart_tracker.push(s.div_norm * inv_cells);
                restart_time += s.projection_time.as_secs_f64();
            }
            (sim.density().clone(), restart_tracker.series().to_vec())
        } else {
            (sim.density().clone(), tracker.series().to_vec())
        };

        RunOutcome {
            density,
            events,
            model_names: self.candidates.iter().map(|c| c.name.clone()).collect(),
            time_per_model,
            steps_per_model,
            predictions,
            restarted,
            restart_time,
            wall_time: timer.stop().as_secs_f64(),
            cum_div_norm: cum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfn_grid::CellFlags;
    use sfn_nn::Network;
    use sfn_sim::SimConfig;
    use sfn_surrogate::{tompson_spec, yang_spec};

    fn candidate(name: &str, spec: &sfn_nn::NetworkSpec, seed: u64, prob: f64, q: f64, t: f64) -> CandidateModel {
        let mut net = Network::from_spec(spec, seed).unwrap();
        CandidateModel {
            name: name.into(),
            saved: net.save(),
            probability: prob,
            exec_time: t,
            quality_loss: q,
        }
    }

    fn knn() -> KnnDatabase {
        // A plausible monotone CumDivNorm -> Qloss mapping.
        KnnDatabase::new((0..64).map(|i| (i as f64 * 10.0, i as f64 * 0.001)).collect())
    }

    fn simulation(n: usize) -> Simulation {
        Simulation::new(SimConfig::plume(n), CellFlags::smoke_box(n, n))
    }

    #[test]
    fn starts_with_highest_probability_model() {
        let c = vec![
            candidate("fast", &yang_spec(2), 1, 0.6, 0.05, 0.1),
            candidate("mid", &yang_spec(4), 2, 0.9, 0.03, 0.2),
            candidate("slow", &tompson_spec(8), 3, 0.7, 0.01, 0.4),
        ];
        let rt = SmartRuntime::new(c, knn(), RuntimeConfig::default());
        // Accuracy order: fast(0.05), mid(0.03), slow(0.01).
        assert_eq!(rt.candidates()[rt.start_index()].name, "mid");
    }

    #[test]
    fn no_mlp_starts_with_fastest() {
        let c = vec![
            candidate("fast", &yang_spec(2), 1, 0.6, 0.05, 0.1),
            candidate("slow", &tompson_spec(8), 3, 0.9, 0.01, 0.4),
        ];
        let rt = SmartRuntime::new(
            c,
            knn(),
            RuntimeConfig {
                use_mlp: false,
                ..Default::default()
            },
        );
        assert_eq!(rt.candidates()[rt.start_index()].name, "fast");
    }

    #[test]
    fn run_completes_and_accounts_time() {
        let c = vec![
            candidate("a", &yang_spec(2), 1, 0.8, 0.05, 0.1),
            candidate("b", &yang_spec(4), 2, 0.7, 0.02, 0.2),
        ];
        let mut rt = SmartRuntime::new(
            c,
            knn(),
            RuntimeConfig {
                total_steps: 20,
                quality_target: 1.0, // always satisfied -> no restart
                ..Default::default()
            },
        );
        let out = rt.run(simulation(16));
        assert!(!out.restarted);
        assert_eq!(out.steps_per_model.iter().sum::<usize>(), 20);
        assert!(out.time_per_model.iter().sum::<f64>() > 0.0);
        assert_eq!(out.cum_div_norm.len(), 20);
        assert!(out.density.all_finite());
    }

    #[test]
    fn impossible_target_restarts_with_pcg() {
        let c = vec![
            candidate("a", &yang_spec(2), 1, 0.8, 0.05, 0.1),
            candidate("b", &yang_spec(4), 2, 0.7, 0.02, 0.2),
        ];
        let mut rt = SmartRuntime::new(
            c,
            knn(),
            RuntimeConfig {
                total_steps: 30,
                quality_target: 1e-9, // untrained nets can never meet this
                ..Default::default()
            },
        );
        let out = rt.run(simulation(16));
        assert!(out.restarted, "events: {:?}", out.events);
        assert!(matches!(out.events.last(), Some(SchedulerEvent::Restart { .. })));
        // The PCG fallback still produces a full, healthy run.
        assert!(out.density.all_finite());
        assert_eq!(out.cum_div_norm.len(), 30);
        // PCG keeps DivNorm tiny.
        assert!(*out.cum_div_norm.last().unwrap() < 1e-4);
    }

    #[test]
    fn escalates_through_models_before_restarting() {
        let c = vec![
            candidate("m0", &yang_spec(2), 1, 0.9, 0.05, 0.1),
            candidate("m1", &yang_spec(3), 2, 0.8, 0.03, 0.2),
            candidate("m2", &yang_spec(4), 3, 0.7, 0.01, 0.3),
        ];
        let mut rt = SmartRuntime::new(
            c,
            knn(),
            RuntimeConfig {
                total_steps: 40,
                quality_target: 1e-9,
                use_mlp: false, // start from the fastest
                ..Default::default()
            },
        );
        let out = rt.run(simulation(16));
        let switches: Vec<(&String, &String)> = out
            .events
            .iter()
            .filter_map(|e| match e {
                SchedulerEvent::Switch { from, to, .. } => Some((from, to)),
                _ => None,
            })
            .collect();
        assert_eq!(switches.len(), 2, "events: {:?}", out.events);
        assert_eq!(switches[0].0, "m0");
        assert_eq!(switches[1].1, "m2");
        assert!(out.restarted);
    }

    #[test]
    fn static_policy_never_switches() {
        let c = vec![
            candidate("a", &yang_spec(2), 1, 0.8, 0.05, 0.1),
            candidate("b", &yang_spec(4), 2, 0.7, 0.02, 0.2),
        ];
        let mut rt = SmartRuntime::new(
            c,
            knn(),
            RuntimeConfig {
                total_steps: 20,
                quality_target: 1e-9, // would force switches when adaptive
                adaptive: false,
                ..Default::default()
            },
        );
        let out = rt.run(simulation(16));
        assert!(out.events.is_empty(), "static policy produced {:?}", out.events);
        assert!(!out.restarted);
        // Only the starting model ran.
        assert_eq!(out.steps_per_model.iter().filter(|&&s| s > 0).count(), 1);
    }

    #[test]
    fn nan_surrogate_triggers_fallback() {
        // A candidate whose weights are NaN: the health guard must kick
        // in and the run must recover via PCG.
        let mut net = Network::from_spec(&yang_spec(2), 1).unwrap();
        for view in net.params() {
            view.values.fill(f32::NAN);
        }
        let c = vec![CandidateModel {
            name: "broken".into(),
            saved: net.save(),
            probability: 0.9,
            exec_time: 0.1,
            quality_loss: 0.02,
        }];
        let mut rt = SmartRuntime::new(
            c,
            knn(),
            RuntimeConfig {
                total_steps: 12,
                quality_target: 0.05,
                ..Default::default()
            },
        );
        let out = rt.run(simulation(16));
        assert!(out.restarted);
        assert!(out.density.all_finite(), "PCG fallback must clean up");
    }
}
