//! Quality-aware runtime design (§6 of the paper).
//!
//! During the simulation, the final quality loss is invisible — running
//! PCG alongside would defeat the acceleration. The runtime instead:
//!
//! 1. accumulates the per-step `DivNorm` into **`CumDivNorm`**
//!    (Eq. 9), whose growth rate stabilises after the first steps;
//! 2. every check interval, fits a least-squares line to the recent
//!    `CumDivNorm` values and extrapolates to the final time step
//!    ([`cumdiv`]);
//! 3. maps the predicted `CumDivNorm_final` to a quality loss with a
//!    k-nearest-neighbour lookup in an offline database ([`knn`]);
//! 4. compares the predicted loss with the user requirement and
//!    switches between the candidate networks — or restarts with PCG —
//!    per Algorithm 2 ([`scheduler`]).
//!
//! The scheduler is additionally *self-healing*: corrupted state rolls
//! back to the last healthy checkpoint ([`scheduler`]), misbehaving
//! models are quarantined with exponential backoff ([`quarantine`]),
//! and when nothing is left the run degrades gracefully to the exact
//! PCG solver. Failures on the construction paths surface as typed
//! [`RuntimeError`]s instead of panics ([`error`]).
//!
//! State can additionally survive *process* failure: [`persist`]
//! threads `sfn-ckpt`'s durable checkpoint store through the scheduler
//! loop, and a killed run resumes bit-identically from the newest valid
//! checkpoint.

#![warn(missing_docs)]

pub mod cumdiv;
pub mod error;
pub mod knn;
pub mod persist;
pub mod quarantine;
pub mod scheduler;
pub mod telemetry;

pub use cumdiv::CumDivNormTracker;
pub use error::RuntimeError;
pub use knn::KnnDatabase;
pub use persist::DurableCheckpointer;
pub use quarantine::{QuarantineDecision, QuarantineEntryState, QuarantineTable, MAX_STRIKES};
pub use scheduler::{
    CandidateModel, RunLimits, RunOutcome, RuntimeConfig, SchedulerEvent, SmartRuntime, Truncation,
};
pub use telemetry::RunSummary;
