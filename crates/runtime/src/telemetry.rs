//! Aggregation of many [`RunOutcome`]s — success rates, switching
//! behaviour and time distributions (the §7.2/§7.3 summary statistics).

use crate::scheduler::{RunOutcome, SchedulerEvent};
use sfn_obs::json::{obj, FromJson, JsonError, ToJson, Value};
use std::collections::BTreeMap;

/// Aggregate statistics over a batch of adaptive runs.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Number of runs aggregated.
    pub runs: usize,
    /// Runs that fell back to PCG via a full restart.
    pub restarts: usize,
    /// Runs that gracefully degraded to PCG after total quarantine.
    pub degraded: usize,
    /// Checkpoint rollbacks across runs (corruption recoveries).
    pub rollbacks: usize,
    /// Total model switches across runs.
    pub switches: usize,
    /// Mean switches per run.
    pub mean_switches: f64,
    /// Seconds of projection time per model name (the Table 3
    /// distribution), normalised to fractions of the total.
    pub time_share: BTreeMap<String, f64>,
    /// Steps executed per model name.
    pub steps_per_model: BTreeMap<String, usize>,
    /// Mean wall time per run.
    pub mean_wall_time: f64,
}

impl ToJson for RunSummary {
    fn to_json_value(&self) -> Value {
        obj([
            ("runs", self.runs.to_json_value()),
            ("restarts", self.restarts.to_json_value()),
            ("degraded", self.degraded.to_json_value()),
            ("rollbacks", self.rollbacks.to_json_value()),
            ("switches", self.switches.to_json_value()),
            ("mean_switches", self.mean_switches.to_json_value()),
            ("time_share", self.time_share.to_json_value()),
            ("steps_per_model", self.steps_per_model.to_json_value()),
            ("mean_wall_time", self.mean_wall_time.to_json_value()),
        ])
    }
}

impl FromJson for RunSummary {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        Ok(RunSummary {
            runs: v.field("runs")?,
            restarts: v.field("restarts")?,
            degraded: v.field("degraded")?,
            rollbacks: v.field("rollbacks")?,
            switches: v.field("switches")?,
            mean_switches: v.field("mean_switches")?,
            time_share: v.field("time_share")?,
            steps_per_model: v.field("steps_per_model")?,
            mean_wall_time: v.field("mean_wall_time")?,
        })
    }
}

impl RunSummary {
    /// Aggregates outcomes. Returns `None` for an empty batch.
    pub fn from_outcomes(outcomes: &[RunOutcome]) -> Option<Self> {
        if outcomes.is_empty() {
            return None;
        }
        let mut time: BTreeMap<String, f64> = BTreeMap::new();
        let mut steps: BTreeMap<String, usize> = BTreeMap::new();
        let mut switches = 0usize;
        let mut restarts = 0usize;
        let mut degraded = 0usize;
        let mut rollbacks = 0usize;
        let mut wall = 0.0;
        for out in outcomes {
            for ((name, &secs), &s) in out
                .model_names
                .iter()
                .zip(&out.time_per_model)
                .zip(&out.steps_per_model)
            {
                *time.entry(name.clone()).or_insert(0.0) += secs;
                *steps.entry(name.clone()).or_insert(0) += s;
            }
            switches += out
                .events
                .iter()
                .filter(|e| matches!(e, SchedulerEvent::Switch { .. }))
                .count();
            restarts += usize::from(out.restarted);
            degraded += usize::from(out.degraded);
            rollbacks += out.rollbacks;
            wall += out.wall_time;
        }
        let total_time: f64 = time.values().sum();
        let time_share = time
            .into_iter()
            .map(|(k, v)| (k, if total_time > 0.0 { v / total_time } else { 0.0 }))
            .collect();
        Some(Self {
            runs: outcomes.len(),
            restarts,
            degraded,
            rollbacks,
            switches,
            mean_switches: switches as f64 / outcomes.len() as f64,
            time_share,
            steps_per_model: steps,
            mean_wall_time: wall / outcomes.len() as f64,
        })
    }

    /// The model carrying the largest time share, if any time was spent.
    pub fn dominant_model(&self) -> Option<(&str, f64)> {
        self.time_share
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .filter(|(_, &share)| share > 0.0)
            .map(|(k, &v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfn_grid::Field2;

    fn outcome(names: &[&str], secs: &[f64], steps: &[usize], restarted: bool) -> RunOutcome {
        RunOutcome {
            density: Field2::new(2, 2),
            events: vec![SchedulerEvent::Switch {
                step: 5,
                from: names[0].into(),
                to: names[names.len() - 1].into(),
                predicted_loss: 0.02,
            }],
            model_names: names.iter().map(|s| s.to_string()).collect(),
            time_per_model: secs.to_vec(),
            steps_per_model: steps.to_vec(),
            predictions: vec![(5, 0.02)],
            restarted,
            restart_time: 0.0,
            wall_time: 1.0,
            cum_div_norm: vec![0.1, 0.2],
            rollbacks: 0,
            degraded: false,
            quarantined: Vec::new(),
            resumed_from: None,
            truncation: None,
        }
    }

    #[test]
    fn aggregates_time_shares() {
        let outs = vec![
            outcome(&["A", "B"], &[1.0, 3.0], &[2, 6], false),
            outcome(&["A", "B"], &[1.0, 0.0], &[2, 0], true),
        ];
        let s = RunSummary::from_outcomes(&outs).unwrap();
        assert_eq!(s.runs, 2);
        assert_eq!(s.restarts, 1);
        assert_eq!(s.degraded, 0);
        assert_eq!(s.rollbacks, 0);
        assert_eq!(s.switches, 2);
        assert!((s.time_share["A"] - 0.4).abs() < 1e-12);
        assert!((s.time_share["B"] - 0.6).abs() < 1e-12);
        assert_eq!(s.steps_per_model["A"], 4);
        assert_eq!(s.dominant_model().unwrap().0, "B");
        assert!((s.mean_wall_time - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_is_none() {
        assert!(RunSummary::from_outcomes(&[]).is_none());
    }

    #[test]
    fn zero_time_batch_has_no_dominant_model() {
        // All-zero projection time (e.g. mocked runs): shares collapse to
        // zero and no model may be declared dominant.
        let outs = vec![outcome(&["A", "B"], &[0.0, 0.0], &[3, 3], false)];
        let s = RunSummary::from_outcomes(&outs).unwrap();
        assert!(s.dominant_model().is_none());
        assert!(s.time_share.values().all(|&v| v == 0.0));
    }

    #[test]
    fn time_shares_sum_to_one() {
        let outs = vec![
            outcome(&["A", "B", "C"], &[0.25, 1.5, 0.125], &[1, 5, 1], false),
            outcome(&["A", "B", "C"], &[0.5, 0.0, 2.0], &[2, 0, 8], false),
        ];
        let s = RunSummary::from_outcomes(&outs).unwrap();
        let total: f64 = s.time_share.values().sum();
        assert!((total - 1.0).abs() < 1e-12, "shares sum to {total}");
        assert!(s.time_share.values().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
