//! KNN prediction of the final quality loss (§6.1).
//!
//! "During the offline phase, we test the neural network models … with
//! 128 small input problems. For each test, we collect a pair of data
//! `(CumDivNorm_final, Q_loss)` and put them into a historical
//! database. … we find k pairs whose `CumDivNorm_final` are the
//! closest … and use the average of `Q_loss` in the k pairs. … we
//! choose k = 4. We organise all data pairs as a binary search tree,
//! such that finding the four pairs is cheap."

use crate::error::RuntimeError;

/// The historical `(CumDivNorm_final, Q_loss)` database with O(log n)
/// neighbour lookup over a sorted key array (the flat-array equivalent
/// of the paper's binary search tree).
#[derive(Debug, Clone)]
pub struct KnnDatabase {
    /// Pairs sorted by `CumDivNorm_final`.
    pairs: Vec<(f64, f64)>,
    k: usize,
}

impl sfn_obs::json::ToJson for KnnDatabase {
    fn to_json_value(&self) -> sfn_obs::json::Value {
        sfn_obs::json::obj([
            ("pairs", self.pairs.to_json_value()),
            ("k", self.k.to_json_value()),
        ])
    }
}

impl sfn_obs::json::FromJson for KnnDatabase {
    fn from_json_value(
        v: &sfn_obs::json::Value,
    ) -> Result<Self, sfn_obs::json::JsonError> {
        let pairs: Vec<(f64, f64)> = v.field("pairs")?;
        let k: usize = v.field("k")?;
        // Re-validate through the constructor so a hand-edited artifact
        // cannot smuggle in NaN pairs or k = 0.
        KnnDatabase::with_k(pairs, k).map_err(|e| sfn_obs::json::JsonError {
            at: 0,
            message: format!("invalid KnnDatabase: {e}"),
        })
    }
}

impl KnnDatabase {
    /// Builds a database from unsorted pairs with the paper's `k = 4`.
    ///
    /// Fails with a typed [`RuntimeError`] on an empty database or a
    /// NaN/∞ pair — a corrupted offline artifact must surface as a
    /// recoverable error, not a panic inside the online runtime.
    pub fn new(pairs: Vec<(f64, f64)>) -> Result<Self, RuntimeError> {
        Self::with_k(pairs, 4)
    }

    /// Builds a database with an explicit `k`.
    pub fn with_k(mut pairs: Vec<(f64, f64)>, k: usize) -> Result<Self, RuntimeError> {
        if k == 0 {
            return Err(RuntimeError::ZeroNeighbours);
        }
        if pairs.is_empty() {
            return Err(RuntimeError::EmptyKnnDatabase);
        }
        if let Some((index, &(key, value))) = pairs
            .iter()
            .enumerate()
            .find(|(_, (c, q))| !c.is_finite() || !q.is_finite())
        {
            return Err(RuntimeError::NonFiniteKnnPair { index, key, value });
        }
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        Ok(Self { pairs, k })
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the database holds no pairs (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The configured neighbour count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Predicts `Q_loss` for a `CumDivNorm_final` value: the mean
    /// `Q_loss` of the `k` nearest keys (two-pointer expansion around
    /// the binary-search insertion point).
    pub fn predict(&self, cum_div_norm_final: f64) -> f64 {
        let n = self.pairs.len();
        let k = self.k.min(n);
        let pos = self
            .pairs
            .partition_point(|&(c, _)| c < cum_div_norm_final);
        // Expand the window [lo, hi) around pos picking nearest keys.
        let mut lo = pos;
        let mut hi = pos;
        while hi - lo < k {
            if lo == 0 {
                hi += 1;
            } else if hi == n {
                lo -= 1;
            } else {
                let d_lo = (cum_div_norm_final - self.pairs[lo - 1].0).abs();
                let d_hi = (self.pairs[hi].0 - cum_div_norm_final).abs();
                if d_lo <= d_hi {
                    lo -= 1;
                } else {
                    hi += 1;
                }
            }
        }
        let sum: f64 = self.pairs[lo..hi].iter().map(|&(_, q)| q).sum();
        sum / k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn papers_worked_example() {
        // §6.1: pairs (101, 0.09), (112, 0.11), (105, 0.10), (109, 0.11);
        // predicted CumDivNorm_final = 108 -> Q_loss = 0.1025.
        let db = KnnDatabase::new(vec![(101.0, 0.09), (112.0, 0.11), (105.0, 0.10), (109.0, 0.11)]).unwrap();
        let q = db.predict(108.0);
        assert!((q - 0.1025).abs() < 1e-12, "predicted {q}");
    }

    #[test]
    fn nearest_neighbours_chosen_not_first_k() {
        let db = KnnDatabase::with_k(
            vec![(0.0, 0.0), (1.0, 0.0), (100.0, 1.0), (101.0, 1.0), (102.0, 1.0)],
            2,
        )
        .unwrap();
        assert_eq!(db.predict(100.5), 1.0);
        assert_eq!(db.predict(0.5), 0.0);
    }

    #[test]
    fn k_larger_than_database_uses_everything() {
        let db = KnnDatabase::with_k(vec![(1.0, 0.1), (2.0, 0.3)], 10).unwrap();
        assert!((db.predict(1.5) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn monotone_database_gives_monotone_predictions() {
        let pairs: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, i as f64 * 0.001)).collect();
        let db = KnnDatabase::new(pairs).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for x in [0.0, 10.0, 20.0, 30.0, 45.0, 60.0] {
            let q = db.predict(x);
            assert!(q >= prev, "non-monotone at {x}");
            prev = q;
        }
    }

    #[test]
    fn extrapolation_clamps_to_extremes() {
        let db = KnnDatabase::new(vec![(10.0, 0.01), (20.0, 0.02), (30.0, 0.03), (40.0, 0.04)]).unwrap();
        // Far below: the 4 nearest are all of them -> mean 0.025.
        assert!((db.predict(-100.0) - 0.025).abs() < 1e-12);
        assert!((db.predict(1e9) - 0.025).abs() < 1e-12);
    }

    #[test]
    fn construction_failures_are_typed_errors() {
        use crate::error::RuntimeError;
        assert_eq!(KnnDatabase::new(vec![]).unwrap_err(), RuntimeError::EmptyKnnDatabase);
        assert_eq!(
            KnnDatabase::with_k(vec![(1.0, 0.1)], 0).unwrap_err(),
            RuntimeError::ZeroNeighbours
        );
        match KnnDatabase::new(vec![(1.0, 0.1), (f64::NAN, 0.2)]).unwrap_err() {
            RuntimeError::NonFiniteKnnPair { index, key, .. } => {
                assert_eq!(index, 1);
                assert!(key.is_nan());
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
