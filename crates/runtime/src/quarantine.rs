//! Per-model quarantine with exponential backoff.
//!
//! A candidate that corrupts a run (NaN/∞ state, blown-up velocities)
//! is *struck*: after its `n`-th strike it is quarantined for `2^n`
//! check intervals, and after [`MAX_STRIKES`] strikes it is ejected for
//! the rest of the run. Time is measured in check-interval indices so
//! backoff follows the scheduler's own clock — a rollback that rewinds
//! the step counter also rewinds the clock, which keeps a corruption
//! storm from re-admitting models mid-storm.

/// Strikes after which a model is permanently ejected.
pub const MAX_STRIKES: u32 = 3;

/// The outcome of one strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineDecision {
    /// Quarantined until the given check-interval index (exclusive).
    Quarantined {
        /// Strikes accumulated so far.
        strikes: u32,
        /// First interval at which the model is eligible again.
        until_interval: u64,
    },
    /// Ejected for the rest of the run.
    Ejected {
        /// Strikes accumulated so far.
        strikes: u32,
    },
}

impl sfn_obs::json::ToJson for QuarantineDecision {
    fn to_json_value(&self) -> sfn_obs::json::Value {
        use sfn_obs::json::obj;
        match *self {
            QuarantineDecision::Quarantined { strikes, until_interval } => obj([(
                "Quarantined",
                obj([
                    ("strikes", strikes.to_json_value()),
                    ("until_interval", until_interval.to_json_value()),
                ]),
            )]),
            QuarantineDecision::Ejected { strikes } => {
                obj([("Ejected", obj([("strikes", strikes.to_json_value())]))])
            }
        }
    }
}

impl sfn_obs::json::FromJson for QuarantineDecision {
    fn from_json_value(
        v: &sfn_obs::json::Value,
    ) -> Result<Self, sfn_obs::json::JsonError> {
        let err = |m: String| sfn_obs::json::JsonError { at: 0, message: m };
        let fields = v
            .as_obj()
            .ok_or_else(|| err("expected QuarantineDecision object".to_string()))?;
        let [(tag, body)] = fields else {
            return Err(err(format!(
                "expected single-variant object, got {} keys",
                fields.len()
            )));
        };
        match tag.as_str() {
            "Quarantined" => Ok(QuarantineDecision::Quarantined {
                strikes: body.field("strikes")?,
                until_interval: body.field("until_interval")?,
            }),
            "Ejected" => Ok(QuarantineDecision::Ejected { strikes: body.field("strikes")? }),
            other => Err(err(format!("unknown QuarantineDecision variant `{other}`"))),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    strikes: u32,
    until_interval: u64,
    ejected: bool,
}

/// One model's quarantine state, as exported for durable checkpointing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuarantineEntryState {
    /// Strikes accumulated so far.
    pub strikes: u32,
    /// First check interval at which the model is eligible again.
    pub until_interval: u64,
    /// True when the model was permanently ejected.
    pub ejected: bool,
}

/// Strike bookkeeping for an indexed model set.
#[derive(Debug, Clone)]
pub struct QuarantineTable {
    entries: Vec<Entry>,
}

impl QuarantineTable {
    /// A table over `n` models, all healthy.
    pub fn new(n: usize) -> Self {
        Self { entries: vec![Entry::default(); n] }
    }

    /// Number of tracked models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table tracks no models.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records a strike against `model` at check interval `now`.
    pub fn strike(&mut self, model: usize, now: u64) -> QuarantineDecision {
        let e = &mut self.entries[model];
        e.strikes += 1;
        if e.strikes >= MAX_STRIKES {
            e.ejected = true;
            QuarantineDecision::Ejected { strikes: e.strikes }
        } else {
            // Backoff doubles per strike: 2, 4, 8 … intervals.
            let hold = 1u64 << e.strikes.min(62);
            e.until_interval = now.saturating_add(hold);
            QuarantineDecision::Quarantined { strikes: e.strikes, until_interval: e.until_interval }
        }
    }

    /// True if `model` may run at check interval `now`.
    pub fn is_available(&self, model: usize, now: u64) -> bool {
        let e = &self.entries[model];
        !e.ejected && now >= e.until_interval
    }

    /// True if `model` was permanently ejected.
    pub fn is_ejected(&self, model: usize) -> bool {
        self.entries[model].ejected
    }

    /// Strikes recorded against `model`.
    pub fn strikes(&self, model: usize) -> u32 {
        self.entries[model].strikes
    }

    /// True when *no* model may run at check interval `now` — the
    /// trigger for graceful degradation to the exact solver.
    pub fn all_unavailable(&self, now: u64) -> bool {
        (0..self.entries.len()).all(|m| !self.is_available(m, now))
    }

    /// Models barred at `now` (quarantined or ejected), by index.
    pub fn unavailable(&self, now: u64) -> Vec<usize> {
        (0..self.entries.len()).filter(|&m| !self.is_available(m, now)).collect()
    }

    /// Exports the per-model state for durable checkpointing.
    pub fn export_state(&self) -> Vec<QuarantineEntryState> {
        self.entries
            .iter()
            .map(|e| QuarantineEntryState {
                strikes: e.strikes,
                until_interval: e.until_interval,
                ejected: e.ejected,
            })
            .collect()
    }

    /// Rebuilds a table from exported state — the resume path. Strikes,
    /// backoff deadlines and ejections carry over so a crash cannot
    /// launder a misbehaving model back into rotation.
    pub fn from_state(entries: &[QuarantineEntryState]) -> Self {
        Self {
            entries: entries
                .iter()
                .map(|s| Entry {
                    strikes: s.strikes,
                    until_interval: s.until_interval,
                    ejected: s.ejected,
                })
                .collect(),
        }
    }

    /// The nearest available model to `from`, preferring more accurate
    /// (higher index) candidates — the replacement policy after a
    /// corruption strike. Returns `None` when everything is barred.
    pub fn next_available(&self, from: usize, now: u64) -> Option<usize> {
        (from + 1..self.entries.len())
            .find(|&m| self.is_available(m, now))
            .or_else(|| (0..=from.min(self.entries.len() - 1)).rev().find(|&m| self.is_available(m, now)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strikes_escalate_backoff_then_eject() {
        let mut q = QuarantineTable::new(2);
        assert_eq!(
            q.strike(0, 10),
            QuarantineDecision::Quarantined { strikes: 1, until_interval: 12 }
        );
        assert_eq!(
            q.strike(0, 20),
            QuarantineDecision::Quarantined { strikes: 2, until_interval: 24 }
        );
        assert_eq!(q.strike(0, 30), QuarantineDecision::Ejected { strikes: 3 });
        assert!(q.is_ejected(0));
        assert!(!q.is_available(0, u64::MAX));
        // The other model is untouched.
        assert!(q.is_available(1, 0));
        assert_eq!(q.strikes(1), 0);
    }

    #[test]
    fn readmission_after_backoff_expires() {
        let mut q = QuarantineTable::new(1);
        q.strike(0, 5); // barred for 2 intervals: 5+2 = 7
        assert!(!q.is_available(0, 5));
        assert!(!q.is_available(0, 6));
        assert!(q.is_available(0, 7), "2^1 intervals after the first strike");

        q.strike(0, 7); // second strike: barred until 7+4 = 11
        assert!(!q.is_available(0, 10));
        assert!(q.is_available(0, 11), "2^2 intervals after the second strike");
    }

    #[test]
    fn all_unavailable_detects_total_quarantine() {
        let mut q = QuarantineTable::new(2);
        assert!(!q.all_unavailable(0));
        q.strike(0, 0);
        assert!(!q.all_unavailable(0));
        q.strike(1, 0);
        assert!(q.all_unavailable(0));
        assert_eq!(q.unavailable(0), vec![0, 1]);
        // Both re-admit after their backoff.
        assert!(!q.all_unavailable(2));
    }

    #[test]
    fn next_available_prefers_escalation() {
        let mut q = QuarantineTable::new(4);
        // From model 1 the replacement is the next more accurate model.
        assert_eq!(q.next_available(1, 0), Some(2));
        q.strike(2, 0);
        assert_eq!(q.next_available(1, 0), Some(3), "skips the quarantined model");
        q.strike(3, 0);
        // Nothing above is available: fall back to the best below.
        assert_eq!(q.next_available(1, 0), Some(1));
        q.strike(1, 0);
        assert_eq!(q.next_available(1, 0), Some(0));
        q.strike(0, 0);
        assert_eq!(q.next_available(1, 0), None);
    }

    #[test]
    fn export_import_round_trips_strikes_and_ejections() {
        let mut q = QuarantineTable::new(3);
        q.strike(0, 4);
        q.strike(1, 4);
        q.strike(1, 10);
        q.strike(2, 0);
        q.strike(2, 0);
        q.strike(2, 0); // ejected
        let state = q.export_state();
        let mut back = QuarantineTable::from_state(&state);
        assert_eq!(back.export_state(), state);
        for now in [0u64, 4, 6, 11, 14, 100] {
            for m in 0..3 {
                assert_eq!(back.is_available(m, now), q.is_available(m, now), "model {m} at {now}");
            }
        }
        assert!(back.is_ejected(2));
        // A strike after resume continues the escalation, not a reset.
        assert_eq!(back.strike(1, 20), QuarantineDecision::Ejected { strikes: 3 });
    }

    #[test]
    fn rollback_rewound_clock_keeps_models_barred() {
        let mut q = QuarantineTable::new(1);
        q.strike(0, 4);
        // The scheduler rolled back; "now" did not advance.
        assert!(!q.is_available(0, 4));
        assert!(q.all_unavailable(4));
    }
}
