//! Typed runtime errors — the recoverable replacements for the
//! `expect`/`assert` panics the candidate-load and KNN paths used to
//! carry.

/// Why the quality-aware runtime could not be built or advanced.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// Every supplied candidate was rejected (snapshot failed to load);
    /// the rejects carry `(name, reason)` pairs for diagnosis.
    NoUsableCandidates {
        /// The `(candidate name, load-failure reason)` pairs.
        rejected: Vec<(String, String)>,
    },
    /// A scheduler parameter is out of range.
    InvalidConfig(String),
    /// The KNN quality database was constructed without any pairs.
    EmptyKnnDatabase,
    /// A KNN pair carries a NaN/∞ key or value.
    NonFiniteKnnPair {
        /// Index of the offending pair in the input order.
        index: usize,
        /// The pair's `CumDivNorm_final` key.
        key: f64,
        /// The pair's `Q_loss` value.
        value: f64,
    },
    /// `k = 0` was requested for the KNN lookup.
    ZeroNeighbours,
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoUsableCandidates { rejected } => {
                write!(f, "no usable candidate models ({} rejected", rejected.len())?;
                if let Some((name, why)) = rejected.first() {
                    write!(f, "; first: {name}: {why}")?;
                }
                write!(f, ")")
            }
            Self::InvalidConfig(why) => write!(f, "invalid runtime config: {why}"),
            Self::EmptyKnnDatabase => write!(f, "KNN database cannot be empty"),
            Self::NonFiniteKnnPair { index, key, value } => {
                write!(f, "non-finite KNN pair #{index}: ({key}, {value})")
            }
            Self::ZeroNeighbours => write!(f, "KNN neighbour count k must be positive"),
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_diagnosis() {
        let e = RuntimeError::NoUsableCandidates {
            rejected: vec![("M7".into(), "weights truncated".into())],
        };
        let s = e.to_string();
        assert!(s.contains("M7") && s.contains("weights truncated"), "{s}");
        assert!(RuntimeError::EmptyKnnDatabase.to_string().contains("empty"));
        let nf = RuntimeError::NonFiniteKnnPair { index: 3, key: f64::NAN, value: 0.1 };
        assert!(nf.to_string().contains("#3"));
    }
}
