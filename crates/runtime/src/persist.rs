//! Durable checkpointing glue between the scheduler and `sfn-ckpt`.
//!
//! `sfn-ckpt` sits *below* the runtime in the dependency order and
//! speaks plain data; this module owns the two directions of the
//! conversation:
//!
//! * **cadence** — [`DurableCheckpointer`] wraps a
//!   [`CheckpointStore`] and decides *when* a durable write is due
//!   (at healthy check intervals, at least `every` steps apart);
//! * **conversion** — live scheduler state ([`CumDivNormTracker`],
//!   [`QuarantineTable`]) to and from the checkpoint's plain-data
//!   mirror types.
//!
//! Durable writes are best-effort: a full disk degrades the run to
//! in-RAM-only resilience with a `ckpt.write_failed` warning, it never
//! aborts the simulation.

use crate::cumdiv::CumDivNormTracker;
use crate::quarantine::{QuarantineEntryState, QuarantineTable};
use sfn_ckpt::{recover_latest, CheckpointDoc, CheckpointStore, QuarantineEntry, Recovery, TrackerState};
use std::io;
use std::path::{Path, PathBuf};

/// A checkpoint store plus write cadence, as consumed by
/// [`SmartRuntime::run_with_checkpoints`](crate::SmartRuntime::run_with_checkpoints).
#[derive(Debug)]
pub struct DurableCheckpointer {
    store: CheckpointStore,
    every: usize,
    last_written: Option<u64>,
}

impl DurableCheckpointer {
    /// Opens (creating if needed) the checkpoint directory. `every` is
    /// the minimum step distance between durable writes, `keep` the
    /// retain-last-K count; both are clamped to at least 1.
    pub fn new(dir: impl Into<PathBuf>, every: usize, keep: usize) -> io::Result<Self> {
        Ok(Self {
            store: CheckpointStore::open(dir)?.with_keep(keep.max(1)),
            every: every.max(1),
            last_written: None,
        })
    }

    /// Builds a checkpointer from `SFN_CKPT_DIR` / `SFN_CKPT_EVERY` /
    /// `SFN_CKPT_KEEP`. Returns `Ok(None)` when `SFN_CKPT_DIR` is
    /// unset (durable checkpointing disabled).
    pub fn from_env() -> io::Result<Option<Self>> {
        let cfg = sfn_ckpt::env_config();
        match cfg.dir {
            Some(dir) => Ok(Some(Self::new(dir, cfg.every, cfg.keep)?)),
            None => Ok(None),
        }
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        self.store.dir()
    }

    /// True when a durable write at `step` honours the cadence: the
    /// first opportunity always writes, later ones once at least
    /// `every` steps passed since the last durable checkpoint.
    pub fn due(&self, step: u64) -> bool {
        match self.last_written {
            None => true,
            Some(last) => step >= last + self.every as u64,
        }
    }

    /// Durably writes one checkpoint and advances the cadence clock.
    pub fn write(&mut self, doc: &CheckpointDoc) -> io::Result<PathBuf> {
        let path = self.store.write(doc)?;
        self.last_written = Some(doc.step);
        Ok(path)
    }

    /// Scans the directory for the newest valid checkpoint (see
    /// [`recover_latest`]) and aligns the cadence clock with it, so a
    /// resumed run does not immediately rewrite the checkpoint it just
    /// loaded.
    pub fn recover(&mut self) -> io::Result<Option<Recovery>> {
        let recovery = recover_latest(self.store.dir())?;
        if let Some(r) = &recovery {
            self.last_written = Some(r.doc.step);
        }
        Ok(recovery)
    }
}

/// Captures a tracker as checkpoint plain data.
pub fn tracker_state(tracker: &CumDivNormTracker) -> TrackerState {
    TrackerState {
        series: tracker.series().to_vec(),
        warmup_steps: tracker.warmup_steps() as u32,
        skip_per_interval: tracker.skip_per_interval() as u32,
    }
}

/// Rebuilds a tracker from checkpoint plain data, bit-identically.
pub fn tracker_from_state(state: &TrackerState) -> CumDivNormTracker {
    CumDivNormTracker::from_parts(
        state.series.clone(),
        state.warmup_steps as usize,
        state.skip_per_interval as usize,
    )
}

/// Captures a quarantine table as checkpoint plain data.
pub fn quarantine_state(table: &QuarantineTable) -> Vec<QuarantineEntry> {
    table
        .export_state()
        .iter()
        .map(|e| QuarantineEntry {
            strikes: e.strikes,
            until_interval: e.until_interval,
            ejected: e.ejected,
        })
        .collect()
}

/// Rebuilds a quarantine table from checkpoint plain data.
pub fn quarantine_from_state(entries: &[QuarantineEntry]) -> QuarantineTable {
    let states: Vec<QuarantineEntryState> = entries
        .iter()
        .map(|e| QuarantineEntryState {
            strikes: e.strikes,
            until_interval: e.until_interval,
            ejected: e.ejected,
        })
        .collect();
    QuarantineTable::from_state(&states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("sfn-runtime-persist")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cadence_first_write_then_every_n() {
        let dir = temp_dir("cadence");
        let mut d = DurableCheckpointer::new(&dir, 10, 3).unwrap();
        assert!(d.due(5), "first opportunity always writes");
        d.last_written = Some(5);
        assert!(!d.due(10));
        assert!(!d.due(14));
        assert!(d.due(15));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tracker_round_trips_bit_identically() {
        let mut t = CumDivNormTracker::new();
        for v in [0.1, 0.3, f64::MIN_POSITIVE, 7.25] {
            t.push(v);
        }
        let back = tracker_from_state(&tracker_state(&t));
        let bits = |xs: &[f64]| xs.iter().map(|v| v.to_bits()).collect::<Vec<u64>>();
        assert_eq!(bits(back.series()), bits(t.series()));
        assert_eq!(back.warmup_steps(), t.warmup_steps());
        assert_eq!(back.skip_per_interval(), t.skip_per_interval());
    }

    #[test]
    fn quarantine_round_trips_decisions() {
        let mut q = QuarantineTable::new(3);
        q.strike(0, 2);
        q.strike(1, 2);
        q.strike(1, 3);
        q.strike(1, 4); // third strike ejects
        let back = quarantine_from_state(&quarantine_state(&q));
        assert_eq!(back.export_state(), q.export_state());
        assert!(!back.is_available(1, 100), "ejection must survive");
    }

    #[test]
    fn from_env_disabled_without_dir() {
        // SFN_CKPT_DIR is not set in the test environment.
        if std::env::var("SFN_CKPT_DIR").is_err() {
            assert!(DurableCheckpointer::from_env().unwrap().is_none());
        }
    }
}
