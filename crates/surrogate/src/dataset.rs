//! Training-data generation for projection surrogates.
//!
//! Runs reference simulations (PCG projection) over a training problem
//! set and captures, at sampled time steps, the tuples the DivNorm
//! objective needs: the pre-projection divergence, the geometry, the
//! Eq. 5 weights and (for evaluation/supervised experiments) the exact
//! PCG pressure.

use sfn_grid::{distance::divnorm_weights, CellFlags, Field2};
use sfn_nn::Tensor;
use sfn_sim::{ExactProjector, PressureProjector};
use sfn_solver::{MicPreconditioner, PcgSolver};
use sfn_workload::ProblemSet;

/// One training sample.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Normalised network input `[1, 2, h, w]`: channel 0 is the
    /// divergence divided by `scale`, channel 1 the solid occupancy.
    pub input: Tensor,
    /// The normalisation factor `max|∇·u*|` (1.0 when the field was
    /// all-zero).
    pub scale: f64,
    /// Raw (unnormalised) divergence field.
    pub divergence: Field2,
    /// Exact PCG pressure for this state (evaluation / supervision).
    pub reference_pressure: Field2,
    /// Index into [`ProjectionDataset::geometries`].
    pub geometry: usize,
}

/// A dataset of projection samples over a pool of geometries.
#[derive(Debug, Clone)]
pub struct ProjectionDataset {
    /// Distinct geometries referenced by samples.
    pub geometries: Vec<CellFlags>,
    /// Eq. 5 weight field per geometry.
    pub weights: Vec<Field2>,
    /// Occupancy image per geometry (cached network channel 1).
    occupancy: Vec<Field2>,
    /// The samples.
    pub samples: Vec<Sample>,
    /// Time step shared by all samples.
    pub dt: f64,
    /// Grid spacing.
    pub dx: f64,
}

/// Fixed output gain: the network predicts `p̂ / (scale · GAIN)`.
///
/// The discrete Poisson solution is one to two orders of magnitude
/// larger than its right-hand side (the inverse Laplacian amplifies
/// smooth modes by ~R²/π² over a receptive field of R cells), so
/// letting the net work in O(1) outputs and folding the magnitude into
/// a constant dramatically speeds up training. The value is tied to
/// the surrogates' receptive field, not the grid size, so it is valid
/// across resolutions.
pub const PRESSURE_GAIN: f64 = 10.0;

/// Builds the normalised `[1, 2, h, w]` input tensor from a divergence
/// field and occupancy image. Returns the tensor and the scale.
pub fn build_input(divergence: &Field2, occupancy: &Field2) -> (Tensor, f64) {
    let (w, h) = (divergence.w(), divergence.h());
    let scale = {
        let m = divergence.max_abs();
        if m > 0.0 {
            m
        } else {
            1.0
        }
    };
    let mut t = Tensor::zeros(1, 2, h, w);
    for j in 0..h {
        for i in 0..w {
            t.set(0, 0, j, i, (divergence.at(i, j) / scale) as f32);
            t.set(0, 1, j, i, occupancy.at(i, j) as f32);
        }
    }
    (t, scale)
}

/// Converts a `[1, 1, h, w]` network output plane into a pressure
/// field, rescaling by `scale ·` [`PRESSURE_GAIN`] and zeroing
/// non-fluid cells.
pub fn output_to_pressure(output: &Tensor, scale: f64, flags: &CellFlags) -> Field2 {
    let (n, c, h, w) = output.shape();
    assert_eq!((n, c), (1, 1), "expected a single pressure plane");
    assert_eq!((flags.nx(), flags.ny()), (w, h), "geometry shape");
    let s = scale * PRESSURE_GAIN;
    Field2::from_fn(w, h, |i, j| {
        if flags.is_fluid(i, j) {
            output.at(0, 0, j, i) as f64 * s
        } else {
            0.0
        }
    })
}

impl ProjectionDataset {
    /// Generates a dataset by running each problem of `set` for
    /// `steps` time steps under exact PCG projection and capturing
    /// every `capture_every`-th step.
    pub fn generate(set: &ProblemSet, steps: usize, capture_every: usize) -> Self {
        assert!(capture_every >= 1, "capture_every must be >= 1");
        let mut geometries = Vec::new();
        let mut weights = Vec::new();
        let mut occupancy = Vec::new();
        let mut samples = Vec::new();
        let mut dt = 0.0;
        let mut dx = 1.0;
        for problem in set.iter() {
            dt = problem.config.dt;
            dx = problem.config.dx;
            let geom_idx = geometries.len();
            geometries.push(problem.flags.clone());
            weights.push(divnorm_weights(&problem.flags, problem.config.divnorm_k));
            occupancy.push(problem.flags.occupancy());
            let mut sim = problem.simulation();
            let solver = PcgSolver::new(MicPreconditioner::default(), 1e-7, 50_000);
            let mut projector = CapturingProjector {
                inner: ExactProjector::labelled(solver, "pcg"),
                captured: Vec::new(),
                capture_next: false,
            };
            for step in 0..steps {
                projector.capture_next = step % capture_every == 0;
                sim.step(&mut projector);
            }
            for (div, pressure) in projector.captured {
                let (input, scale) = build_input(&div, &occupancy[geom_idx]);
                samples.push(Sample {
                    input,
                    scale,
                    divergence: div,
                    reference_pressure: pressure,
                    geometry: geom_idx,
                });
            }
        }
        Self {
            geometries,
            weights,
            occupancy,
            samples,
            dt,
            dx,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were captured.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Occupancy image of geometry `g`.
    pub fn occupancy(&self, g: usize) -> &Field2 {
        &self.occupancy[g]
    }
}

/// Wraps an exact projector, stealing a copy of (divergence, pressure)
/// on flagged steps.
struct CapturingProjector<S> {
    inner: ExactProjector<S>,
    captured: Vec<(Field2, Field2)>,
    capture_next: bool,
}

impl<S: sfn_solver::PoissonSolver> PressureProjector for CapturingProjector<S> {
    fn solve_pressure(
        &mut self,
        divergence: &Field2,
        flags: &CellFlags,
        dx: f64,
        dt: f64,
    ) -> sfn_sim::ProjectionOutcome {
        let outcome = self.inner.solve_pressure(divergence, flags, dx, dt);
        if self.capture_next {
            self.captured.push((divergence.clone(), outcome.pressure.clone()));
        }
        outcome
    }

    fn name(&self) -> String {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfn_workload::ProblemSet;

    #[test]
    fn generates_expected_sample_count() {
        let set = ProblemSet::training(16, 2);
        let ds = ProjectionDataset::generate(&set, 6, 2);
        // 2 problems × ⌈6/2⌉ captures.
        assert_eq!(ds.len(), 6);
        assert_eq!(ds.geometries.len(), 2);
        assert_eq!(ds.dt, 0.5);
    }

    #[test]
    fn inputs_are_normalised() {
        let set = ProblemSet::training(16, 1);
        let ds = ProjectionDataset::generate(&set, 4, 1);
        for s in &ds.samples {
            let max = s
                .input
                .plane(0, 0)
                .iter()
                .fold(0.0f32, |m, &v| m.max(v.abs()));
            assert!(max <= 1.0 + 1e-5, "divergence channel not normalised: {max}");
            assert!(s.scale > 0.0);
            // Occupancy channel is binary.
            for &o in s.input.plane(0, 1) {
                assert!(o == 0.0 || o == 1.0);
            }
        }
    }

    #[test]
    fn reference_pressure_solves_the_sample() {
        use crate::divnorm_loss::divnorm_loss_and_grad;
        let set = ProblemSet::training(16, 1);
        let ds = ProjectionDataset::generate(&set, 3, 1);
        let s = &ds.samples[1];
        let flags = &ds.geometries[s.geometry];
        let w = &ds.weights[s.geometry];
        let (loss, _) =
            divnorm_loss_and_grad(&s.reference_pressure, &s.divergence, w, flags, ds.dx, ds.dt);
        assert!(loss < 1e-9, "reference pressure loss {loss}");
    }

    #[test]
    fn input_round_trip_through_output() {
        let set = ProblemSet::training(16, 1);
        let ds = ProjectionDataset::generate(&set, 1, 1);
        let s = &ds.samples[0];
        let flags = &ds.geometries[s.geometry];
        // Identity "network": output = input channel 0 -> pressure is
        // scale * normalised divergence on fluid cells.
        let (_, c, h, w) = s.input.shape();
        assert_eq!(c, 2);
        let out = Tensor::from_vec(1, 1, h, w, s.input.plane(0, 0).to_vec());
        let p = output_to_pressure(&out, s.scale, flags);
        for j in 0..h {
            for i in 0..w {
                if flags.is_fluid(i, j) {
                    let want = PRESSURE_GAIN * s.divergence.at(i, j);
                    assert!((p.at(i, j) - want).abs() < 1e-3, "{} vs {want}", p.at(i, j));
                } else {
                    assert_eq!(p.at(i, j), 0.0);
                }
            }
        }
    }
}
