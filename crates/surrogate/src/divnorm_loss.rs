//! The unsupervised DivNorm training objective (Eq. 5).
//!
//! Applying a predicted pressure `p̂` to the tentative velocity gives
//! `u_{n+1} = u* − (Δt/ρ)∇p̂`, whose divergence is
//!
//! ```text
//! r = ∇·u_{n+1} = ∇·u* − (Δt/ρ)·∇²p̂ = d + Δt·(A p̂)
//! ```
//!
//! with `A` the positive-definite projection operator (`A = −∇²` with
//! the domain's boundary conditions) and `ρ = 1`. The loss is the
//! weighted square norm `L = (1/N) Σ_i w_i r_i²` over fluid cells, and
//! because `A` is symmetric the gradient w.r.t. `p̂` is
//! `∇L = (2Δt/N)·A(w ⊙ r)`.
//!
//! This is exactly Tompson et al.'s objective that the paper adopts —
//! training never needs ground-truth pressures.

use sfn_grid::{CellFlags, Field2};
use sfn_solver::PoissonProblem;

/// Computes the DivNorm loss and its gradient with respect to `p̂`.
///
/// * `pressure` — predicted pressure `p̂` (values on non-fluid cells are
///   ignored and receive zero gradient);
/// * `divergence` — `∇·u*` before projection;
/// * `weights` — the Eq. 5 weight field `w = max(1, k − d)`;
/// * `dt` — simulation time step (with `ρ = 1`, `dx = 1`).
///
/// Returns `(loss, grad)` where the loss is normalised by the fluid
/// cell count.
pub fn divnorm_loss_and_grad(
    pressure: &Field2,
    divergence: &Field2,
    weights: &Field2,
    flags: &CellFlags,
    dx: f64,
    dt: f64,
) -> (f64, Field2) {
    let (nx, ny) = (flags.nx(), flags.ny());
    assert_eq!((pressure.w(), pressure.h()), (nx, ny), "pressure shape");
    assert_eq!((divergence.w(), divergence.h()), (nx, ny), "divergence shape");
    assert_eq!((weights.w(), weights.h()), (nx, ny), "weights shape");
    let problem = PoissonProblem::new(flags, dx);
    let n_fluid = problem.unknowns().max(1) as f64;

    // r = d + dt·(A p̂) on fluid cells.
    let mut ap = Field2::new(nx, ny);
    problem.apply(pressure, &mut ap);
    let mut residual = Field2::new(nx, ny);
    let mut loss = 0.0f64;
    for j in 0..ny {
        for i in 0..nx {
            if flags.is_fluid(i, j) {
                let r = divergence.at(i, j) + dt * ap.at(i, j);
                residual.set(i, j, r);
                loss += weights.at(i, j) * r * r;
            }
        }
    }
    loss /= n_fluid;

    // grad = (2·dt/N)·A(w ⊙ r).
    let mut wr = Field2::new(nx, ny);
    for j in 0..ny {
        for i in 0..nx {
            if flags.is_fluid(i, j) {
                wr.set(i, j, weights.at(i, j) * residual.at(i, j));
            }
        }
    }
    let mut grad = Field2::new(nx, ny);
    problem.apply(&wr, &mut grad);
    grad.scale(2.0 * dt / n_fluid);
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfn_grid::{distance::divnorm_weights, CellFlags, MacGrid};
    use sfn_solver::{divergence_rhs, MicPreconditioner, PcgSolver, PoissonSolver};

    fn setup(n: usize) -> (CellFlags, Field2, Field2) {
        let flags = CellFlags::smoke_box(n, n);
        let weights = divnorm_weights(&flags, 3.0);
        let mut vel = MacGrid::new(n, n, 1.0);
        for j in 0..n {
            for i in 0..=n {
                vel.u.set(i, j, ((i * 7 + j * 3) % 5) as f64 / 3.0 - 0.5);
            }
        }
        vel.enforce_solid_boundaries(&flags);
        let div = vel.divergence(&flags);
        (flags, weights, div)
    }

    #[test]
    fn exact_pressure_zeroes_the_loss() {
        let n = 16;
        let (flags, weights, div) = setup(n);
        let dt = 0.5;
        let problem = PoissonProblem::new(&flags, 1.0);
        let b = divergence_rhs(&div, &flags, dt);
        let solver = PcgSolver::new(MicPreconditioner::default(), 1e-11, 20_000);
        let (p_exact, _) = solver.solve(&problem, &b);
        let (loss, grad) = divnorm_loss_and_grad(&p_exact, &div, &weights, &flags, 1.0, dt);
        assert!(loss < 1e-12, "loss {loss}");
        assert!(grad.max_abs() < 1e-6, "grad {}", grad.max_abs());
    }

    #[test]
    fn zero_pressure_gives_raw_divnorm() {
        let n = 12;
        let (flags, weights, div) = setup(n);
        let p = Field2::new(n, n);
        let (loss, _) = divnorm_loss_and_grad(&p, &div, &weights, &flags, 1.0, 0.5);
        let mut manual = 0.0;
        for j in 0..n {
            for i in 0..n {
                if flags.is_fluid(i, j) {
                    manual += weights.at(i, j) * div.at(i, j) * div.at(i, j);
                }
            }
        }
        manual /= flags.fluid_count() as f64;
        assert!((loss - manual).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let n = 8;
        let (flags, weights, div) = setup(n);
        let dt = 0.5;
        let mut p = Field2::from_fn(n, n, |i, j| ((i * 3 + j * 5) % 7) as f64 * 0.05);
        let (_, grad) = divnorm_loss_and_grad(&p, &div, &weights, &flags, 1.0, dt);
        let eps = 1e-6;
        for &(i, j) in &[(2usize, 2usize), (4, 5), (6, 3), (1, 6)] {
            if !flags.is_fluid(i, j) {
                continue;
            }
            let orig = p.at(i, j);
            p.set(i, j, orig + eps);
            let (lp, _) = divnorm_loss_and_grad(&p, &div, &weights, &flags, 1.0, dt);
            p.set(i, j, orig - eps);
            let (lm, _) = divnorm_loss_and_grad(&p, &div, &weights, &flags, 1.0, dt);
            p.set(i, j, orig);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad.at(i, j)).abs() < 1e-6 * fd.abs().max(1.0),
                "({i},{j}): fd {fd} vs {}",
                grad.at(i, j)
            );
        }
    }

    #[test]
    fn gradient_descent_on_pressure_reduces_loss() {
        let n = 12;
        let (flags, weights, div) = setup(n);
        let dt = 0.5;
        let mut p = Field2::new(n, n);
        let (mut prev, _) = divnorm_loss_and_grad(&p, &div, &weights, &flags, 1.0, dt);
        for _ in 0..200 {
            let (loss, grad) = divnorm_loss_and_grad(&p, &div, &weights, &flags, 1.0, dt);
            assert!(loss <= prev * 1.0001, "loss should not increase: {prev} -> {loss}");
            prev = loss;
            p.add_scaled(&grad, -0.02);
        }
        let (final_loss, _) = divnorm_loss_and_grad(&p, &div, &weights, &flags, 1.0, dt);
        assert!(final_loss < 0.2 * prev.max(1e-30) + 1e-12 || final_loss < prev);
    }

    #[test]
    fn solid_cells_get_zero_gradient() {
        let n = 10;
        let (flags, weights, div) = setup(n);
        let p = Field2::from_fn(n, n, |i, j| (i + j) as f64 * 0.1);
        let (_, grad) = divnorm_loss_and_grad(&p, &div, &weights, &flags, 1.0, 0.5);
        for j in 0..n {
            for i in 0..n {
                if !flags.is_fluid(i, j) {
                    assert_eq!(grad.at(i, j), 0.0, "({i},{j})");
                }
            }
        }
    }
}
