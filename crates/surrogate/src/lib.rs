//! Neural pressure-projection surrogates.
//!
//! Implements Eq. 4 of the paper: `p̂_t = f_conv(∇·u*_t, g_{t−1}; W)` —
//! a convolutional network that replaces the PCG solve inside the
//! Eulerian simulation — together with the unsupervised **DivNorm**
//! training objective of Eq. 5 (the weighted L2 norm of the divergence
//! of the *corrected* velocity), dataset generation from simulator
//! runs, and a training harness.
//!
//! Two reference model families are provided:
//!
//! * [`models::tompson_spec`] — a 5-stage convolution+ReLU network,
//!   our stand-in for Tompson et al.'s FluidNet (the "state-of-the-art
//!   model" the paper compares against);
//! * [`models::yang_spec`] — a small patch-style network standing in
//!   for Yang et al.'s per-cell MLP: cheaper and less accurate,
//!   matching its Table 1 characterisation.

#![warn(missing_docs)]

pub mod dataset;
pub mod divnorm_loss;
pub mod models;
pub mod projector;
pub mod train;

pub use dataset::{ProjectionDataset, Sample};
pub use divnorm_loss::divnorm_loss_and_grad;
pub use models::{tompson_default, tompson_spec, yang_default, yang_spec};
pub use projector::NeuralProjector;
pub use train::{
    damp_output_layer, evaluate_divnorm, train_network, train_projection_model, TrainConfig,
    TrainReport,
};
