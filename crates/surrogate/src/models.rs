//! Reference surrogate architectures.

use sfn_nn::{LayerSpec, NetworkSpec};

/// Number of input channels of every projection surrogate: the scaled
/// divergence field and the solid-occupancy geometry field (Eq. 4).
pub const INPUT_CHANNELS: usize = 2;

/// A Tompson-style network: "five stages of convolution and Rectified
/// Linear Unit (ReLU) layers" mapping `(∇·u*, g)` to the pressure.
///
/// Like FluidNet, the trunk runs at reduced resolution (one 2× pooling
/// / unpooling pair) so most of the FLOPs are spent where the receptive
/// field grows fastest. `width` sets the trunk channel count (16
/// reproduces the reference balance between accuracy and cost at our
/// scale). The final 1×1 convolution is linear — pressure is signed.
///
/// Grids must be even (all grids in this workspace are multiples of 4).
pub fn tompson_spec(width: usize) -> NetworkSpec {
    assert!(width >= 4, "trunk width must be at least 4");
    let half = width / 2;
    NetworkSpec::new(vec![
        LayerSpec::Conv2d { in_ch: INPUT_CHANNELS, out_ch: half, kernel: 3, residual: false },
        LayerSpec::ReLU,
        LayerSpec::MaxPool { size: 2 },
        LayerSpec::Conv2d { in_ch: half, out_ch: width, kernel: 3, residual: false },
        LayerSpec::ReLU,
        LayerSpec::Conv2d { in_ch: width, out_ch: width, kernel: 3, residual: true },
        LayerSpec::ReLU,
        LayerSpec::Conv2d { in_ch: width, out_ch: width, kernel: 3, residual: true },
        LayerSpec::ReLU,
        LayerSpec::Upsample { factor: 2 },
        LayerSpec::Conv2d { in_ch: width, out_ch: half, kernel: 3, residual: false },
        LayerSpec::ReLU,
        LayerSpec::Conv2d { in_ch: half, out_ch: 1, kernel: 1, residual: false },
    ])
}

/// The default Tompson-style model used across the reproduction.
pub fn tompson_default() -> NetworkSpec {
    tompson_spec(16)
}

/// A Yang-style patch model: each cell's pressure is predicted from a
/// local 5×5 neighbourhood — expressed as one 5×5 convolution plus a
/// 1×1 head, which is mathematically a per-cell patch MLP applied
/// convolutionally. Roughly half the cost of [`tompson_spec`] and
/// noticeably less accurate, matching its role in Table 1.
pub fn yang_spec(hidden: usize) -> NetworkSpec {
    assert!(hidden >= 2, "hidden width must be at least 2");
    NetworkSpec::new(vec![
        LayerSpec::Conv2d { in_ch: INPUT_CHANNELS, out_ch: hidden, kernel: 5, residual: false },
        LayerSpec::ReLU,
        LayerSpec::Conv2d { in_ch: hidden, out_ch: 1, kernel: 1, residual: false },
    ])
}

/// The default Yang-style model.
pub fn yang_default() -> NetworkSpec {
    yang_spec(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfn_nn::flops::spec_flops;

    #[test]
    fn tompson_preserves_grid_shape() {
        let spec = tompson_default();
        for n in [16usize, 32, 64, 128] {
            assert_eq!(spec.output_shape((2, n, n)).unwrap(), (1, n, n));
        }
    }

    #[test]
    fn yang_preserves_grid_shape() {
        let spec = yang_default();
        assert_eq!(spec.output_shape((2, 48, 48)).unwrap(), (1, 48, 48));
    }

    #[test]
    fn yang_is_cheaper_than_tompson() {
        let t = spec_flops(&tompson_default(), (2, 64, 64)).unwrap();
        let y = spec_flops(&yang_default(), (2, 64, 64)).unwrap();
        assert!(
            y * 2 < t,
            "yang ({y}) should be <50% of tompson ({t})"
        );
    }

    #[test]
    fn tompson_has_five_conv_relu_stages() {
        let spec = tompson_default();
        let relus = spec
            .layers
            .iter()
            .filter(|l| matches!(l, LayerSpec::ReLU))
            .count();
        assert_eq!(relus, 5, "five conv+ReLU stages per the paper");
    }

    #[test]
    fn width_scales_cost() {
        let narrow = spec_flops(&tompson_spec(8), (2, 32, 32)).unwrap();
        let wide = spec_flops(&tompson_spec(16), (2, 32, 32)).unwrap();
        assert!(narrow < wide);
    }
}
