//! Training harness for projection surrogates.
//!
//! Optimises the unsupervised DivNorm objective (Eq. 5) with Adam; an
//! optional supervised term pulls the output towards the PCG pressure,
//! which speeds up the early epochs without changing the objective's
//! minimiser (the exact pressure minimises both).

use crate::dataset::ProjectionDataset;
use crate::divnorm_loss::divnorm_loss_and_grad;
use crate::dataset::output_to_pressure;
use sfn_rng::rngs::StdRng;
use sfn_rng::seq::SliceRandom;
use sfn_rng::SeedableRng;
use sfn_nn::optim::{Adam, Optimizer};
use sfn_nn::{Network, NetworkSpec, Tensor};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Passes over the dataset.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Seed for initialisation and shuffling.
    pub seed: u64,
    /// Weight of the supervised (PCG-pressure MSE) auxiliary term.
    pub supervised_weight: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 40,
            batch_size: 8,
            learning_rate: 1e-2,
            seed: 0xF1D0,
            supervised_weight: 0.0,
        }
    }
}

/// Per-epoch telemetry.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean DivNorm loss per epoch (unsupervised objective only).
    pub loss_curve: Vec<f64>,
    /// Final epoch's mean DivNorm loss.
    pub final_loss: f64,
}

/// Trains an existing network in place. Returns the loss curve.
pub fn train_network(net: &mut Network, ds: &ProjectionDataset, cfg: &TrainConfig) -> TrainReport {
    assert!(!ds.is_empty(), "cannot train on an empty dataset");
    assert!(cfg.batch_size >= 1, "batch size must be >= 1");
    let mut optimizer = Adam::new(cfg.learning_rate);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xAB5E_55E5);
    let mut order: Vec<usize> = (0..ds.len()).collect();
    let mut loss_curve = Vec::with_capacity(cfg.epochs);
    for _epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut epoch_batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let inputs: Vec<Tensor> = chunk.iter().map(|&i| ds.samples[i].input.clone()).collect();
            let batch = Tensor::stack(&inputs);
            let out = net.forward(&batch, true);
            let (_, _, h, w) = out.shape();
            let mut grad = Tensor::zeros(chunk.len(), 1, h, w);
            let mut batch_loss = 0.0f64;
            for (bi, &si) in chunk.iter().enumerate() {
                let sample = &ds.samples[si];
                let flags = &ds.geometries[sample.geometry];
                let weights = &ds.weights[sample.geometry];
                let plane = out.sample(bi);
                let pressure = output_to_pressure(&plane, sample.scale, flags);
                let (loss, grad_p) = divnorm_loss_and_grad(
                    &pressure,
                    &sample.divergence,
                    weights,
                    flags,
                    ds.dx,
                    ds.dt,
                );
                batch_loss += loss;
                // Chain rule: dL/dout = scale · dL/dp̂ (fluid cells only),
                // averaged over the batch. Supervised term in the
                // normalised output domain.
                let inv_b = 1.0 / chunk.len() as f64;
                let n_cells = (h * w) as f64;
                let out_scale = sample.scale * crate::dataset::PRESSURE_GAIN;
                for j in 0..h {
                    for i in 0..w {
                        let mut g = 0.0f64;
                        if flags.is_fluid(i, j) {
                            g += out_scale * grad_p.at(i, j);
                            if cfg.supervised_weight > 0.0 {
                                let target = sample.reference_pressure.at(i, j) / out_scale;
                                let pred = plane.at(0, 0, j, i) as f64;
                                g += cfg.supervised_weight * 2.0 * (pred - target) / n_cells;
                            }
                        }
                        grad.set(bi, 0, j, i, (g * inv_b) as f32);
                    }
                }
            }
            net.backward(&grad);
            optimizer.step(net);
            epoch_loss += batch_loss / chunk.len() as f64;
            epoch_batches += 1;
        }
        loss_curve.push(epoch_loss / epoch_batches.max(1) as f64);
    }
    let final_loss = *loss_curve.last().expect("at least one epoch");
    TrainReport {
        loss_curve,
        final_loss,
    }
}

/// Scales the last parameterised layer's weights by `factor`.
///
/// A randomly initialised surrogate emits O(1)·[`crate::dataset::PRESSURE_GAIN`]
/// pressures, which score far *worse* than predicting nothing — Adam
/// then collapses the output layer to zero, and with it every upstream
/// gradient (a dead-network saddle). Starting the head near zero keeps
/// the features alive while the output grows in the useful direction.
pub fn damp_output_layer(net: &mut Network, factor: f32) {
    let views = net.params();
    let n = views.len();
    if n < 2 {
        return;
    }
    // The last two parameter tensors are the final layer's weights and
    // bias (every parameterised layer exposes exactly that pair).
    for (k, view) in views.into_iter().enumerate() {
        if k + 2 >= n {
            for v in view.values.iter_mut() {
                *v *= factor;
            }
        }
    }
}

/// Instantiates `spec` and trains it.
pub fn train_projection_model(
    spec: &NetworkSpec,
    ds: &ProjectionDataset,
    cfg: &TrainConfig,
) -> (Network, TrainReport) {
    let mut net = Network::from_spec(spec, cfg.seed).expect("invalid surrogate spec");
    damp_output_layer(&mut net, 0.02);
    let report = train_network(&mut net, ds, cfg);
    (net, report)
}

/// Mean DivNorm loss of a network over a dataset (no training).
pub fn evaluate_divnorm(net: &mut Network, ds: &ProjectionDataset) -> f64 {
    assert!(!ds.is_empty(), "cannot evaluate on an empty dataset");
    let mut total = 0.0f64;
    for sample in &ds.samples {
        let out = net.predict(&sample.input);
        let flags = &ds.geometries[sample.geometry];
        let weights = &ds.weights[sample.geometry];
        let pressure = output_to_pressure(&out, sample.scale, flags);
        let (loss, _) =
            divnorm_loss_and_grad(&pressure, &sample.divergence, weights, flags, ds.dx, ds.dt);
        total += loss;
    }
    total / ds.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{tompson_spec, yang_spec};
    use sfn_workload::ProblemSet;

    fn tiny_dataset() -> ProjectionDataset {
        let set = ProblemSet::training(16, 2);
        ProjectionDataset::generate(&set, 8, 2)
    }

    #[test]
    fn training_reduces_divnorm_loss() {
        let ds = tiny_dataset();
        let spec = tompson_spec(8);
        let cfg = TrainConfig {
            epochs: 120,
            batch_size: 8,
            learning_rate: 1e-2,
            seed: 5,
            supervised_weight: 0.0,
        };
        let (_, report) = train_projection_model(&spec, &ds, &cfg);
        let first = report.loss_curve[0];
        let last = report.final_loss;
        assert!(
            last < 0.2 * first,
            "loss should drop by >5x: {first} -> {last}"
        );
    }

    #[test]
    fn trained_model_beats_zero_pressure_baseline() {
        let ds = tiny_dataset();
        let spec = yang_spec(4);
        let cfg = TrainConfig {
            epochs: 150,
            batch_size: 8,
            learning_rate: 1e-2,
            seed: 2,
            supervised_weight: 0.0,
        };
        let (mut net, _) = train_projection_model(&spec, &ds, &cfg);
        let model_loss = evaluate_divnorm(&mut net, &ds);
        // Zero-pressure baseline: raw weighted divergence norm.
        let mut zero_net =
            Network::from_spec(&yang_spec(4), 11).expect("spec");
        for view in zero_net.params() {
            view.values.fill(0.0);
        }
        let zero_loss = evaluate_divnorm(&mut zero_net, &ds);
        assert!(
            model_loss < 0.7 * zero_loss,
            "trained {model_loss} vs zero baseline {zero_loss}"
        );
    }

    #[test]
    fn deterministic_training() {
        let ds = tiny_dataset();
        let spec = yang_spec(4);
        let cfg = TrainConfig {
            epochs: 2,
            ..Default::default()
        };
        let (mut a, ra) = train_projection_model(&spec, &ds, &cfg);
        let (mut b, rb) = train_projection_model(&spec, &ds, &cfg);
        assert_eq!(ra.loss_curve, rb.loss_curve);
        let x = &ds.samples[0].input;
        assert_eq!(a.predict(x), b.predict(x));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let ds = ProjectionDataset::generate(&ProblemSet::training(16, 0), 1, 1);
        let mut net = Network::from_spec(&yang_spec(4), 0).unwrap();
        let _ = train_network(&mut net, &ds, &TrainConfig::default());
    }
}
