//! A trained network as a drop-in pressure projector.

use crate::dataset::{build_input, output_to_pressure};
use sfn_grid::{CellFlags, Field2};
use sfn_nn::network::SavedModel;
use sfn_nn::spec::SpecError;
use sfn_nn::Network;
use sfn_obs::ScopedTimer;
use sfn_sim::{PressureProjector, ProjectionOutcome};

/// Wraps a trained [`Network`] as a [`PressureProjector`] (Eq. 4).
///
/// Inference is single-pass: the divergence is normalised by its
/// max-abs, stacked with the occupancy channel, pushed through the
/// network, and the output rescaled — the linearity of the Poisson
/// problem makes the normalisation exact rather than approximate.
pub struct NeuralProjector {
    network: Network,
    label: String,
    /// Occupancy cache keyed by the flags' solid-count and dimensions
    /// (sufficient within one simulation where flags never change).
    occ_cache: Option<(usize, usize, usize, Field2)>,
    /// Inferences served so far — the per-projector step index the
    /// fault hooks hash on.
    inferences: u64,
}

impl NeuralProjector {
    /// Wraps a network under a report label (e.g. `"tompson"`, `"M7"`).
    pub fn new(network: Network, label: impl Into<String>) -> Self {
        Self {
            network,
            label: label.into(),
            occ_cache: None,
            inferences: 0,
        }
    }

    /// Loads a snapshot into a projector, surfacing a malformed model
    /// as a typed [`SpecError`] instead of panicking.
    pub fn try_from_saved(saved: &SavedModel, label: impl Into<String>) -> Result<Self, SpecError> {
        Ok(Self::new(Network::load(saved, 0)?, label))
    }

    /// Inferences served so far.
    pub fn inferences(&self) -> u64 {
        self.inferences
    }

    /// The wrapped network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access (e.g. for continued training).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    fn occupancy(&mut self, flags: &CellFlags) -> Field2 {
        let key = (flags.nx(), flags.ny(), flags.solid_count());
        if let Some((nx, ny, sc, ref occ)) = self.occ_cache {
            if (nx, ny, sc) == key {
                return occ.clone();
            }
        }
        let occ = flags.occupancy();
        self.occ_cache = Some((key.0, key.1, key.2, occ.clone()));
        occ
    }
}

impl PressureProjector for NeuralProjector {
    fn solve_pressure(
        &mut self,
        divergence: &Field2,
        flags: &CellFlags,
        _dx: f64,
        _dt: f64,
    ) -> ProjectionOutcome {
        let timer = ScopedTimer::start("projector/nn");
        let occ = self.occupancy(flags);
        let (input, scale) = build_input(divergence, &occ);
        let output = self.network.predict(&input);
        let mut pressure = output_to_pressure(&output, scale, flags);
        // Fault hooks: poison the surrogate output and/or stretch the
        // inference — both keyed on this projector's own inference
        // index, so a schedule replays identically across runs.
        sfn_faults::corrupt_field(&self.label, self.inferences, pressure.data_mut());
        if let Some(delay) = sfn_faults::latency_spike(&self.label, self.inferences) {
            std::thread::sleep(delay);
        }
        self.inferences += 1;
        let (_, _, h, w) = input.shape();
        let flops = self.network.flops((2, h, w));
        sfn_obs::counter_add("nn.inferences", 1);
        sfn_obs::counter_add("nn.flops", flops);
        ProjectionOutcome {
            pressure,
            iterations: 0,
            converged: true,
            flops,
            wall_time: timer.stop(),
        }
    }

    fn name(&self) -> String {
        self.label.clone()
    }

    fn flops_estimate(&self, nx: usize, ny: usize) -> u64 {
        self.network.flops((2, ny, nx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::tompson_default;
    use sfn_sim::{SimConfig, Simulation};

    #[test]
    fn untrained_network_still_runs_simulation() {
        let net = Network::from_spec(&tompson_default(), 3).unwrap();
        let mut proj = NeuralProjector::new(net, "untrained");
        let n = 16;
        let cfg = SimConfig::plume(n);
        let flags = CellFlags::smoke_box(n, n);
        let mut sim = Simulation::new(cfg, flags);
        let stats = sim.run(5, &mut proj);
        assert!(sim.is_healthy(), "NN projection must keep the sim finite");
        assert!(stats.iter().all(|s| s.converged && s.solver_iterations == 0));
        assert!(stats.iter().all(|s| s.projection_flops > 0));
    }

    #[test]
    fn zero_divergence_yields_zero_pressure() {
        let net = Network::from_spec(&tompson_default(), 3).unwrap();
        let mut proj = NeuralProjector::new(net, "t");
        let flags = CellFlags::smoke_box(12, 12);
        let div = Field2::new(12, 12);
        let out = proj.solve_pressure(&div, &flags, 1.0, 0.5);
        // scale = 1, but input ch0 is all zeros; network output can be
        // non-zero (bias terms) — pressure is whatever the net says on
        // fluid cells, zero elsewhere. The guarantee we need is shape +
        // finiteness + zero on non-fluid cells.
        assert!(out.pressure.all_finite());
        for j in 0..12 {
            for i in 0..12 {
                if !flags.is_fluid(i, j) {
                    assert_eq!(out.pressure.at(i, j), 0.0);
                }
            }
        }
    }

    #[test]
    fn scale_equivariance() {
        // p̂(c·d) == c·p̂(d) by construction of the normalisation.
        let net = Network::from_spec(&tompson_default(), 5).unwrap();
        let mut proj = NeuralProjector::new(net, "t");
        let flags = CellFlags::smoke_box(12, 12);
        let div = Field2::from_fn(12, 12, |i, j| {
            if flags.is_fluid(i, j) {
                ((i * 3 + j * 7) % 5) as f64 * 0.1 - 0.2
            } else {
                0.0
            }
        });
        let mut div2 = div.clone();
        div2.scale(3.0);
        let p1 = proj.solve_pressure(&div, &flags, 1.0, 0.5).pressure;
        let p2 = proj.solve_pressure(&div2, &flags, 1.0, 0.5).pressure;
        for (a, b) in p1.data().iter().zip(p2.data()) {
            assert!((3.0 * a - b).abs() < 1e-4 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn nan_fault_poisons_surrogate_output() {
        // Target this test's unique label so concurrent tests with
        // other labels never see the plan.
        let plan = sfn_faults::parse_plan(
            r#"{"seed": 11, "faults": [
                {"kind": "nan_output", "p": 1.0, "target": "poisoned-proj"}]}"#,
        )
        .unwrap();
        let net = Network::from_spec(&tompson_default(), 7).unwrap();
        let mut proj = NeuralProjector::new(net, "poisoned-proj");
        let flags = CellFlags::smoke_box(12, 12);
        let mut div = Field2::new(12, 12);
        div.set(6, 6, 1.0);
        sfn_faults::install(Some(plan));
        let out = proj.solve_pressure(&div, &flags, 1.0, 0.5);
        sfn_faults::install(None);
        assert!(
            !out.pressure.all_finite(),
            "a p=1 nan_output fault must corrupt the pressure"
        );
        assert_eq!(proj.inferences(), 1);
        // With the plan disarmed the projector is clean again.
        let out = proj.solve_pressure(&div, &flags, 1.0, 0.5);
        assert!(out.pressure.all_finite());
    }

    #[test]
    fn reports_flops_matching_network() {
        let net = Network::from_spec(&tompson_default(), 1).unwrap();
        let expect = net.flops((2, 16, 16));
        let mut proj = NeuralProjector::new(net, "t");
        assert_eq!(proj.flops_estimate(16, 16), expect);
        let flags = CellFlags::smoke_box(16, 16);
        let mut div = Field2::new(16, 16);
        div.set(8, 8, 1.0);
        let out = proj.solve_pressure(&div, &flags, 1.0, 0.5);
        assert_eq!(out.flops, expect);
    }
}
