//! Shared, allocation-bounded HTTP/1.1 request parsing for the
//! workspace's hand-rolled `std::net` servers (`sfn-metrics` and
//! `sfn-serve`).
//!
//! Security posture: every byte off the socket is hostile.
//! [`parse_request`] is the single entry point for raw request heads —
//! strict, allocation-bounded, and fuzzed as the `http` target.
//! Servers layer their own connection caps, read deadlines and
//! `Connection: close` semantics on top; this crate owns only the
//! pure byte-level contract so both servers (and the fuzzer) agree on
//! exactly what parses.

/// Hard cap on the bytes of one request head (request line + headers
/// + terminator). Larger requests are rejected before parsing.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Maximum number of headers accepted in one request.
pub const MAX_HEADERS: usize = 32;

/// Maximum length of the request target (path + query).
pub const MAX_TARGET_BYTES: usize = 1024;

/// Maximum length of one header name / value.
pub const MAX_HEADER_NAME_BYTES: usize = 128;
/// Maximum length of one header value.
pub const MAX_HEADER_VALUE_BYTES: usize = 1024;

/// Hard cap on a declared request body (`Content-Length`). Requests
/// declaring more are refused before any body byte is read.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// A parsed, validated HTTP/1.x request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `HEAD`, …). Parsing accepts any
    /// token; routing decides what is allowed.
    pub method: String,
    /// Request target, always starting with `/`.
    pub target: String,
    /// Minor HTTP version: 0 for `HTTP/1.0`, 1 for `HTTP/1.1`.
    pub minor_version: u8,
    /// Header `(name, trimmed value)` pairs in request order.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// Canonical wire rendering of the head (used by the fuzz oracle:
    /// `parse ∘ render` must be a fixed point).
    pub fn render(&self) -> Vec<u8> {
        let mut out = String::with_capacity(64);
        out.push_str(&self.method);
        out.push(' ');
        out.push_str(&self.target);
        out.push_str(" HTTP/1.");
        out.push(if self.minor_version == 0 { '0' } else { '1' });
        out.push_str("\r\n");
        for (name, value) in &self.headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        out.into_bytes()
    }

    /// First header value whose name matches `name` case-insensitively
    /// (header names are case-insensitive per RFC 9110).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Declared body length from `Content-Length`. `Ok(0)` when the
    /// header is absent; refuses non-numeric, duplicate-conflicting
    /// or over-[`MAX_BODY_BYTES`] declarations.
    pub fn content_length(&self) -> Result<usize, RequestError> {
        let mut declared: Option<usize> = None;
        for (name, value) in &self.headers {
            if !name.eq_ignore_ascii_case("content-length") {
                continue;
            }
            let n: usize = value
                .parse()
                .map_err(|_| RequestError::Malformed("content-length is not a number"))?;
            match declared {
                Some(prev) if prev != n => {
                    return Err(RequestError::Malformed("conflicting content-length headers"))
                }
                _ => declared = Some(n),
            }
        }
        let n = declared.unwrap_or(0);
        if n > MAX_BODY_BYTES {
            return Err(RequestError::BodyTooLarge);
        }
        Ok(n)
    }
}

/// Why a request was refused. Every variant maps to a 4xx response;
/// none of them may panic, allocate unboundedly, or loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestError {
    /// Head exceeds [`MAX_REQUEST_BYTES`].
    TooLarge,
    /// Structurally invalid head (missing terminator, bad request
    /// line, illegal characters…). The payload names the first check
    /// that failed.
    Malformed(&'static str),
    /// Not an `HTTP/1.0` / `HTTP/1.1` request.
    UnsupportedVersion,
    /// More than [`MAX_HEADERS`] header lines.
    TooManyHeaders,
    /// Declared `Content-Length` exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::TooLarge => write!(f, "request head exceeds {MAX_REQUEST_BYTES} bytes"),
            RequestError::Malformed(why) => write!(f, "malformed request: {why}"),
            RequestError::UnsupportedVersion => write!(f, "only HTTP/1.0 and HTTP/1.1 are served"),
            RequestError::TooManyHeaders => write!(f, "more than {MAX_HEADERS} headers"),
            RequestError::BodyTooLarge => write!(f, "declared body exceeds {MAX_BODY_BYTES} bytes"),
        }
    }
}

fn is_tchar(b: u8) -> bool {
    // RFC 9110 token characters.
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// Byte offset of the first payload byte: one past the `\r\n\r\n`
/// head terminator, if the buffer holds a complete head yet.
pub fn head_len(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Strictly parses one request head from raw socket bytes. Bytes after
/// the `\r\n\r\n` terminator (a body) are ignored here — callers that
/// accept bodies pair this with [`head_len`] and
/// [`Request::content_length`] to read a bounded body separately.
pub fn parse_request(raw: &[u8]) -> Result<Request, RequestError> {
    if raw.len() > MAX_REQUEST_BYTES {
        return Err(RequestError::TooLarge);
    }
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or(RequestError::Malformed("missing \\r\\n\\r\\n terminator"))?;
    // Include the first `\r\n` of the terminator so every line in the
    // head carries its CRLF and bare-LF lines are detectable.
    let head = &raw[..head_end + 2];
    let mut lines: Vec<&[u8]> = head.split(|&b| b == b'\n').collect();
    // `head` ends with `\n`, so the final split piece is always empty.
    lines.pop();
    let mut lines = lines.into_iter();

    let request_line = lines.next().unwrap_or_default();
    let request_line = request_line
        .strip_suffix(b"\r")
        .ok_or(RequestError::Malformed("bare LF in request line"))?;
    let mut parts = request_line.split(|&b| b == b' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(RequestError::Malformed("request line is not `METHOD SP target SP version`")),
    };

    if method.is_empty() || method.len() > 16 || !method.iter().all(|&b| b.is_ascii_uppercase()) {
        return Err(RequestError::Malformed("method is not an uppercase token"));
    }
    if target.len() > MAX_TARGET_BYTES {
        return Err(RequestError::Malformed("target too long"));
    }
    if target.first() != Some(&b'/') || !target.iter().all(|&b| (0x21..=0x7e).contains(&b)) {
        return Err(RequestError::Malformed("target must be /-rooted visible ASCII"));
    }
    let minor_version = match version {
        b"HTTP/1.0" => 0,
        b"HTTP/1.1" => 1,
        _ => return Err(RequestError::UnsupportedVersion),
    };

    let mut headers = Vec::new();
    for line in lines {
        let line = line
            .strip_suffix(b"\r")
            .ok_or(RequestError::Malformed("bare LF in header line"))?;
        if headers.len() >= MAX_HEADERS {
            return Err(RequestError::TooManyHeaders);
        }
        let colon = line
            .iter()
            .position(|&b| b == b':')
            .ok_or(RequestError::Malformed("header line without colon"))?;
        let (name, value) = (&line[..colon], &line[colon + 1..]);
        if name.is_empty() || name.len() > MAX_HEADER_NAME_BYTES || !name.iter().all(|&b| is_tchar(b)) {
            return Err(RequestError::Malformed("header name is not a token"));
        }
        // Obsolete line folding (a header line starting with
        // whitespace) never reaches here: it would parse as a header
        // name with illegal characters and be rejected above.
        let value = trim_ows(value);
        if value.len() > MAX_HEADER_VALUE_BYTES {
            return Err(RequestError::Malformed("header value too long"));
        }
        if !value.iter().all(|&b| b == b'\t' || (0x20..=0x7e).contains(&b)) {
            return Err(RequestError::Malformed("header value has control bytes"));
        }
        headers.push((
            String::from_utf8_lossy(name).into_owned(),
            String::from_utf8_lossy(value).into_owned(),
        ));
    }

    Ok(Request {
        method: String::from_utf8_lossy(method).into_owned(),
        target: String::from_utf8_lossy(target).into_owned(),
        minor_version,
        headers,
    })
}

fn trim_ows(mut v: &[u8]) -> &[u8] {
    while let Some((first, rest)) = v.split_first() {
        if *first == b' ' || *first == b'\t' {
            v = rest;
        } else {
            break;
        }
    }
    while let Some((last, rest)) = v.split_last() {
        if *last == b' ' || *last == b'\t' {
            v = rest;
        } else {
            break;
        }
    }
    v
}

/// Canonical reason phrase for the status codes the workspace servers
/// emit; anything unmapped renders as `Error`.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Error",
    }
}

/// Writes one `Connection: close` response (head + body) to `stream`.
/// `extra_headers` lets callers attach e.g. `Retry-After`; names and
/// values are trusted (server-originated, never echoed client bytes).
pub fn write_response(
    stream: &mut dyn std::io::Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status_reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body);
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(raw: &[u8]) -> Request {
        parse_request(raw).expect("parses")
    }

    #[test]
    fn parses_minimal_get() {
        let r = ok(b"GET /metrics HTTP/1.1\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.target, "/metrics");
        assert_eq!(r.minor_version, 1);
        assert!(r.headers.is_empty());
    }

    #[test]
    fn parses_headers_and_trims_optional_whitespace() {
        let r = ok(b"GET / HTTP/1.0\r\nHost:  localhost:9090 \r\nAccept: */*\r\n\r\nignored body");
        assert_eq!(r.minor_version, 0);
        assert_eq!(r.headers[0], ("Host".into(), "localhost:9090".into()));
        assert_eq!(r.headers[1], ("Accept".into(), "*/*".into()));
    }

    #[test]
    fn render_parse_is_a_fixed_point() {
        let r = ok(b"HEAD /snapshot.json?x=1 HTTP/1.1\r\nHost: a\r\nX-B: c\t d\r\n\r\n");
        assert_eq!(ok(&r.render()), r);
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let r = ok(b"POST /simulate HTTP/1.1\r\nX-Tenant: acme\r\ncontent-length: 12\r\n\r\n");
        assert_eq!(r.header("x-tenant"), Some("acme"));
        assert_eq!(r.header("Content-Length"), Some("12"));
        assert_eq!(r.header("absent"), None);
        assert_eq!(r.content_length(), Ok(12));
    }

    #[test]
    fn content_length_rejects_garbage_conflicts_and_floods() {
        let r = ok(b"POST / HTTP/1.1\r\nContent-Length: twelve\r\n\r\n");
        assert!(matches!(r.content_length(), Err(RequestError::Malformed(_))));
        let r = ok(b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\n");
        assert!(matches!(r.content_length(), Err(RequestError::Malformed(_))));
        let r = ok(b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\n");
        assert_eq!(r.content_length(), Ok(3));
        let r = ok(format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1)
            .as_bytes());
        assert_eq!(r.content_length(), Err(RequestError::BodyTooLarge));
        let r = ok(b"GET / HTTP/1.1\r\n\r\n");
        assert_eq!(r.content_length(), Ok(0));
    }

    #[test]
    fn head_len_finds_the_terminator() {
        assert_eq!(head_len(b"GET / HTTP/1.1\r\n\r\nbody"), Some(18));
        assert_eq!(head_len(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn rejects_malformed_heads() {
        for (raw, why) in [
            (&b"GET /metrics HTTP/1.1"[..], "no terminator"),
            (b"GET /metrics HTTP/1.1\n\n", "LF-only terminator"),
            (b"GET /metrics HTTP/1.1\nX: y\r\n\r\n", "bare LF line ending"),
            (b"get /metrics HTTP/1.1\r\n\r\n", "lowercase method"),
            (b"GET metrics HTTP/1.1\r\n\r\n", "target not /-rooted"),
            (b"GET /me trics HTTP/1.1\r\n\r\n", "space in target"),
            (b"GET /metrics HTTP/2\r\n\r\n", "unsupported version"),
            (b"GET /metrics HTTP/1.1 extra\r\n\r\n", "four request-line parts"),
            (b"GET /metrics HTTP/1.1\r\nNoColonHere\r\n\r\n", "header without colon"),
            (b"GET /metrics HTTP/1.1\r\n: empty-name\r\n\r\n", "empty header name"),
            (b"GET /metrics HTTP/1.1\r\nX: a\x01b\r\n\r\n", "control byte in value"),
            (b"\r\n\r\n", "empty request line"),
        ] {
            assert!(parse_request(raw).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn rejects_oversize_and_header_floods() {
        let huge = vec![b'A'; MAX_REQUEST_BYTES + 1];
        assert_eq!(parse_request(&huge), Err(RequestError::TooLarge));

        let mut flood = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..MAX_HEADERS + 1 {
            flood.extend_from_slice(format!("H{i}: v\r\n").as_bytes());
        }
        flood.extend_from_slice(b"\r\n");
        assert_eq!(parse_request(&flood), Err(RequestError::TooManyHeaders));

        let long_target = [b"GET /".to_vec(), vec![b'a'; MAX_TARGET_BYTES], b" HTTP/1.1\r\n\r\n".to_vec()]
            .concat();
        assert!(matches!(parse_request(&long_target), Err(RequestError::Malformed(_))));
    }
}
