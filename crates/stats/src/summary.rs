//! Scalar descriptive statistics.


/// Mean / standard deviation / min / max / median of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of (finite) observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (linear interpolation).
    pub median: f64,
}

impl Summary {
    /// Computes the summary, skipping NaNs. Returns `None` when no
    /// finite observations remain.
    pub fn from_data(data: &[f64]) -> Option<Self> {
        let mut v: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(f64::total_cmp);
        let n = v.len();
        let mean = v.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            v.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let median = crate::boxplot::percentile_sorted(&v, 50.0);
        Some(Self {
            n,
            mean,
            std_dev: var.sqrt(),
            min: v[0],
            max: v[n - 1],
            median,
        })
    }

    /// Geometric mean of strictly positive data (the conventional way to
    /// average speedups across workloads). Returns `None` if any value
    /// is non-positive or the input is empty.
    pub fn geo_mean(data: &[f64]) -> Option<f64> {
        if data.is_empty() || data.iter().any(|&x| x <= 0.0 || !x.is_finite()) {
            return None;
        }
        let log_sum: f64 = data.iter().map(|&x| x.ln()).sum();
        Some((log_sum / data.len() as f64).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_summary() {
        let s = Summary::from_data(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev of this classic dataset is sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn single_element() {
        let s = Summary::from_data(&[3.25]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 3.25);
    }

    #[test]
    fn skips_non_finite() {
        let s = Summary::from_data(&[1.0, f64::NAN, 3.0, f64::INFINITY]).unwrap();
        assert_eq!(s.n, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!(Summary::from_data(&[f64::NAN]).is_none());
    }

    #[test]
    fn geo_mean_of_speedups() {
        let g = Summary::geo_mean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
        assert!(Summary::geo_mean(&[1.0, 0.0]).is_none());
        assert!(Summary::geo_mean(&[]).is_none());
    }
}
