//! Pareto-front extraction over (time cost, quality loss) points.
//!
//! §4 of the paper reduces 133 generated models to 14 "model candidates"
//! by Pareto optimality: keep models that have the lowest time cost, the
//! lowest quality loss, or both (Figure 3). Both objectives are
//! minimised.


/// A point in the bi-objective (time, quality-loss) plane, carrying the
/// index of the model it belongs to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// Identifier of the underlying item (e.g. model index).
    pub id: usize,
    /// First objective, minimised (e.g. execution time in seconds).
    pub time: f64,
    /// Second objective, minimised (e.g. quality loss).
    pub loss: f64,
}

impl ParetoPoint {
    /// `self` dominates `other` iff it is no worse in both objectives
    /// and strictly better in at least one.
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        (self.time <= other.time && self.loss <= other.loss)
            && (self.time < other.time || self.loss < other.loss)
    }
}

/// Returns the Pareto-optimal subset (non-dominated points), sorted by
/// ascending time.
///
/// Duplicate coordinates are kept once each (neither strictly dominates
/// the other). Runs in O(n log n): sort by time, then sweep keeping a
/// decreasing-loss frontier.
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    let mut pts: Vec<ParetoPoint> = points
        .iter()
        .copied()
        .filter(|p| p.time.is_finite() && p.loss.is_finite())
        .collect();
    // Sort by time, then loss so that among equal-time points the best
    // loss comes first and shadows the rest.
    pts.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.loss.total_cmp(&b.loss)));
    let mut front: Vec<ParetoPoint> = Vec::new();
    let mut best_loss = f64::INFINITY;
    let mut last_time = f64::NEG_INFINITY;
    for p in pts {
        if p.loss < best_loss {
            best_loss = p.loss;
            last_time = p.time;
            front.push(p);
        } else if p.loss == best_loss && p.time == last_time {
            // Exact duplicate of the frontier point: keep (non-dominated).
            front.push(p);
        }
    }
    front
}

/// Partitions points into (front, dominated) — handy for Figure 3's
/// red/green scatter rendering.
pub fn pareto_partition(points: &[ParetoPoint]) -> (Vec<ParetoPoint>, Vec<ParetoPoint>) {
    let front = pareto_front(points);
    let in_front = |p: &ParetoPoint| front.iter().any(|f| f.id == p.id);
    let dominated = points.iter().copied().filter(|p| !in_front(p)).collect();
    (front, dominated)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(id: usize, time: f64, loss: f64) -> ParetoPoint {
        ParetoPoint { id, time, loss }
    }

    #[test]
    fn dominance_relation() {
        assert!(p(0, 1.0, 1.0).dominates(&p(1, 2.0, 2.0)));
        assert!(p(0, 1.0, 2.0).dominates(&p(1, 1.0, 3.0)));
        assert!(!p(0, 1.0, 2.0).dominates(&p(1, 2.0, 1.0)));
        assert!(!p(0, 1.0, 1.0).dominates(&p(1, 1.0, 1.0)));
    }

    #[test]
    fn front_of_staircase() {
        let pts = vec![
            p(0, 1.0, 5.0),
            p(1, 2.0, 3.0),
            p(2, 3.0, 1.0),
            p(3, 2.5, 4.0), // dominated by id 1
            p(4, 4.0, 2.0), // dominated by id 2
        ];
        let front = pareto_front(&pts);
        let ids: Vec<usize> = front.iter().map(|q| q.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn no_front_member_is_dominated() {
        let pts: Vec<ParetoPoint> = (0..50)
            .map(|i| {
                let t = ((i * 13) % 50) as f64;
                let l = ((i * 29) % 50) as f64;
                p(i, t, l)
            })
            .collect();
        let front = pareto_front(&pts);
        for a in &front {
            for b in &pts {
                assert!(!(b.dominates(a)), "{b:?} dominates front member {a:?}");
            }
        }
    }

    #[test]
    fn every_non_member_is_dominated() {
        let pts: Vec<ParetoPoint> = (0..50)
            .map(|i| p(i, ((i * 13) % 50) as f64, ((i * 29) % 50) as f64))
            .collect();
        let (front, dominated) = pareto_partition(&pts);
        for d in &dominated {
            assert!(
                front.iter().any(|f| f.dominates(d)),
                "{d:?} not dominated by any front member"
            );
        }
    }

    #[test]
    fn non_finite_points_are_dropped() {
        let pts = vec![p(0, f64::NAN, 1.0), p(1, 1.0, f64::INFINITY), p(2, 1.0, 1.0)];
        let front = pareto_front(&pts);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].id, 2);
    }
}
