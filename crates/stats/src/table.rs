//! Plain-text table rendering for the bench harness output.
//!
//! The bench binaries print rows matching the paper's tables and figure
//! series; this tiny renderer keeps them aligned and readable.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with
    /// empty cells; longer rows extend the table width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with ASCII separators.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let consider = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        consider(&mut widths, &self.header);
        for r in &self.rows {
            consider(&mut widths, r);
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = w - cell.chars().count();
                line.push(' ');
                line.push_str(cell);
                line.extend(std::iter::repeat_n(' ', pad));
                line.push_str(" |");
            }
            line
        };
        let sep = {
            let mut s = String::from("+");
            for w in &widths {
                s.extend(std::iter::repeat_n('-', w + 2));
                s.push('+');
            }
            s
        };
        let mut out = String::new();
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out.push_str(&sep);
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["method", "time", "loss"]);
        t.row(["PCG", "2.34e8", "-"]);
        t.row(["Tompson", "7.19e4", "1.3e-2"]);
        let s = t.render();
        assert!(s.contains("| method  |"));
        assert!(s.contains("| Tompson |"));
        // All lines have equal width.
        let widths: Vec<usize> = s.lines().map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = TextTable::new(["a"]);
        t.row(["1", "2", "3"]);
        t.row(Vec::<String>::new());
        let s = t.render();
        assert_eq!(t.len(), 2);
        assert!(s.lines().count() >= 5);
    }
}
