//! Bootstrap confidence intervals.
//!
//! The evaluation's headline numbers (success rates, mean quality
//! losses, speedup factors) come from finite problem samples; the bench
//! harness reports percentile-bootstrap intervals alongside them so
//! shape claims ("Smart above Tompson at every grid") can be checked
//! against sampling noise.


/// A percentile bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (statistic on the full sample).
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Confidence level, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// `true` if the interval excludes `value` (a crude significance
    /// check).
    pub fn excludes(&self, value: f64) -> bool {
        value < self.lo || value > self.hi
    }

    /// Renders like `0.42 [0.35, 0.51]`.
    pub fn render(&self) -> String {
        format!("{:.4} [{:.4}, {:.4}]", self.estimate, self.lo, self.hi)
    }
}

/// A tiny deterministic xorshift for resampling (no external RNG so the
/// crate stays dependency-light).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Percentile bootstrap for an arbitrary statistic.
///
/// Returns `None` for an empty sample. Deterministic in `seed`.
pub fn bootstrap_ci(
    data: &[f64],
    statistic: impl Fn(&[f64]) -> f64,
    resamples: usize,
    level: f64,
    seed: u64,
) -> Option<ConfidenceInterval> {
    if data.is_empty() || !(0.0..1.0).contains(&level) || resamples == 0 {
        return None;
    }
    let estimate = statistic(data);
    let mut rng = XorShift(seed | 1);
    let mut stats = Vec::with_capacity(resamples);
    let mut buf = vec![0.0; data.len()];
    for _ in 0..resamples {
        for b in buf.iter_mut() {
            *b = data[rng.below(data.len())];
        }
        stats.push(statistic(&buf));
    }
    stats.sort_by(f64::total_cmp);
    let alpha = (1.0 - level) / 2.0;
    let pick = |p: f64| -> f64 {
        let idx = ((stats.len() - 1) as f64 * p).round() as usize;
        stats[idx]
    };
    Some(ConfidenceInterval {
        estimate,
        lo: pick(alpha),
        hi: pick(1.0 - alpha),
        level,
    })
}

/// Bootstrap CI of the mean.
pub fn mean_ci(data: &[f64], level: f64, seed: u64) -> Option<ConfidenceInterval> {
    bootstrap_ci(
        data,
        |d| d.iter().sum::<f64>() / d.len() as f64,
        1000,
        level,
        seed,
    )
}

/// Bootstrap CI of a success proportion given boolean outcomes.
pub fn proportion_ci(successes: &[bool], level: f64, seed: u64) -> Option<ConfidenceInterval> {
    let data: Vec<f64> = successes.iter().map(|&b| f64::from(u8::from(b))).collect();
    mean_ci(&data, level, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_brackets_the_true_mean() {
        // N(≈5, small spread) sample: the CI must cover 5-ish.
        let data: Vec<f64> = (0..200).map(|i| 5.0 + ((i * 37 % 100) as f64 - 50.0) / 100.0).collect();
        let ci = mean_ci(&data, 0.95, 42).unwrap();
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        assert!((ci.estimate - 5.0).abs() < 0.1);
        assert!(ci.lo < 5.0 + 0.1 && ci.hi > 5.0 - 0.1);
    }

    #[test]
    fn narrower_with_more_data() {
        let small: Vec<f64> = (0..10).map(|i| (i % 5) as f64).collect();
        let large: Vec<f64> = (0..1000).map(|i| (i % 5) as f64).collect();
        let ci_s = mean_ci(&small, 0.95, 1).unwrap();
        let ci_l = mean_ci(&large, 0.95, 1).unwrap();
        assert!(ci_l.hi - ci_l.lo < ci_s.hi - ci_s.lo);
    }

    #[test]
    fn deterministic_in_seed() {
        let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let a = mean_ci(&data, 0.9, 7).unwrap();
        let b = mean_ci(&data, 0.9, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn proportion_ci_in_unit_interval() {
        let outcomes: Vec<bool> = (0..40).map(|i| i % 3 != 0).collect();
        let ci = proportion_ci(&outcomes, 0.95, 3).unwrap();
        assert!(ci.lo >= 0.0 && ci.hi <= 1.0);
        assert!((ci.estimate - 26.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn excludes_works() {
        let ci = ConfidenceInterval {
            estimate: 0.5,
            lo: 0.4,
            hi: 0.6,
            level: 0.95,
        };
        assert!(ci.excludes(0.3));
        assert!(!ci.excludes(0.5));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(mean_ci(&[], 0.95, 1).is_none());
        assert!(bootstrap_ci(&[1.0], |d| d[0], 0, 0.95, 1).is_none());
    }
}
