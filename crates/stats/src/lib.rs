//! Statistics utilities for the Smart-fluidnet reproduction.
//!
//! This crate collects the statistical machinery the paper leans on:
//!
//! * [`correlation`] — Pearson's r (Eq. 10) and Spearman's rank
//!   correlation (Eq. 11), used in §6.1 to justify `CumDivNorm` as a
//!   runtime proxy for the final simulation quality loss.
//! * [`regression`] — ordinary least-squares linear regression, used by
//!   the runtime to extrapolate `CumDivNorm` to the final time step.
//! * [`histogram`] — fixed-width histograms (Figure 1).
//! * [`boxplot`] — five-number summaries with Tukey outliers
//!   (Figures 9 and 11).
//! * [`pareto`] — Pareto-front extraction over (time, quality-loss)
//!   points (§4, Figure 3).
//! * [`summary`] — scalar descriptive statistics.
//! * [`table`] — plain-text table rendering for the bench harness.

#![warn(missing_docs)]

pub mod bootstrap;
pub mod boxplot;
pub mod correlation;
pub mod histogram;
pub mod pareto;
pub mod regression;
pub mod summary;
pub mod table;

pub use bootstrap::{bootstrap_ci, mean_ci, proportion_ci, ConfidenceInterval};
pub use boxplot::BoxplotSummary;
pub use correlation::{pearson, spearman};
pub use histogram::Histogram;
pub use pareto::{pareto_front, ParetoPoint};
pub use regression::LinearRegression;
pub use summary::Summary;
pub use table::TextTable;
