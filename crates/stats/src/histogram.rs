//! Fixed-width histograms (used for Figure 1: quality-loss distribution).


/// A histogram with equally sized bins over `[lo, hi)`.
///
/// Values below `lo` land in the first bin, values at or above `hi` in
/// the last bin (saturating clamp), so every observation is counted —
/// matching how the paper's Figure 1 shows a bounded x-axis while still
/// accounting for 100% of the inputs.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && hi > lo, "bad bounds");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Records one observation. NaNs are ignored (and not counted).
    pub fn add(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        let idx = self.bin_index(value);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Records every value from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Bin index a value would fall in (with saturating clamp).
    pub fn bin_index(&self, value: f64) -> usize {
        let n = self.counts.len();
        if value < self.lo {
            return 0;
        }
        let t = (value - self.lo) / self.bin_width();
        (t as usize).min(n - 1)
    }

    /// `[lo, hi)` edges of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let w = self.bin_width();
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let (a, b) = self.bin_range(i);
        0.5 * (a + b)
    }

    /// Raw counts per bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Proportion of observations in each bin (sums to 1 when non-empty).
    pub fn proportions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Proportion of observations strictly below `threshold`.
    ///
    /// Used for statements like "65.42% of input problems cannot meet a
    /// 0.01 quality requirement" (§2.3): `1 - fraction_below(q)`.
    pub fn fraction_below(&self, threshold: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut below = 0u64;
        for i in 0..self.counts.len() {
            let (a, b) = self.bin_range(i);
            if b <= threshold {
                below += self.counts[i];
            } else if a < threshold {
                // Partial bin: assume uniform spread inside the bin.
                let frac = (threshold - a) / (b - a);
                below += (self.counts[i] as f64 * frac).round() as u64;
            }
        }
        below as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_expected_bins() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.add(0.05); // bin 0
        h.add(0.15); // bin 1
        h.add(0.999); // bin 9
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-5.0);
        h.add(7.0);
        h.add(1.0); // hi is exclusive -> clamps into last bin
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 2);
    }

    #[test]
    fn nan_is_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(f64::NAN);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn proportions_sum_to_one() {
        let mut h = Histogram::new(0.0, 0.05, 18); // Figure 1 shape
        h.extend((0..1000).map(|i| (i as f64) * 0.00005));
        let s: f64 = h.proportions().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_below_midpoint() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.extend((0..100).map(|i| i as f64 / 100.0));
        let f = h.fraction_below(0.5);
        assert!((f - 0.5).abs() < 0.02, "{f}");
    }

    #[test]
    fn bin_ranges_tile_the_domain() {
        let h = Histogram::new(-2.0, 3.0, 5);
        let mut edge = -2.0;
        for i in 0..5 {
            let (a, b) = h.bin_range(i);
            assert!((a - edge).abs() < 1e-12);
            edge = b;
        }
        assert!((edge - 3.0).abs() < 1e-12);
    }
}
