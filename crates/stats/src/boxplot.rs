//! Box-plot summaries (Figures 9 and 11 of the paper).
//!
//! The paper's box-plots are bounded by the 25th and 75th percentiles,
//! show the median as the central mark, and mark extreme outliers with
//! `+`. We reproduce that with a Tukey-style five-number summary:
//! whiskers at the most extreme data point within 1.5·IQR of the box.


/// Five-number summary plus outliers, as drawn in a Tukey box-plot.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxplotSummary {
    /// Smallest observation ≥ Q1 − 1.5·IQR (lower whisker).
    pub whisker_lo: f64,
    /// 25th percentile.
    pub q1: f64,
    /// 50th percentile.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Largest observation ≤ Q3 + 1.5·IQR (upper whisker).
    pub whisker_hi: f64,
    /// Observations outside the whiskers (the `+` marks).
    pub outliers: Vec<f64>,
    /// Arithmetic mean (reported alongside in our tables).
    pub mean: f64,
    /// Number of observations.
    pub n: usize,
}

impl BoxplotSummary {
    /// Computes the summary from unsorted data.
    ///
    /// Returns `None` for empty input. NaNs are filtered out first.
    pub fn from_data(data: &[f64]) -> Option<Self> {
        let mut v: Vec<f64> = data.iter().copied().filter(|x| !x.is_nan()).collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(f64::total_cmp);
        let q1 = percentile_sorted(&v, 25.0);
        let median = percentile_sorted(&v, 50.0);
        let q3 = percentile_sorted(&v, 75.0);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisker_lo = v
            .iter()
            .copied()
            .find(|&x| x >= lo_fence)
            .unwrap_or(v[0]);
        let whisker_hi = v
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= hi_fence)
            .unwrap_or(v[v.len() - 1]);
        let outliers = v
            .iter()
            .copied()
            .filter(|&x| x < lo_fence || x > hi_fence)
            .collect();
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        Some(Self {
            whisker_lo,
            q1,
            median,
            q3,
            whisker_hi,
            outliers,
            mean,
            n: v.len(),
        })
    }

    /// Interquartile range `q3 - q1` — the "variance" the paper eyeballs
    /// when saying Smart-fluidnet's boxes are tighter than Tompson's.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// One-line rendering like `min≤[q1|med|q3]≤max (+k outliers)`.
    pub fn render(&self) -> String {
        format!(
            "{:.4} ≤ [{:.4} | {:.4} | {:.4}] ≤ {:.4}  (n={}, mean={:.4}, outliers={})",
            self.whisker_lo,
            self.q1,
            self.median,
            self.q3,
            self.whisker_hi,
            self.n,
            self.mean,
            self.outliers.len()
        )
    }
}

/// Linear-interpolation percentile (inclusive method) on sorted data.
///
/// `p` is in percent, clamped to `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_of_small_sample() {
        // 1..=5: q1=2, median=3, q3=4 with the inclusive method.
        let s = BoxplotSummary::from_data(&[5.0, 3.0, 1.0, 4.0, 2.0]).unwrap();
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.whisker_lo, 1.0);
        assert_eq!(s.whisker_hi, 5.0);
        assert!(s.outliers.is_empty());
    }

    #[test]
    fn detects_outliers() {
        let mut data: Vec<f64> = (0..20).map(|i| i as f64).collect();
        data.push(1000.0);
        let s = BoxplotSummary::from_data(&data).unwrap();
        assert_eq!(s.outliers, vec![1000.0]);
        assert!(s.whisker_hi <= 19.0);
    }

    #[test]
    fn empty_and_nan_inputs() {
        assert!(BoxplotSummary::from_data(&[]).is_none());
        assert!(BoxplotSummary::from_data(&[f64::NAN]).is_none());
        let s = BoxplotSummary::from_data(&[f64::NAN, 2.0]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.median, 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_sorted(&v, 0.0), 10.0);
        assert_eq!(percentile_sorted(&v, 100.0), 40.0);
        assert!((percentile_sorted(&v, 50.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn summary_ordering_invariant() {
        let data: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
        let s = BoxplotSummary::from_data(&data).unwrap();
        assert!(s.whisker_lo <= s.q1);
        assert!(s.q1 <= s.median);
        assert!(s.median <= s.q3);
        assert!(s.q3 <= s.whisker_hi);
    }
}
