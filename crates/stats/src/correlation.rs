//! Correlation coefficients (paper Eq. 10 and Eq. 11).
//!
//! §6.1 of the paper quantifies how well the runtime-observable
//! `CumDivNorm` tracks the final quality loss using Pearson's
//! product-moment correlation and Spearman's rank correlation, reporting
//! `r_p = 0.61` and `r_s = 0.79` over 20,480 problems × 128 steps.

/// Pearson's product-moment correlation coefficient (Eq. 10).
///
/// Returns `None` when the inputs are shorter than two elements, have
/// mismatched lengths, or either input has zero variance (the
/// coefficient is undefined in those cases).
///
/// ```
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((sfn_stats::pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    let denom = (sxx * syy).sqrt();
    if denom == 0.0 || !denom.is_finite() {
        None
    } else {
        Some(sxy / denom)
    }
}

/// Spearman's rank correlation coefficient (Eq. 11).
///
/// Computed as the Pearson correlation of the rank vectors, which is the
/// standard generalisation of Eq. 11 that stays correct in the presence
/// of ties (ties receive their average rank). For tie-free data this is
/// numerically identical to `1 - 6 Σd²/(n(n²-1))`.
///
/// ```
/// // A monotone but non-linear relationship has perfect rank correlation.
/// let x = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
/// assert!((sfn_stats::spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let rx = average_ranks(x);
    let ry = average_ranks(y);
    pearson(&rx, &ry)
}

/// Assigns 1-based ranks, averaging over groups of tied values.
///
/// Non-finite values sort after finite ones via `total_cmp`, keeping the
/// function total; callers with NaNs get a deterministic (if
/// meaningless) answer rather than a panic.
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Find the extent of the tie group starting at i.
        let mut j = i + 1;
        while j < n && values[idx[j]] == values[idx[i]] {
            j += 1;
        }
        // Average 1-based rank of positions i..j.
        let avg = (i + 1 + j) as f64 / 2.0;
        for &k in &idx[i..j] {
            ranks[k] = avg;
        }
        i = j;
    }
    ranks
}

/// Textbook Spearman via squared rank differences (Eq. 11 verbatim).
///
/// Only valid for tie-free inputs; exposed for cross-checking against
/// [`spearman`] and for reproducing the exact formula of the paper.
pub fn spearman_d2(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let rx = average_ranks(x);
    let ry = average_ranks(y);
    let n = x.len() as f64;
    let d2: f64 = rx.iter().zip(&ry).map(|(a, b)| (a - b) * (a - b)).sum();
    Some(1.0 - 6.0 * d2 / (n * (n * n - 1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_positive() {
        let x = [1.0, 2.0, 3.0];
        let y = [10.0, 20.0, 30.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_negative() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_uncorrelated_orthogonal() {
        // Symmetric design: x deviations and y deviations are orthogonal.
        let x = [-1.0, 0.0, 1.0, 0.0];
        let y = [0.0, -1.0, 0.0, 1.0];
        assert!(pearson(&x, &y).unwrap().abs() < 1e-12);
    }

    #[test]
    fn pearson_rejects_degenerate() {
        assert_eq!(pearson(&[1.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), None);
        assert_eq!(pearson(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    fn pearson_invariant_to_affine_transform() {
        let x = [0.3, 1.7, 2.9, 4.1, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0];
        let base = pearson(&x, &y).unwrap();
        let xs: Vec<f64> = x.iter().map(|v| 3.0 * v - 7.0).collect();
        let ys: Vec<f64> = y.iter().map(|v| 0.5 * v + 11.0).collect();
        assert!((pearson(&xs, &ys).unwrap() - base).abs() < 1e-12);
    }

    #[test]
    fn ranks_simple() {
        assert_eq!(average_ranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ranks_with_ties() {
        // 10,20,20,30 -> ranks 1, 2.5, 2.5, 4
        assert_eq!(
            average_ranks(&[10.0, 20.0, 20.0, 30.0]),
            vec![1.0, 2.5, 2.5, 4.0]
        );
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 8.0, 27.0, 64.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_matches_d2_formula_without_ties() {
        let x = [0.3, 1.7, 2.9, 4.1, 5.0, 0.1];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0, 0.5];
        let a = spearman(&x, &y).unwrap();
        let b = spearman_d2(&x, &y).unwrap();
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn spearman_reversed_is_minus_one() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }
}
