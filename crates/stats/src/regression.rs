//! Ordinary least-squares linear regression.
//!
//! §6.1 of the paper predicts `CumDivNorm` at the final time step by
//! fitting `f_k(x) = a·x + b` over the last few time steps of a check
//! interval with the least-squares method. This module provides that
//! fit, together with goodness-of-fit diagnostics used by the tests.


/// A fitted simple linear regression `y = slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearRegression {
    /// Slope `a` of the fitted line.
    pub slope: f64,
    /// Intercept `b` of the fitted line.
    pub intercept: f64,
}

impl LinearRegression {
    /// Fits a line through `(x, y)` pairs by ordinary least squares.
    ///
    /// Returns `None` if fewer than two points are supplied, the lengths
    /// differ, or all `x` are identical (vertical line — the slope is
    /// undefined).
    ///
    /// ```
    /// use sfn_stats::LinearRegression;
    /// let lr = LinearRegression::fit(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0]).unwrap();
    /// assert!((lr.slope - 2.0).abs() < 1e-12);
    /// assert!((lr.intercept - 1.0).abs() < 1e-12);
    /// ```
    pub fn fit(x: &[f64], y: &[f64]) -> Option<Self> {
        if x.len() != y.len() || x.len() < 2 {
            return None;
        }
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for (&xi, &yi) in x.iter().zip(y) {
            let dx = xi - mx;
            sxx += dx * dx;
            sxy += dx * (yi - my);
        }
        if sxx == 0.0 || !sxx.is_finite() {
            return None;
        }
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        if !slope.is_finite() || !intercept.is_finite() {
            return None;
        }
        Some(Self { slope, intercept })
    }

    /// Convenience fit over `(index, y)` with x = 0, 1, 2, …
    pub fn fit_indexed(y: &[f64]) -> Option<Self> {
        let x: Vec<f64> = (0..y.len()).map(|i| i as f64).collect();
        Self::fit(&x, y)
    }

    /// Evaluates the fitted line at `x`.
    #[inline]
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Coefficient of determination R² against the fitting data.
    ///
    /// Returns 1.0 for a perfect fit; may be negative for a fit worse
    /// than the mean predictor (cannot happen for OLS on its own
    /// training data, but the method accepts arbitrary data).
    pub fn r_squared(&self, x: &[f64], y: &[f64]) -> Option<f64> {
        if x.len() != y.len() || x.is_empty() {
            return None;
        }
        let my = y.iter().sum::<f64>() / y.len() as f64;
        let ss_tot: f64 = y.iter().map(|&yi| (yi - my) * (yi - my)).sum();
        let ss_res: f64 = x
            .iter()
            .zip(y)
            .map(|(&xi, &yi)| {
                let e = yi - self.predict(xi);
                e * e
            })
            .sum();
        if ss_tot == 0.0 {
            // All y equal: perfect iff residuals vanish.
            return Some(if ss_res < 1e-24 { 1.0 } else { 0.0 });
        }
        Some(1.0 - ss_res / ss_tot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_affine_data() {
        let x = [1.0, 2.0, 5.0, 9.0];
        let y: Vec<f64> = x.iter().map(|v| -3.5 * v + 0.25).collect();
        let lr = LinearRegression::fit(&x, &y).unwrap();
        assert!((lr.slope + 3.5).abs() < 1e-12);
        assert!((lr.intercept - 0.25).abs() < 1e-12);
        assert!((lr.r_squared(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_indexed_matches_explicit_x() {
        let y = [3.0, 4.5, 6.1, 7.4];
        let a = LinearRegression::fit_indexed(&y).unwrap();
        let b = LinearRegression::fit(&[0.0, 1.0, 2.0, 3.0], &y).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(LinearRegression::fit(&[1.0], &[2.0]).is_none());
        assert!(LinearRegression::fit(&[1.0, 1.0], &[2.0, 3.0]).is_none());
        assert!(LinearRegression::fit(&[1.0, 2.0], &[2.0]).is_none());
    }

    #[test]
    fn least_squares_minimises_residuals() {
        // Perturb the OLS solution; every perturbation must increase SSE.
        let x = [0.0, 1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 2.2, 2.8, 4.4, 4.9];
        let lr = LinearRegression::fit(&x, &y).unwrap();
        let sse = |s: f64, i: f64| -> f64 {
            x.iter()
                .zip(&y)
                .map(|(&xi, &yi)| {
                    let e = yi - (s * xi + i);
                    e * e
                })
                .sum()
        };
        let best = sse(lr.slope, lr.intercept);
        for ds in [-0.05, 0.05] {
            for di in [-0.05, 0.05] {
                assert!(sse(lr.slope + ds, lr.intercept + di) > best);
            }
        }
    }

    #[test]
    fn extrapolation_used_like_the_runtime() {
        // CumDivNorm-style monotone data: fit on steps 2..5, predict step 63.
        let y = [10.0, 12.0, 14.0, 16.0];
        let x = [2.0, 3.0, 4.0, 5.0];
        let lr = LinearRegression::fit(&x, &y).unwrap();
        assert!((lr.predict(63.0) - (6.0 + 2.0 * 63.0)).abs() < 1e-9);
    }
}
