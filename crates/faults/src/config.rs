//! The `SFN_FAULTS` fault-schedule configuration.
//!
//! A schedule is a JSON object:
//!
//! ```json
//! {"seed": 42,
//!  "faults": [
//!    {"kind": "nan_output", "p": 0.25, "start": 8, "end": 32,
//!     "target": "M7", "mag": 0.05}
//!  ]}
//! ```
//!
//! * `seed` — base seed of every injection decision (default 0).
//! * `kind` — one of `nan_output`, `inf_output`, `solver_starvation`,
//!   `artifact_corruption`, `latency_spike`, `crash`, `slow_client`,
//!   `conn_reset`, `queue_stall`.
//! * `p` — per-eligible-event injection probability (default 1.0).
//! * `start` / `end` — the eligible half-open step window `[start, end)`
//!   in the site's own step/invocation counter (defaults: whole run).
//! * `target` — substring filter on the site label (e.g. a model name);
//!   absent means every site matches.
//! * `mag` — kind-specific magnitude, see [`FaultSpec::magnitude`].
//!
//! Parsing uses the shared hand-rolled JSON-subset parser in
//! [`sfn_obs::json`] (the whole pipeline stays dependency-free); the
//! schema checks here reject anything outside the schedule shape above
//! with a position-carrying [`ParseError`] so a malformed schedule can
//! be reported and *ignored* rather than crashing the host process.

use sfn_obs::json::{self, JsonError, Value};

/// The injectable fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Poison a fraction of a surrogate's output values with NaN.
    NanOutput,
    /// Poison a fraction of a surrogate's output values with +∞.
    InfOutput,
    /// Starve an exact solver of iterations (non-convergence).
    SolverStarvation,
    /// Corrupt (bit-flip) or truncate artifact bytes on read.
    ArtifactCorruption,
    /// Inject extra latency into an inference call.
    LatencySpike,
    /// Kill the process (SIGKILL) at a named crash point — the
    /// worst-case process failure for the crash-recovery harness.
    Crash,
    /// Drip-feed a client's request/response bytes (serving path):
    /// the socket loop sleeps between chunks, tying up a connection.
    SlowClient,
    /// Reset a connection mid-exchange (serving path): the socket is
    /// dropped without a response.
    ConnReset,
    /// Stall a work queue hand-off (serving path): the dequeue sleeps,
    /// simulating a wedged worker.
    QueueStall,
}

impl FaultKind {
    /// Parses the snake_case kind name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "nan_output" => Some(Self::NanOutput),
            "inf_output" => Some(Self::InfOutput),
            "solver_starvation" => Some(Self::SolverStarvation),
            "artifact_corruption" => Some(Self::ArtifactCorruption),
            "latency_spike" => Some(Self::LatencySpike),
            "crash" => Some(Self::Crash),
            "slow_client" => Some(Self::SlowClient),
            "conn_reset" => Some(Self::ConnReset),
            "queue_stall" => Some(Self::QueueStall),
            _ => None,
        }
    }

    /// The snake_case name used in config and events.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::NanOutput => "nan_output",
            Self::InfOutput => "inf_output",
            Self::SolverStarvation => "solver_starvation",
            Self::ArtifactCorruption => "artifact_corruption",
            Self::LatencySpike => "latency_spike",
            Self::Crash => "crash",
            Self::SlowClient => "slow_client",
            Self::ConnReset => "conn_reset",
            Self::QueueStall => "queue_stall",
        }
    }

    /// Default magnitude when the spec omits `mag`.
    pub fn default_magnitude(self) -> f64 {
        match self {
            Self::NanOutput | Self::InfOutput => 0.05, // fraction of values
            Self::SolverStarvation => 0.5,             // residual error scale
            Self::ArtifactCorruption => 0.25,          // fraction of bytes
            Self::LatencySpike => 10.0,                // milliseconds
            Self::Crash => 1.0,                        // unused
            Self::SlowClient => 25.0,                  // ms between chunks
            Self::ConnReset => 1.0,                    // unused
            Self::QueueStall => 50.0,                  // milliseconds
        }
    }
}

/// One fault class scheduled over a step window.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// Per-eligible-event probability in `[0, 1]`.
    pub probability: f64,
    /// First eligible step (site-local counter), inclusive.
    pub start: u64,
    /// End of the eligible window, exclusive (`None` = unbounded).
    pub end: Option<u64>,
    /// Site-label substring filter (`None` = all sites).
    pub target: Option<String>,
    /// Kind-specific magnitude: fraction of values/bytes for the
    /// corruption kinds (≥ 1.0 truncates an artifact instead of
    /// flipping bytes), error scale for starvation, milliseconds for
    /// latency spikes.
    pub magnitude: f64,
}

impl FaultSpec {
    /// A spec with defaults: always fire (`p = 1`), whole run, every
    /// site, default magnitude.
    pub fn new(kind: FaultKind) -> Self {
        Self {
            kind,
            probability: 1.0,
            start: 0,
            end: None,
            target: None,
            magnitude: kind.default_magnitude(),
        }
    }

    /// True if the spec covers `site` at `step` (probability aside).
    pub fn covers(&self, site: &str, step: u64) -> bool {
        if step < self.start || self.end.is_some_and(|e| step >= e) {
            return false;
        }
        match &self.target {
            Some(t) => site.contains(t.as_str()),
            None => true,
        }
    }
}

/// A full schedule: a seed plus the fault specs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Base seed of every injection decision.
    pub seed: u64,
    /// The scheduled faults.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan under `seed` — extend with [`FaultPlan::with`].
    pub fn seeded(seed: u64) -> Self {
        Self { seed, specs: Vec::new() }
    }

    /// Builder-style spec append.
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }
}

/// A configuration parse failure with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SFN_FAULTS parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<JsonError> for ParseError {
    fn from(e: JsonError) -> Self {
        ParseError { at: e.at, message: e.message }
    }
}

/// Parses an `SFN_FAULTS` JSON schedule.
pub fn parse_plan(input: &str) -> Result<FaultPlan, ParseError> {
    let value = json::parse(input).map_err(ParseError::from)?;
    plan_from_value(&value)
}

// ------------------------------------------------------- schema checks

fn num_field(v: &Value, key: &str, default: f64) -> Result<f64, ParseError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(Value::Num(n)) => Ok(*n),
        Some(_) => Err(ParseError { at: 0, message: format!("{key:?} must be a number") }),
    }
}

fn plan_from_value(v: &Value) -> Result<FaultPlan, ParseError> {
    if !matches!(v, Value::Obj(_)) {
        return Err(ParseError { at: 0, message: "schedule must be a JSON object".into() });
    }
    let seed = num_field(v, "seed", 0.0)?;
    if seed < 0.0 || seed.fract() != 0.0 {
        return Err(ParseError { at: 0, message: "\"seed\" must be a non-negative integer".into() });
    }
    let mut plan = FaultPlan::seeded(seed as u64);
    let faults = match v.get("faults") {
        None | Some(Value::Null) => return Ok(plan),
        Some(Value::Arr(items)) => items,
        Some(_) => {
            return Err(ParseError { at: 0, message: "\"faults\" must be an array".into() })
        }
    };
    for item in faults {
        let kind_name = match item.get("kind") {
            Some(Value::Str(s)) => s.as_str(),
            _ => {
                return Err(ParseError { at: 0, message: "fault entry needs a \"kind\" string".into() })
            }
        };
        let kind = FaultKind::parse(kind_name).ok_or_else(|| ParseError {
            at: 0,
            message: format!("unknown fault kind {kind_name:?}"),
        })?;
        let mut spec = FaultSpec::new(kind);
        spec.probability = num_field(item, "p", 1.0)?;
        if !(0.0..=1.0).contains(&spec.probability) {
            return Err(ParseError { at: 0, message: "\"p\" must be within [0, 1]".into() });
        }
        let start = num_field(item, "start", 0.0)?;
        if start < 0.0 || start.fract() != 0.0 {
            return Err(ParseError { at: 0, message: "\"start\" must be a non-negative integer".into() });
        }
        spec.start = start as u64;
        spec.end = match item.get("end") {
            None | Some(Value::Null) => None,
            Some(Value::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            Some(_) => {
                return Err(ParseError { at: 0, message: "\"end\" must be a non-negative integer".into() })
            }
        };
        spec.target = match item.get("target") {
            None | Some(Value::Null) => None,
            Some(Value::Str(s)) => Some(s.clone()),
            Some(_) => {
                return Err(ParseError { at: 0, message: "\"target\" must be a string".into() })
            }
        };
        spec.magnitude = num_field(item, "mag", kind.default_magnitude())?;
        if !spec.magnitude.is_finite() || spec.magnitude < 0.0 {
            return Err(ParseError { at: 0, message: "\"mag\" must be finite and non-negative".into() });
        }
        plan.specs.push(spec);
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_schedule_round_trips() {
        let plan = parse_plan(
            r#"{"seed": 42, "faults": [
                {"kind": "nan_output", "p": 0.25, "start": 8, "end": 32,
                 "target": "M7", "mag": 0.05},
                {"kind": "latency_spike", "mag": 20}
            ]}"#,
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.specs.len(), 2);
        let s = &plan.specs[0];
        assert_eq!(s.kind, FaultKind::NanOutput);
        assert_eq!(s.probability, 0.25);
        assert_eq!((s.start, s.end), (8, Some(32)));
        assert_eq!(s.target.as_deref(), Some("M7"));
        assert_eq!(s.magnitude, 0.05);
        let l = &plan.specs[1];
        assert_eq!(l.kind, FaultKind::LatencySpike);
        assert_eq!(l.probability, 1.0);
        assert_eq!(l.magnitude, 20.0);
        assert_eq!(l.target, None);
    }

    #[test]
    fn crash_kind_parses_with_window_and_target() {
        let plan = parse_plan(
            r#"{"seed": 3, "faults": [
                {"kind": "crash", "start": 12, "end": 13, "target": "ckpt/pre_rename"}
            ]}"#,
        )
        .unwrap();
        let s = &plan.specs[0];
        assert_eq!(s.kind, FaultKind::Crash);
        assert_eq!((s.start, s.end), (12, Some(13)));
        assert_eq!(s.target.as_deref(), Some("ckpt/pre_rename"));
        assert_eq!(s.probability, 1.0);
        assert_eq!(FaultKind::parse(FaultKind::Crash.as_str()), Some(FaultKind::Crash));
        assert!(s.covers("ckpt/pre_rename", 12));
        assert!(!s.covers("ckpt/pre_rename", 13));
    }

    #[test]
    fn serving_fault_kinds_round_trip() {
        for kind in [FaultKind::SlowClient, FaultKind::ConnReset, FaultKind::QueueStall] {
            assert_eq!(FaultKind::parse(kind.as_str()), Some(kind));
        }
        let plan = parse_plan(
            r#"{"faults": [
                {"kind": "slow_client", "mag": 5},
                {"kind": "conn_reset", "p": 0.5},
                {"kind": "queue_stall"}
            ]}"#,
        )
        .unwrap();
        assert_eq!(plan.specs[0].kind, FaultKind::SlowClient);
        assert_eq!(plan.specs[0].magnitude, 5.0);
        assert_eq!(plan.specs[1].probability, 0.5);
        assert_eq!(plan.specs[2].magnitude, FaultKind::QueueStall.default_magnitude());
    }

    #[test]
    fn seed_only_schedule_is_empty() {
        let plan = parse_plan(r#"{"seed": 7}"#).unwrap();
        assert_eq!(plan.seed, 7);
        assert!(plan.specs.is_empty());
    }

    #[test]
    fn defaults_fill_omitted_fields() {
        let plan = parse_plan(r#"{"faults": [{"kind": "solver_starvation"}]}"#).unwrap();
        assert_eq!(plan.seed, 0);
        let s = &plan.specs[0];
        assert_eq!(s.probability, 1.0);
        assert_eq!(s.start, 0);
        assert_eq!(s.end, None);
        assert_eq!(s.magnitude, FaultKind::SolverStarvation.default_magnitude());
    }

    #[test]
    fn malformed_inputs_are_rejected_not_panicked() {
        for bad in [
            "",
            "{",
            "[1, 2]",
            r#"{"seed": -1}"#,
            r#"{"seed": 1.5}"#,
            r#"{"faults": [{"kind": "meteor_strike"}]}"#,
            r#"{"faults": [{"kind": "nan_output", "p": 2.0}]}"#,
            r#"{"faults": [{"kind": "nan_output", "mag": -1}]}"#,
            r#"{"faults": [{"p": 0.5}]}"#,
            r#"{"faults": {"kind": "nan_output"}}"#,
            r#"{"seed": 1} trailing"#,
            r#"{"seed": 1e400}"#,
        ] {
            assert!(parse_plan(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn string_escapes_and_unicode() {
        let plan = parse_plan(
            r#"{"faults": [{"kind": "nan_output", "target": "a\"b\\c\nπ"}]}"#,
        )
        .unwrap();
        assert_eq!(plan.specs[0].target.as_deref(), Some("a\"b\\c\nπ"));
    }

    #[test]
    fn covers_window_and_target() {
        let mut s = FaultSpec::new(FaultKind::NanOutput);
        s.start = 5;
        s.end = Some(10);
        s.target = Some("M7".into());
        assert!(s.covers("projector/M7", 5));
        assert!(s.covers("projector/M7", 9));
        assert!(!s.covers("projector/M7", 4));
        assert!(!s.covers("projector/M7", 10));
        assert!(!s.covers("projector/M8", 7));
        let open = FaultSpec::new(FaultKind::NanOutput);
        assert!(open.covers("anything", u64::MAX - 1));
    }

    #[test]
    fn parse_error_displays_offset() {
        let e = parse_plan("{\"seed\": }").unwrap_err();
        assert!(e.to_string().contains("byte"), "{e}");
    }
}
