//! Counter-based deterministic randomness for injection decisions.
//!
//! A fault decision must be reproducible from `(seed, site, step)`
//! alone — independent of thread interleaving, call order, and how many
//! other sites queried the injector before this one. A stateful RNG
//! cannot give that, so decisions hash their coordinates instead
//! (SplitMix64 as the mixer, FNV-1a to fold the site name in).

/// FNV-1a over a byte string (the same hash `sfn-nn`'s model format
/// uses for checksums; duplicated here to keep this crate leaf-level).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// SplitMix64 finaliser: a strong 64-bit mixer.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a decision's coordinates into one hash.
pub fn decision_hash(seed: u64, spec_index: usize, site: &str, step: u64) -> u64 {
    let mut h = seed;
    h = splitmix64(h ^ (spec_index as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
    h = splitmix64(h ^ fnv1a(site.as_bytes()));
    splitmix64(h ^ step.wrapping_mul(0x2545_F491_4F6C_DD1D))
}

/// Maps a hash to a uniform draw in `[0, 1)` (53 mantissa bits).
pub fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = decision_hash(42, 1, "projector/M7", 10);
        let b = decision_hash(42, 1, "projector/M7", 10);
        assert_eq!(a, b);
    }

    #[test]
    fn coordinates_decorrelate() {
        let base = decision_hash(42, 1, "projector/M7", 10);
        assert_ne!(base, decision_hash(43, 1, "projector/M7", 10), "seed");
        assert_ne!(base, decision_hash(42, 2, "projector/M7", 10), "spec");
        assert_ne!(base, decision_hash(42, 1, "projector/M8", 10), "site");
        assert_ne!(base, decision_hash(42, 1, "projector/M7", 11), "step");
    }

    #[test]
    fn unit_draws_are_in_range_and_roughly_uniform() {
        let mut sum = 0.0;
        let n = 10_000;
        for i in 0..n {
            let u = unit_f64(decision_hash(7, 0, "site", i));
            assert!((0.0..1.0).contains(&u), "{u}");
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from uniform");
    }

    #[test]
    fn fnv_distinguishes_strings() {
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b""), fnv1a(b"a"));
    }
}
