//! `sfn-faults` — deterministic, seeded fault injection for the
//! Smart-fluidnet pipeline.
//!
//! The paper's runtime (Algorithm 2) promises a quality target even
//! when individual surrogates misbehave; this crate supplies the
//! misbehaviour on demand so the promise can be *tested*. A schedule
//! ([`FaultPlan`]) describes which faults fire where:
//!
//! * **`nan_output` / `inf_output`** — poison a fraction of a
//!   surrogate's output field ([`corrupt_field`]), the divergence
//!   failure mode of unconstrained CNN projections;
//! * **`solver_starvation`** — force an exact solver to stop short and
//!   report non-convergence ([`starve_solver`]);
//! * **`artifact_corruption`** — flip or truncate artifact bytes on
//!   read ([`corrupt_bytes`]);
//! * **`latency_spike`** — stretch an inference call ([`latency_spike`]);
//! * **`crash`** — kill the process (SIGKILL) at a named boundary
//!   ([`crash_point`]), for the crash-recovery harness.
//!
//! # Configuration
//!
//! Set `SFN_FAULTS` to a JSON schedule and call [`init_from_env`] (the
//! bench harness and the chaos suite do), or [`install`] a plan
//! programmatically:
//!
//! ```
//! use sfn_faults::{install, parse_plan};
//! let plan = parse_plan(r#"{"seed": 7, "faults": [
//!     {"kind": "nan_output", "p": 0.5, "start": 8}]}"#).unwrap();
//! install(Some(plan));
//! // ... drive the system, then disarm:
//! install(None);
//! ```
//!
//! # Determinism
//!
//! Every decision is a pure hash of `(seed, spec index, site label,
//! step)` — no shared RNG state — so a schedule reproduces exactly
//! across runs, thread interleavings, and rollback replays. Injections
//! are logged as `fault.injected` events and counted (`faults.injected`
//! / `faults.recovered`) through `sfn-obs`.
//!
//! Like `sfn-obs`, this crate is dependency-free: with no plan
//! installed every hook is one relaxed atomic load.

#![warn(missing_docs)]

pub mod config;
mod inject;
pub mod rng;

pub use config::{parse_plan, FaultKind, FaultPlan, FaultSpec, ParseError};
pub use inject::{
    active, conn_reset, corrupt_bytes, corrupt_field, crash_point, current_plan, init_from_env,
    injected_count, install, latency_spike, note_recovery, queue_stall, recovered_count,
    slow_client, starve_solver,
};
