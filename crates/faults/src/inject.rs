//! The process-global injector and the per-layer injection hooks.
//!
//! Every hook is a no-op costing one relaxed atomic load while no plan
//! is installed, so production binaries can keep the probes compiled
//! in. With a plan active, each hook consults the schedule with a
//! *pure* decision hash — reproducible across runs and thread
//! interleavings — applies the fault, logs a `fault.injected` event
//! through `sfn-obs`, and bumps the `faults.injected` counter.

use crate::config::{FaultKind, FaultPlan};
use crate::rng;
use sfn_obs::Level;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, Once, OnceLock};
use std::time::Duration;

static ACTIVE: AtomicBool = AtomicBool::new(false);
static INJECTED: AtomicU64 = AtomicU64::new(0);
static RECOVERED: AtomicU64 = AtomicU64::new(0);
static ENV_INIT: Once = Once::new();

fn plan_slot() -> &'static Mutex<Option<FaultPlan>> {
    static SLOT: OnceLock<Mutex<Option<FaultPlan>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

fn lock_plan() -> MutexGuard<'static, Option<FaultPlan>> {
    plan_slot().lock().unwrap_or_else(|e| e.into_inner())
}

/// Per-site invocation counters for hooks without a natural step index
/// (artifact reads). Deterministic as long as each site's own call
/// order is deterministic.
fn site_counters() -> &'static Mutex<HashMap<String, u64>> {
    static SLOT: OnceLock<Mutex<HashMap<String, u64>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(HashMap::new()))
}

/// True if a fault plan is installed (the fast-path gate).
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Installs a plan (or, with `None`, disarms injection). Counters and
/// per-site invocation counters are reset so schedules are independent.
pub fn install(plan: Option<FaultPlan>) {
    let mut guard = lock_plan();
    ACTIVE.store(plan.is_some(), Ordering::Relaxed);
    *guard = plan;
    INJECTED.store(0, Ordering::Relaxed);
    RECOVERED.store(0, Ordering::Relaxed);
    site_counters().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// The installed plan, if any (for reporting).
pub fn current_plan() -> Option<FaultPlan> {
    lock_plan().clone()
}

/// Reads `SFN_FAULTS` once and installs the schedule it describes. A
/// malformed value is reported as a warning and ignored — fault
/// injection must never be the thing that crashes the process.
pub fn init_from_env() {
    ENV_INIT.call_once(|| {
        let Ok(raw) = std::env::var("SFN_FAULTS") else { return };
        if raw.trim().is_empty() {
            return;
        }
        match crate::config::parse_plan(&raw) {
            Ok(plan) => {
                let n = plan.specs.len();
                let seed = plan.seed;
                install(Some(plan));
                sfn_obs::event(Level::Info, "fault.armed")
                    .field_u64("seed", seed)
                    .field_u64("specs", n as u64)
                    .emit();
            }
            Err(e) => {
                sfn_obs::event(Level::Warn, "fault.config_invalid")
                    .field_str("error", &e.to_string())
                    .emit();
                // Also tally it as a hardened-boundary rejection so
                // `sfn-trace audit` counts it with the other parsers.
                sfn_obs::event(Level::Warn, "parser.rejected")
                    .field_str("boundary", "sfn_faults")
                    .field_str("error", &e.to_string())
                    .emit();
            }
        }
    });
}

/// Number of injections performed under the current plan.
pub fn injected_count() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// Number of recoveries reported by host layers under the current plan.
pub fn recovered_count() -> u64 {
    RECOVERED.load(Ordering::Relaxed)
}

/// Called by a host layer after it *survived* a fault (rollback
/// completed, cache rebuilt, candidate demoted …).
pub fn note_recovery(site: &str) {
    RECOVERED.fetch_add(1, Ordering::Relaxed);
    sfn_obs::counter_add("faults.recovered", 1);
    sfn_obs::event(Level::Info, "fault.recovered").field_str("site", site).emit();
}

/// The matched firing of one spec: its kind and magnitude.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Firing {
    kind: FaultKind,
    magnitude: f64,
    hash: u64,
}

/// Decides which specs of `kinds` fire for `(site, step)`.
fn firings(kinds: &[FaultKind], site: &str, step: u64) -> Vec<Firing> {
    if !active() {
        return Vec::new();
    }
    let guard = lock_plan();
    let Some(plan) = guard.as_ref() else { return Vec::new() };
    let mut out = Vec::new();
    for (ix, spec) in plan.specs.iter().enumerate() {
        if !kinds.contains(&spec.kind) || !spec.covers(site, step) {
            continue;
        }
        let h = rng::decision_hash(plan.seed, ix, site, step);
        if rng::unit_f64(h) < spec.probability {
            out.push(Firing { kind: spec.kind, magnitude: spec.magnitude, hash: h });
        }
    }
    out
}

fn record_injection(f: &Firing, site: &str, step: u64, detail: u64) {
    INJECTED.fetch_add(1, Ordering::Relaxed);
    sfn_obs::counter_add("faults.injected", 1);
    sfn_obs::event(Level::Warn, "fault.injected")
        .field_str("fault", f.kind.as_str())
        .field_str("site", site)
        .field_u64("step", step)
        .field_f64("mag", f.magnitude)
        .field_u64("detail", detail)
        .emit();
}

/// Poisons `values` with NaN/Inf if an output-corruption spec fires for
/// `(site, step)`. The poisoned fraction is the spec magnitude (at
/// least one value). Returns true when anything was corrupted.
pub fn corrupt_field(site: &str, step: u64, values: &mut [f64]) -> bool {
    if !active() || values.is_empty() {
        return false;
    }
    let mut any = false;
    for f in firings(&[FaultKind::NanOutput, FaultKind::InfOutput], site, step) {
        let n = values.len();
        let count = ((f.magnitude * n as f64).ceil() as usize).clamp(1, n);
        let stride = (n / count).max(1);
        let offset = (f.hash as usize) % stride;
        let poison = if f.kind == FaultKind::NanOutput { f64::NAN } else { f64::INFINITY };
        let mut poisoned = 0u64;
        let mut i = offset;
        while i < n && poisoned < count as u64 {
            values[i] = poison;
            poisoned += 1;
            i += stride;
        }
        record_injection(&f, site, step, poisoned);
        any = true;
    }
    any
}

/// Returns the injected residual-error scale if a solver-starvation
/// spec fires for `(site, step)`: the host solver should report
/// non-convergence and degrade its answer by this factor.
pub fn starve_solver(site: &str, step: u64) -> Option<f64> {
    if !active() {
        return None;
    }
    let f = firings(&[FaultKind::SolverStarvation], site, step).into_iter().next()?;
    record_injection(&f, site, step, 0);
    Some(f.magnitude)
}

/// Returns the extra latency to sleep if a latency-spike spec fires
/// for `(site, step)`. Magnitude is in milliseconds.
pub fn latency_spike(site: &str, step: u64) -> Option<Duration> {
    if !active() {
        return None;
    }
    let f = firings(&[FaultKind::LatencySpike], site, step).into_iter().next()?;
    record_injection(&f, site, step, f.magnitude as u64);
    Some(Duration::from_micros((f.magnitude * 1000.0) as u64))
}

/// Kills the process — SIGKILL, falling back to `abort()` — if a
/// `crash` spec fires for `(site, step)`. This is the crash-recovery
/// harness's injection point: a named boundary (`ckpt/pre_rename`,
/// `runtime/mid_step`, …) where the process dies with no unwinding, no
/// destructors and no flushing beyond what durable layers already did.
/// The injection event is recorded and the trace flushed *first*, so
/// post-mortems see where the run died.
///
/// Returns normally (a no-op) when no spec fires.
pub fn crash_point(site: &str, step: u64) {
    if !active() {
        return;
    }
    let Some(f) = firings(&[FaultKind::Crash], site, step).into_iter().next() else {
        return;
    };
    record_injection(&f, site, step, std::process::id() as u64);
    sfn_obs::flush_trace();
    // A real SIGKILL (not a catchable signal, not an unwind): the
    // closest stand-in for power loss the harness can self-inflict.
    let pid = std::process::id().to_string();
    let _ = std::process::Command::new("kill").args(["-9", &pid]).status();
    // If `kill` is unavailable (or somehow did not land), abort still
    // ends the process without unwinding.
    std::process::abort();
}

/// Serving-path fault: drip-feed pacing for a client's socket bytes.
/// Returns the delay to sleep between chunks when a `slow_client` spec
/// fires for `(site, step)` (magnitude = milliseconds), else `None`.
pub fn slow_client(site: &str, step: u64) -> Option<Duration> {
    if !active() {
        return None;
    }
    let f = firings(&[FaultKind::SlowClient], site, step).into_iter().next()?;
    record_injection(&f, site, step, f.magnitude as u64);
    Some(Duration::from_micros((f.magnitude * 1000.0) as u64))
}

/// Serving-path fault: abrupt connection reset. Returns true when a
/// `conn_reset` spec fires for `(site, step)` — the caller drops the
/// socket without responding.
pub fn conn_reset(site: &str, step: u64) -> bool {
    if !active() {
        return false;
    }
    let Some(f) = firings(&[FaultKind::ConnReset], site, step).into_iter().next() else {
        return false;
    };
    record_injection(&f, site, step, 0);
    true
}

/// Serving-path fault: a wedged queue hand-off. Returns the stall to
/// sleep before dequeuing when a `queue_stall` spec fires for
/// `(site, step)` (magnitude = milliseconds), else `None`.
pub fn queue_stall(site: &str, step: u64) -> Option<Duration> {
    if !active() {
        return None;
    }
    let f = firings(&[FaultKind::QueueStall], site, step).into_iter().next()?;
    record_injection(&f, site, step, f.magnitude as u64);
    Some(Duration::from_micros((f.magnitude * 1000.0) as u64))
}

/// Corrupts a just-read artifact byte buffer if an artifact-corruption
/// spec fires for this site's next invocation: magnitude < 1 flips that
/// fraction of bytes, magnitude ≥ 1 truncates the buffer to half.
/// Returns true when the buffer was damaged.
pub fn corrupt_bytes(site: &str, bytes: &mut Vec<u8>) -> bool {
    if !active() || bytes.is_empty() {
        return false;
    }
    let step = {
        let mut counters = site_counters().lock().unwrap_or_else(|e| e.into_inner());
        let c = counters.entry(site.to_string()).or_insert(0);
        let step = *c;
        *c += 1;
        step
    };
    let Some(f) = firings(&[FaultKind::ArtifactCorruption], site, step).into_iter().next() else {
        return false;
    };
    let detail = if f.magnitude >= 1.0 {
        bytes.truncate(bytes.len() / 2);
        bytes.len() as u64
    } else {
        let n = bytes.len();
        let count = ((f.magnitude * n as f64).ceil() as usize).clamp(1, n);
        let stride = (n / count).max(1);
        let mut i = (f.hash as usize) % stride;
        let mut flipped = 0u64;
        while i < n && flipped < count as u64 {
            bytes[i] ^= 0xFF;
            flipped += 1;
            i += stride;
        }
        flipped
    };
    record_injection(&f, site, step, detail);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FaultSpec;
    use std::sync::{Mutex as TestMutex, MutexGuard as TestGuard};

    // The injector is process-global; tests serialise on this lock.
    fn hold() -> TestGuard<'static, ()> {
        static LOCK: TestMutex<()> = TestMutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn plan_with(spec: FaultSpec) -> FaultPlan {
        FaultPlan::seeded(42).with(spec)
    }

    #[test]
    fn disabled_hooks_do_nothing() {
        let _g = hold();
        install(None);
        let mut values = vec![1.0, 2.0, 3.0];
        assert!(!corrupt_field("any", 0, &mut values));
        assert_eq!(values, vec![1.0, 2.0, 3.0]);
        assert!(starve_solver("any", 0).is_none());
        assert!(latency_spike("any", 0).is_none());
        let mut bytes = vec![1u8, 2, 3];
        assert!(!corrupt_bytes("any", &mut bytes));
        assert_eq!(bytes, vec![1, 2, 3]);
        assert!(slow_client("any", 0).is_none());
        assert!(!conn_reset("any", 0));
        assert!(queue_stall("any", 0).is_none());
        assert_eq!(injected_count(), 0);
    }

    #[test]
    fn serving_path_hooks_fire_under_their_specs() {
        let _g = hold();
        install(Some(
            plan_with(FaultSpec::new(FaultKind::SlowClient))
                .with(FaultSpec::new(FaultKind::ConnReset))
                .with(FaultSpec::new(FaultKind::QueueStall)),
        ));
        let pace = slow_client("serve/conn", 0).expect("slow_client fires at p=1");
        assert_eq!(pace, Duration::from_millis(FaultKind::SlowClient.default_magnitude() as u64));
        assert!(conn_reset("serve/conn", 0));
        let stall = queue_stall("serve/queue", 0).expect("queue_stall fires at p=1");
        assert_eq!(stall, Duration::from_millis(FaultKind::QueueStall.default_magnitude() as u64));
        assert_eq!(injected_count(), 3);

        // A windowed spec stays quiet outside its step window.
        let mut spec = FaultSpec::new(FaultKind::ConnReset);
        spec.start = 10;
        spec.end = Some(11);
        install(Some(plan_with(spec)));
        assert!(!conn_reset("serve/conn", 9));
        assert!(conn_reset("serve/conn", 10));
        assert!(!conn_reset("serve/conn", 11));
        install(None);
    }

    #[test]
    fn nan_corruption_poisons_requested_fraction() {
        let _g = hold();
        let mut spec = FaultSpec::new(FaultKind::NanOutput);
        spec.magnitude = 0.25;
        install(Some(plan_with(spec)));
        let mut values = vec![1.0; 64];
        assert!(corrupt_field("projector/M7", 3, &mut values));
        let nans = values.iter().filter(|v| v.is_nan()).count();
        assert_eq!(nans, 16, "expected ceil(0.25 * 64) poisoned values");
        assert_eq!(injected_count(), 1);
        install(None);
    }

    #[test]
    fn inf_corruption_uses_infinity() {
        let _g = hold();
        let mut spec = FaultSpec::new(FaultKind::InfOutput);
        spec.magnitude = 0.01;
        install(Some(plan_with(spec)));
        let mut values = vec![0.0; 10];
        assert!(corrupt_field("site", 0, &mut values));
        assert!(values.iter().any(|v| v.is_infinite()), "{values:?}");
        assert!(values.iter().all(|v| !v.is_nan()));
        install(None);
    }

    #[test]
    fn window_and_target_gate_injection() {
        let _g = hold();
        let mut spec = FaultSpec::new(FaultKind::NanOutput);
        spec.start = 10;
        spec.end = Some(12);
        spec.target = Some("M7".into());
        install(Some(plan_with(spec)));
        let mut v = vec![1.0; 4];
        assert!(!corrupt_field("projector/M7", 9, &mut v));
        assert!(!corrupt_field("projector/M8", 10, &mut v));
        assert!(corrupt_field("projector/M7", 10, &mut v));
        assert!(!corrupt_field("projector/M7", 12, &mut v));
        install(None);
    }

    #[test]
    fn decisions_are_reproducible_across_installs() {
        let _g = hold();
        let mut spec = FaultSpec::new(FaultKind::SolverStarvation);
        spec.probability = 0.5;
        let fired: Vec<bool> = {
            install(Some(plan_with(spec.clone())));
            (0..64).map(|k| starve_solver("pcg", k).is_some()).collect()
        };
        install(Some(plan_with(spec)));
        let again: Vec<bool> = (0..64).map(|k| starve_solver("pcg", k).is_some()).collect();
        assert_eq!(fired, again);
        // p = 0.5 over 64 draws: both outcomes must appear.
        assert!(fired.iter().any(|&b| b) && fired.iter().any(|&b| !b));
        install(None);
    }

    #[test]
    fn latency_spike_returns_configured_duration() {
        let _g = hold();
        let mut spec = FaultSpec::new(FaultKind::LatencySpike);
        spec.magnitude = 2.5;
        install(Some(plan_with(spec)));
        assert_eq!(latency_spike("nn", 0), Some(Duration::from_micros(2500)));
        install(None);
    }

    #[test]
    fn byte_corruption_flips_and_truncates() {
        let _g = hold();
        let mut flip = FaultSpec::new(FaultKind::ArtifactCorruption);
        flip.magnitude = 0.5;
        install(Some(plan_with(flip)));
        let original = vec![0u8; 16];
        let mut bytes = original.clone();
        assert!(corrupt_bytes("cache", &mut bytes));
        assert_eq!(bytes.len(), 16);
        assert!(bytes.iter().any(|&b| b != 0), "no byte flipped");

        let mut truncate = FaultSpec::new(FaultKind::ArtifactCorruption);
        truncate.magnitude = 1.0;
        install(Some(plan_with(truncate)));
        let mut bytes = original.clone();
        assert!(corrupt_bytes("cache", &mut bytes));
        assert_eq!(bytes.len(), 8, "mag >= 1 truncates to half");
        install(None);
    }

    #[test]
    fn site_counter_advances_per_invocation() {
        let _g = hold();
        let mut spec = FaultSpec::new(FaultKind::ArtifactCorruption);
        spec.start = 1; // skip the first read, corrupt the second
        spec.end = Some(2);
        install(Some(plan_with(spec)));
        let mut first = vec![7u8; 8];
        let mut second = vec![7u8; 8];
        let mut third = vec![7u8; 8];
        assert!(!corrupt_bytes("cache", &mut first));
        assert!(corrupt_bytes("cache", &mut second));
        assert!(!corrupt_bytes("cache", &mut third));
        install(None);
    }

    #[test]
    fn recovery_counter_tracks_notes() {
        let _g = hold();
        install(Some(FaultPlan::seeded(1)));
        assert_eq!(recovered_count(), 0);
        note_recovery("runtime/rollback");
        note_recovery("core/cache");
        assert_eq!(recovered_count(), 2);
        install(None);
    }

    #[test]
    fn install_resets_counters() {
        let _g = hold();
        install(Some(plan_with(FaultSpec::new(FaultKind::NanOutput))));
        let mut v = vec![1.0; 4];
        corrupt_field("s", 0, &mut v);
        assert!(injected_count() > 0);
        install(Some(FaultPlan::seeded(9)));
        assert_eq!(injected_count(), 0);
        assert_eq!(recovered_count(), 0);
        install(None);
    }

    #[test]
    fn probability_zero_never_fires() {
        let _g = hold();
        let mut spec = FaultSpec::new(FaultKind::NanOutput);
        spec.probability = 0.0;
        install(Some(plan_with(spec)));
        let mut v = vec![1.0; 8];
        for step in 0..256 {
            assert!(!corrupt_field("s", step, &mut v));
        }
        install(None);
    }

    #[test]
    fn crash_point_is_a_no_op_when_not_matched() {
        // The positive case (the process actually dying) can only be
        // exercised from a supervisor — see tests/crash_recovery.rs.
        // In-process we can prove the gates: disarmed, wrong site,
        // outside the window — all must return normally.
        let _g = hold();
        install(None);
        crash_point("ckpt/pre_rename", 0);
        let mut spec = FaultSpec::new(FaultKind::Crash);
        spec.start = 10;
        spec.end = Some(11);
        spec.target = Some("ckpt/pre_rename".into());
        install(Some(plan_with(spec)));
        crash_point("ckpt/mid_temp_write", 10); // wrong site
        crash_point("ckpt/pre_rename", 9); // before the window
        crash_point("ckpt/pre_rename", 11); // after the window
        assert_eq!(injected_count(), 0);
        install(None);
    }
}
