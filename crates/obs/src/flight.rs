//! The flight recorder: an always-on ring buffer of the most recent
//! structured events, dumped to a crash report when something dies.
//!
//! `SFN_TRACE_FILE` tracing is opt-in and usually *off* — which is
//! exactly when a post-mortem needs it most. The flight recorder keeps
//! the last [`capacity`] events (`info` severity and above; `debug`/
//! `trace` events are per-operation records too hot for an always-on
//! path) in fixed storage so that a panic, a simulation blow-up or a
//! sanitizer trip can still produce a JSONL crash report of the moments
//! leading up to the failure.
//!
//! Writes are lock-free in the index: a writer claims a slot with one
//! `fetch_add` and only locks that single slot's cell to swap the
//! record in, so concurrent writers never contend unless they collide
//! on the same slot a full lap apart.
//!
//! # Configuration
//!
//! | variable | effect |
//! |---|---|
//! | `SFN_CRASH_FILE` | crash-report path; setting it installs the panic hook |
//! | `SFN_FLIGHT` | `0` disables the recorder entirely |
//!
//! The crash path can also be set programmatically with
//! [`set_crash_file`] / [`install_crash_handler`] (the bench harness
//! does). [`note_incident`] is the non-panic trigger: the simulation's
//! blow-up guard and state sanitizer call it so a survivable corruption
//! still leaves a report behind.

use crate::Level;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, Once, OnceLock};

/// Events retained by the ring buffer.
pub const CAPACITY: usize = 256;

static ENABLED: AtomicBool = AtomicBool::new(true);
static HEAD: AtomicUsize = AtomicUsize::new(0);
static INCIDENTS: AtomicU64 = AtomicU64::new(0);
static HOOK: Once = Once::new();

fn slots() -> &'static [Mutex<Option<String>>; CAPACITY] {
    static SLOTS: OnceLock<[Mutex<Option<String>>; CAPACITY]> = OnceLock::new();
    SLOTS.get_or_init(|| std::array::from_fn(|_| Mutex::new(None)))
}

fn crash_path() -> &'static Mutex<Option<String>> {
    static PATH: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    PATH.get_or_init(|| Mutex::new(None))
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Number of events retained (the ring capacity).
pub fn capacity() -> usize {
    CAPACITY
}

/// True if the recorder is capturing events.
pub fn flight_enabled() -> bool {
    crate::init();
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the recorder on or off (it is on by default; `SFN_FLIGHT=0`
/// disables it from the environment).
pub fn set_flight_enabled(on: bool) {
    crate::init();
    ENABLED.store(on, Ordering::Relaxed);
}

/// True if an event at `level` would be captured — the recorder keeps
/// `info` and above; `debug`/`trace` are too hot for an always-on path.
#[inline]
pub(crate) fn capture_raw(level: Level) -> bool {
    ENABLED.load(Ordering::Relaxed)
        && matches!(level, Level::Error | Level::Warn | Level::Info)
}

/// Stores one already-serialised JSONL record.
pub(crate) fn record(line: String) {
    let i = HEAD.fetch_add(1, Ordering::Relaxed) % CAPACITY;
    *lock(&slots()[i]) = Some(line);
}

/// Incidents reported via [`note_incident`] so far.
pub fn incident_count() -> u64 {
    INCIDENTS.load(Ordering::Relaxed)
}

/// The retained events, oldest first.
pub fn snapshot() -> Vec<String> {
    let head = HEAD.load(Ordering::Relaxed);
    let slots = slots();
    let mut out = Vec::new();
    // With < CAPACITY events recorded the tail slots are still None and
    // are skipped; after wrap-around the scan starts at the oldest slot.
    for k in 0..CAPACITY {
        let i = (head + k) % CAPACITY;
        if let Some(line) = lock(&slots[i]).as_ref() {
            out.push(line.clone());
        }
    }
    out
}

/// Empties the ring (tests and between independent in-process runs).
pub fn clear() {
    for slot in slots() {
        *lock(slot) = None;
    }
    HEAD.store(0, Ordering::Relaxed);
}

/// Renders the crash report: one header record naming the `reason`,
/// then the retained events as JSONL, oldest first.
pub fn crash_report(reason: &str) -> String {
    let events = snapshot();
    let mut out = String::with_capacity(64 + events.iter().map(|l| l.len() + 1).sum::<usize>());
    out.push_str("{\"ts\":");
    crate::json::push_f64(&mut out, crate::uptime());
    out.push_str(",\"kind\":\"crash.report\",\"reason\":\"");
    crate::json::escape_into(&mut out, reason);
    out.push_str("\",\"events\":");
    let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{}", events.len()));
    out.push_str("}\n");
    for line in &events {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Writes the crash report for `reason` to `path`.
pub fn dump_to(path: &str, reason: &str) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(crash_report(reason).as_bytes())?;
    file.flush()
}

/// Sets (or with `None` clears) the crash-report path used by
/// [`note_incident`] and the panic hook.
pub fn set_crash_file(path: Option<&str>) {
    *lock(crash_path()) = path.map(str::to_string);
}

/// The configured crash-report path, if any.
pub fn crash_file() -> Option<String> {
    lock(crash_path()).clone()
}

/// Reports a non-panic incident (blow-up guard, state sanitizer): bumps
/// the `flight.incidents` counter and, when a crash path is configured,
/// writes the report there. Failures to write are warned about, never
/// propagated — the recorder must not be the thing that kills the host.
pub fn note_incident(reason: &str) {
    INCIDENTS.fetch_add(1, Ordering::Relaxed);
    crate::counter_add("flight.incidents", 1);
    let Some(path) = crash_file() else { return };
    if let Err(e) = dump_to(&path, reason) {
        eprintln!("[sfn warn] cannot write crash report {path:?}: {e}");
    }
}

/// Installs a panic hook that writes the flight-recorder crash report
/// before the default hook runs. The report path is the configured
/// crash file (see [`set_crash_file`] / `SFN_CRASH_FILE`), defaulting
/// to `sfn_crash_report.jsonl`. Idempotent.
pub fn install_crash_handler() {
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let reason = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .map(str::to_string)
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic".to_string());
            let path = crash_file().unwrap_or_else(|| "sfn_crash_report.jsonl".to_string());
            if let Err(e) = dump_to(&path, &format!("panic: {reason}")) {
                eprintln!("[sfn warn] cannot write crash report {path:?}: {e}");
            } else {
                eprintln!("[sfn error] crash report written to {path}");
            }
            previous(info);
        }));
    });
}

pub(crate) fn init_from_env() {
    if std::env::var("SFN_FLIGHT").map(|v| v == "0").unwrap_or(false) {
        ENABLED.store(false, Ordering::Relaxed);
    }
    if let Ok(path) = std::env::var("SFN_CRASH_FILE") {
        if !path.is_empty() {
            set_crash_file(Some(&path));
            install_crash_handler();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn ring_keeps_the_last_capacity_events_in_order() {
        let _guard = test_lock::hold();
        clear();
        for i in 0..CAPACITY + 10 {
            record(format!("{{\"n\":{i}}}"));
        }
        let snap = snapshot();
        assert_eq!(snap.len(), CAPACITY);
        assert_eq!(snap.first().unwrap(), &format!("{{\"n\":{}}}", 10));
        assert_eq!(snap.last().unwrap(), &format!("{{\"n\":{}}}", CAPACITY + 9));
        clear();
        assert!(snapshot().is_empty());
    }

    #[test]
    fn partial_fill_preserves_order_without_gaps() {
        let _guard = test_lock::hold();
        clear();
        for i in 0..5 {
            record(format!("{{\"n\":{i}}}"));
        }
        let snap = snapshot();
        assert_eq!(snap.len(), 5);
        assert_eq!(snap[0], "{\"n\":0}");
        assert_eq!(snap[4], "{\"n\":4}");
        clear();
    }

    #[test]
    fn events_feed_the_recorder_at_info_and_above() {
        let _guard = test_lock::hold();
        clear();
        set_flight_enabled(true);
        crate::event(Level::Info, "test.flight.info").field_u64("x", 1).emit();
        crate::event(Level::Warn, "test.flight.warn").emit();
        crate::event(Level::Trace, "test.flight.trace").emit();
        let snap = snapshot().join("\n");
        assert!(snap.contains("test.flight.info"), "{snap}");
        assert!(snap.contains("\"x\":1"), "{snap}");
        assert!(snap.contains("test.flight.warn"), "{snap}");
        assert!(!snap.contains("test.flight.trace"), "{snap}");
        clear();
    }

    #[test]
    fn disabled_recorder_captures_nothing() {
        let _guard = test_lock::hold();
        clear();
        set_flight_enabled(false);
        crate::event(Level::Error, "test.flight.disabled").emit();
        assert!(!snapshot().iter().any(|l| l.contains("test.flight.disabled")));
        set_flight_enabled(true);
        clear();
    }

    #[test]
    fn crash_report_carries_header_and_events() {
        let _guard = test_lock::hold();
        clear();
        set_flight_enabled(true);
        crate::event(Level::Error, "test.flight.blowup").field_f64("div_norm", f64::NAN).emit();
        let report = crash_report("sim.blowup");
        let mut lines = report.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("\"kind\":\"crash.report\""), "{header}");
        assert!(header.contains("\"reason\":\"sim.blowup\""), "{header}");
        assert!(header.contains("\"events\":1"), "{header}");
        assert!(lines.next().unwrap().contains("test.flight.blowup"));
        // Every line of the report is parseable JSON.
        for line in report.lines() {
            assert!(crate::json::parse(line).is_ok(), "unparseable: {line}");
        }
        clear();
    }

    #[test]
    fn note_incident_writes_the_configured_file() {
        let _guard = test_lock::hold();
        clear();
        set_flight_enabled(true);
        crate::event(Level::Warn, "test.flight.incident_context").emit();
        let path = std::env::temp_dir().join("sfn_obs_flight_incident_test.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        set_crash_file(Some(&path_str));
        let before = incident_count();
        note_incident("sanitizer");
        assert_eq!(incident_count(), before + 1);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"reason\":\"sanitizer\""), "{text}");
        assert!(text.contains("test.flight.incident_context"), "{text}");
        set_crash_file(None);
        let _ = std::fs::remove_file(&path);
        clear();
    }

    #[test]
    fn par_workers_hammering_the_ring_leave_no_torn_records() {
        let _guard = test_lock::hold();
        clear();
        set_flight_enabled(true);
        // Force real sfn-par worker threads even on a 1-core runner.
        std::env::set_var("SFN_THREADS", "8");
        let writes = 3 * CAPACITY;
        let _ = sfn_par::map_range(writes, |i| {
            crate::event(Level::Info, "test.flight.par")
                .field_u64("w", i as u64)
                .emit();
        });
        std::env::remove_var("SFN_THREADS");
        let report = crash_report("par-hammer");
        let mut events = 0;
        let mut seen = std::collections::BTreeSet::new();
        for (n, line) in report.lines().enumerate() {
            // Untorn: every retained record is complete, parseable JSON
            // with the exact fields one writer produced.
            let v = crate::json::parse(line).unwrap_or_else(|e| panic!("torn record {line:?}: {e:?}"));
            if n == 0 {
                continue; // crash.report header
            }
            events += 1;
            assert_eq!(v.get("kind").and_then(crate::json::Value::as_str), Some("test.flight.par"), "{line}");
            let w = v.get("w").and_then(crate::json::Value::as_u64).expect("w field intact");
            assert!((w as usize) < writes, "{line}");
            assert!(seen.insert(w), "record {w} retained twice");
        }
        // Full: with 3×CAPACITY writes the ring holds exactly CAPACITY
        // distinct records — concurrent claims never dropped a slot.
        assert_eq!(events, CAPACITY);
        clear();
    }

    #[test]
    fn concurrent_records_never_lose_the_ring_shape() {
        let _guard = test_lock::hold();
        clear();
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for i in 0..200 {
                        record(format!("{{\"t\":{t},\"i\":{i}}}"));
                    }
                });
            }
        });
        let snap = snapshot();
        assert_eq!(snap.len(), CAPACITY);
        assert!(snap.iter().all(|l| crate::json::parse(l).is_ok()));
        clear();
    }
}
