//! The global per-stage time table and the end-of-run report — the
//! observable analogue of the paper's Table 3 time distribution.

use crate::metrics;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Aggregate timing for one stage path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Number of recorded scopes.
    pub calls: u64,
    /// Summed elapsed time.
    pub total: Duration,
    /// Fastest single scope.
    pub min: Duration,
    /// Slowest single scope.
    pub max: Duration,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn stages() -> &'static Mutex<BTreeMap<String, StageStats>> {
    static MAP: OnceLock<Mutex<BTreeMap<String, StageStats>>> = OnceLock::new();
    MAP.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Prefix of the per-stage latency histograms fed by [`record_stage`]
/// (`stage.<path>`, samples in seconds).
pub const STAGE_HISTOGRAM_PREFIX: &str = "stage.";

pub(crate) fn record_stage(path: &str, elapsed: Duration) {
    // Per-stage latency distribution, alongside the scalar aggregates:
    // the percentile source for `run_all_summary.json` and the
    // `stage.summary` trace events.
    metrics::histogram(&format!("{STAGE_HISTOGRAM_PREFIX}{path}"))
        .record(elapsed.as_secs_f64());
    let mut map = lock(stages());
    match map.get_mut(path) {
        Some(s) => {
            s.calls += 1;
            s.total += elapsed;
            s.min = s.min.min(elapsed);
            s.max = s.max.max(elapsed);
        }
        None => {
            map.insert(
                path.to_string(),
                StageStats {
                    calls: 1,
                    total: elapsed,
                    min: elapsed,
                    max: elapsed,
                },
            );
        }
    }
}

/// All recorded stages, sorted by path.
pub fn stage_snapshot() -> Vec<(String, StageStats)> {
    lock(stages())
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// Latency percentile snapshots for every recorded stage, sorted by
/// path (seconds; the `stage.` histogram prefix is stripped).
pub fn stage_percentiles() -> Vec<(String, crate::HistogramSnapshot)> {
    metrics::histograms_snapshot()
        .into_iter()
        .filter_map(|(name, snap)| {
            name.strip_prefix(STAGE_HISTOGRAM_PREFIX)
                .map(|stage| (stage.to_string(), snap))
        })
        .collect()
}

/// Clears every stage aggregate, counter and histogram (tests and
/// repeated in-process runs).
pub fn reset() {
    lock(stages()).clear();
    metrics::reset_metrics();
}

/// Renders the end-of-run report: the per-stage time table plus counter
/// and histogram summaries.
///
/// `share` is each stage's fraction of the summed *root* stage time
/// (stages with no recorded parent). Nested spans also appear inside
/// their parents' totals, so shares are a guide, not a partition.
pub fn render_report() -> String {
    let stages = stage_snapshot();
    let mut out = String::new();
    out.push_str("== sfn-obs run report ==\n");
    if stages.is_empty() {
        out.push_str("(no stages recorded — set SFN_LOG=info, SFN_METRICS=1 or SFN_TRACE_FILE)\n");
    } else {
        let is_root = |name: &str| {
            !stages
                .iter()
                .any(|(p, _)| name != p && name.starts_with(p.as_str()) && name.as_bytes()[p.len()] == b'/')
        };
        let grand: f64 = stages
            .iter()
            .filter(|(n, _)| is_root(n))
            .map(|(_, s)| s.total.as_secs_f64())
            .sum();
        let _ = writeln!(
            out,
            "{:<34} {:>9} {:>12} {:>11} {:>8}",
            "stage", "calls", "total(s)", "mean(ms)", "share"
        );
        for (name, s) in &stages {
            let total = s.total.as_secs_f64();
            let mean_ms = if s.calls > 0 {
                1e3 * total / s.calls as f64
            } else {
                0.0
            };
            let share = if grand > 0.0 { 100.0 * total / grand } else { 0.0 };
            let _ = writeln!(
                out,
                "{:<34} {:>9} {:>12.4} {:>11.4} {:>7.1}%",
                name, s.calls, total, mean_ms, share
            );
        }
    }
    let counters = metrics::counters_snapshot();
    if !counters.is_empty() {
        out.push_str("-- counters --\n");
        for (name, v) in counters {
            let _ = writeln!(out, "{name:<34} {v:>12}");
        }
    }
    let hists = metrics::histograms_snapshot();
    if !hists.is_empty() {
        out.push_str("-- histograms --\n");
        for (name, h) in hists {
            let _ = writeln!(
                out,
                "{:<34} n={} mean={:.4e} min={:.4e} max={:.4e} ~p50={:.4e} ~p95={:.4e} ~p99={:.4e}",
                name,
                h.count,
                h.mean(),
                h.min,
                h.max,
                h.p50,
                h.p95,
                h.p99
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn report_lists_stages_counters_histograms() {
        let _guard = test_lock::hold();
        crate::reset();
        crate::enable_metrics(true);
        record_stage("test_report_stage", Duration::from_millis(10));
        record_stage("test_report_stage", Duration::from_millis(30));
        record_stage("test_report_stage/child", Duration::from_millis(5));
        crate::counter_add("test.report.counter", 7);
        crate::histogram_record("test.report.hist", 0.5);
        let report = render_report();
        assert!(report.contains("test_report_stage"), "{report}");
        assert!(report.contains("test_report_stage/child"), "{report}");
        assert!(report.contains("test.report.counter"), "{report}");
        assert!(report.contains("test.report.hist"), "{report}");
        // Two calls, 40ms total -> 20ms mean.
        let line = report
            .lines()
            .find(|l| l.starts_with("test_report_stage "))
            .unwrap();
        assert!(line.contains("2"), "{line}");
        crate::enable_metrics(false);
        crate::reset();
        assert!(crate::stage_snapshot().is_empty());
    }

    #[test]
    fn empty_report_renders_hint() {
        let _guard = test_lock::hold();
        crate::reset();
        let report = render_report();
        assert!(report.contains("no stages recorded"), "{report}");
    }
}
