//! Structured events: one JSONL record per event in the trace file
//! (`SFN_TRACE_FILE`), plus a human-readable stderr line at or above
//! the `SFN_LOG` verbosity.
//!
//! Schema of a trace line:
//!
//! ```json
//! {"ts":12.345,"level":"info","kind":"scheduler.decision","step":20,...}
//! ```
//!
//! `ts` is seconds since process start (monotonic), `level` the
//! severity, `kind` a dotted event name; all further keys are
//! event-specific fields.

use crate::{flight, json, Level};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

static TRACING: AtomicBool = AtomicBool::new(false);

type Sink = Option<Box<dyn Write + Send>>;

fn sink() -> &'static Mutex<Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

fn lock_sink() -> MutexGuard<'static, Sink> {
    sink().lock().unwrap_or_else(|e| e.into_inner())
}

/// True if a JSONL trace sink is installed.
pub fn tracing_enabled() -> bool {
    crate::init();
    tracing_enabled_raw()
}

pub(crate) fn tracing_enabled_raw() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Opens (creating/truncating) `path` as the JSONL trace sink.
pub fn set_trace_file(path: &str) -> std::io::Result<()> {
    let file = File::create(path)?;
    set_trace_writer(Some(Box::new(BufWriter::new(file))));
    Ok(())
}

/// Installs (or with `None` removes) the trace sink. Tests inject an
/// in-memory writer here.
pub fn set_trace_writer(writer: Sink) {
    let mut guard = lock_sink();
    // Flush whatever sink is being replaced so no records are lost.
    if let Some(old) = guard.as_mut() {
        let _ = old.flush();
    }
    TRACING.store(writer.is_some(), Ordering::Relaxed);
    *guard = writer;
}

/// Flushes the trace sink (buffered file writers only write on flush or
/// when their buffer fills).
pub fn flush_trace() {
    if let Some(w) = lock_sink().as_mut() {
        let _ = w.flush();
    }
}

fn write_trace_line(line: &str) {
    if let Some(w) = lock_sink().as_mut() {
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
    }
}

// ------------------------------------------------------------ observers
//
// A fanout of in-process sinks receiving every finished event JSON
// line (in addition to the trace file / flight recorder). sfn-metrics
// bridges events into live series through this hook, which is why
// installing an observer makes `event_enabled` true at every level:
// call sites that gate payload construction on it must keep firing
// when only an observer is listening.

static OBSERVING: AtomicBool = AtomicBool::new(false);

type Observer = Box<dyn Fn(&str) + Send + Sync>;

fn observers() -> &'static Mutex<Vec<Observer>> {
    static OBSERVERS: OnceLock<Mutex<Vec<Observer>>> = OnceLock::new();
    OBSERVERS.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock_observers() -> MutexGuard<'static, Vec<Observer>> {
    observers().lock().unwrap_or_else(|e| e.into_inner())
}

/// True if at least one in-process event observer is installed.
pub fn observing() -> bool {
    crate::init();
    observing_raw()
}

pub(crate) fn observing_raw() -> bool {
    OBSERVING.load(Ordering::Relaxed)
}

/// Installs an in-process fanout observer; `f` is called with every
/// finished event JSON line (same schema as the trace file, without
/// the trailing newline). Observers run on the emitting thread and
/// must be fast and must never emit events themselves (re-entry would
/// recurse) or block on locks held across event emission.
pub fn add_event_observer(f: Box<dyn Fn(&str) + Send + Sync>) {
    crate::init();
    let mut obs = lock_observers();
    obs.push(f);
    OBSERVING.store(true, Ordering::Relaxed);
}

/// Removes every installed observer (tests, shutdown).
pub fn clear_event_observers() {
    let mut obs = lock_observers();
    obs.clear();
    OBSERVING.store(false, Ordering::Relaxed);
}

fn notify_observers(line: &str) {
    for f in lock_observers().iter() {
        f(line);
    }
}

/// Builder for one structured event; construct via [`event`]. When
/// neither the trace sink, the flight recorder, nor the stderr logger
/// would take the event, every method is a no-op on an empty builder
/// (no allocation).
#[must_use = "call .emit() to record the event"]
pub struct EventBuilder {
    json: Option<String>,
    text: Option<String>,
    to_trace: bool,
    to_flight: bool,
    to_obs: bool,
}

/// Starts an event of `kind` at `level`.
///
/// ```
/// use sfn_obs::Level;
/// sfn_obs::event(Level::Info, "scheduler.decision")
///     .field_u64("step", 20)
///     .field_f64("predicted_loss", 0.012)
///     .field_str("action", "keep")
///     .emit();
/// ```
pub fn event(level: Level, kind: &str) -> EventBuilder {
    crate::init();
    let to_trace = tracing_enabled_raw() && level != Level::Off;
    let to_flight = flight::capture_raw(level);
    let to_obs = observing_raw() && level != Level::Off;
    let to_log = crate::log_enabled_raw(level);
    let json = (to_trace || to_flight || to_obs).then(|| {
        let mut s = String::with_capacity(160);
        s.push_str("{\"ts\":");
        json::push_f64(&mut s, crate::uptime());
        s.push_str(",\"level\":\"");
        s.push_str(level.as_str());
        s.push_str("\",\"kind\":\"");
        json::escape_into(&mut s, kind);
        s.push('"');
        s
    });
    let text = to_log.then(|| format!("[sfn {}] {}", level.as_str(), kind));
    EventBuilder { json, text, to_trace, to_flight, to_obs }
}

impl EventBuilder {
    fn key(&mut self, key: &str) {
        if let Some(j) = self.json.as_mut() {
            j.push_str(",\"");
            json::escape_into(j, key);
            j.push_str("\":");
        }
    }

    /// Adds a float field (`null` in JSON if non-finite).
    pub fn field_f64(mut self, key: &str, v: f64) -> Self {
        self.key(key);
        if let Some(j) = self.json.as_mut() {
            json::push_f64(j, v);
        }
        if let Some(t) = self.text.as_mut() {
            let _ = write!(t, " {key}={v}");
        }
        self
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(mut self, key: &str, v: u64) -> Self {
        self.key(key);
        if let Some(j) = self.json.as_mut() {
            let _ = write!(j, "{v}");
        }
        if let Some(t) = self.text.as_mut() {
            let _ = write!(t, " {key}={v}");
        }
        self
    }

    /// Adds a signed integer field.
    pub fn field_i64(mut self, key: &str, v: i64) -> Self {
        self.key(key);
        if let Some(j) = self.json.as_mut() {
            let _ = write!(j, "{v}");
        }
        if let Some(t) = self.text.as_mut() {
            let _ = write!(t, " {key}={v}");
        }
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(mut self, key: &str, v: bool) -> Self {
        self.key(key);
        if let Some(j) = self.json.as_mut() {
            j.push_str(if v { "true" } else { "false" });
        }
        if let Some(t) = self.text.as_mut() {
            let _ = write!(t, " {key}={v}");
        }
        self
    }

    /// Adds a string field.
    pub fn field_str(mut self, key: &str, v: &str) -> Self {
        self.key(key);
        if let Some(j) = self.json.as_mut() {
            j.push('"');
            json::escape_into(j, v);
            j.push('"');
        }
        if let Some(t) = self.text.as_mut() {
            let _ = write!(t, " {key}={v}");
        }
        self
    }

    /// Writes the event to the active outputs.
    pub fn emit(self) {
        if let Some(mut j) = self.json {
            j.push('}');
            if self.to_trace {
                write_trace_line(&j);
            }
            if self.to_obs {
                notify_observers(&j);
            }
            if self.to_flight {
                flight::record(j);
            }
        }
        if let Some(t) = self.text {
            eprintln!("{t}");
        }
    }
}

/// Logs a plain message at `level` (stderr + trace sink + flight
/// recorder).
pub fn log(level: Level, msg: &str) {
    crate::init();
    if crate::log_enabled_raw(level) {
        eprintln!("[sfn {}] {msg}", level.as_str());
    }
    let to_trace = tracing_enabled_raw() && level != Level::Off;
    let to_flight = flight::capture_raw(level);
    let to_obs = observing_raw() && level != Level::Off;
    if to_trace || to_flight || to_obs {
        let mut s = String::with_capacity(96);
        s.push_str("{\"ts\":");
        json::push_f64(&mut s, crate::uptime());
        s.push_str(",\"level\":\"");
        s.push_str(level.as_str());
        s.push_str("\",\"kind\":\"log\",\"msg\":\"");
        json::escape_into(&mut s, msg);
        s.push_str("\"}");
        if to_trace {
            write_trace_line(&s);
        }
        if to_obs {
            notify_observers(&s);
        }
        if to_flight {
            flight::record(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;
    use std::sync::Arc;

    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn new() -> Self {
            Self(Arc::new(Mutex::new(Vec::new())))
        }

        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_write_jsonl_records() {
        let _guard = test_lock::hold();
        let buf = SharedBuf::new();
        set_trace_writer(Some(Box::new(buf.clone())));
        event(Level::Info, "test.event")
            .field_u64("step", 20)
            .field_f64("predicted_loss", 0.0125)
            .field_f64("bad", f64::NAN)
            .field_bool("unhealthy", false)
            .field_str("action", "switch \"up\"")
            .emit();
        log(Level::Trace, "hello trace");
        flush_trace();
        set_trace_writer(None);

        let text = buf.contents();
        let line = text
            .lines()
            .find(|l| l.contains("\"kind\":\"test.event\""))
            .expect("event line present");
        assert!(line.starts_with("{\"ts\":"), "{line}");
        assert!(line.ends_with('}'), "{line}");
        assert!(line.contains("\"level\":\"info\""), "{line}");
        assert!(line.contains("\"step\":20"), "{line}");
        assert!(line.contains("\"predicted_loss\":0.0125"), "{line}");
        assert!(line.contains("\"bad\":null"), "{line}");
        assert!(line.contains("\"unhealthy\":false"), "{line}");
        assert!(line.contains("\"action\":\"switch \\\"up\\\"\""), "{line}");
        assert!(
            text.lines().any(|l| l.contains("\"kind\":\"log\"") && l.contains("hello trace")),
            "{text}"
        );
    }

    #[test]
    fn disabled_events_build_nothing() {
        let _guard = test_lock::hold();
        set_trace_writer(None);
        // Well below the default warn threshold.
        let b = event(Level::Trace, "test.invisible").field_u64("x", 1);
        assert!(b.json.is_none() && b.text.is_none());
        b.emit();
    }

    #[test]
    fn observers_receive_every_event_line() {
        let _guard = test_lock::hold();
        set_trace_writer(None);
        let seen = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink = seen.clone();
        add_event_observer(Box::new(move |line| {
            sink.lock().unwrap().push(line.to_string());
        }));
        // With only an observer installed, even Trace-level events must
        // be built and fanned out (the pre-flight check agrees).
        assert!(crate::event_enabled(Level::Trace));
        event(Level::Trace, "test.observer").field_u64("x", 7).emit();
        log(Level::Error, "observed log line");
        clear_event_observers();
        assert!(!observing());
        // After clearing, emissions no longer reach the old observer.
        event(Level::Error, "test.unobserved").emit();

        let lines = seen.lock().unwrap().clone();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("\"kind\":\"test.observer\"") && lines[0].contains("\"x\":7"));
        assert!(lines[1].contains("\"kind\":\"log\"") && lines[1].contains("observed log line"));
    }

    #[test]
    fn tracing_flag_follows_writer() {
        let _guard = test_lock::hold();
        assert!(!tracing_enabled());
        set_trace_writer(Some(Box::new(SharedBuf::new())));
        assert!(tracing_enabled());
        set_trace_writer(None);
        assert!(!tracing_enabled());
    }
}
