//! RAII timing scopes.
//!
//! [`SpanGuard`] (via the [`crate::span!`] macro) builds hierarchical
//! stage paths from a per-thread stack: a span named `"projection"`
//! opened inside a span named `"step"` aggregates under
//! `"step/projection"`. [`ScopedTimer`] is the flat variant that also
//! returns the measured [`Duration`] — the shared replacement for the
//! ad-hoc `Instant::now()` pairs that used to live in the scheduler and
//! the projectors.

use crate::report;
use std::cell::RefCell;
use std::time::{Duration, Instant};

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Opens a hierarchical timing span; the guard records the elapsed time
/// under the span's `/`-joined path when dropped.
///
/// ```
/// let _span = sfn_obs::span!("step/projection");
/// // ... timed work ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
}

/// RAII guard for one hierarchical timing span. When metrics are
/// disabled this is a no-op carrying no timestamp.
pub struct SpanGuard {
    start: Option<Instant>,
}

impl SpanGuard {
    /// Enters a span named `name` (prefer the [`crate::span!`] macro).
    #[inline]
    pub fn enter(name: &'static str) -> Self {
        if !crate::metrics_enabled() {
            return Self { start: None };
        }
        STACK.with(|s| s.borrow_mut().push(name));
        Self {
            start: Some(Instant::now()),
        }
    }
}

/// The `/`-joined path of the calling thread's open spans (empty when
/// none are open, e.g. with metrics disabled). `sfn-prof` stamps this
/// onto per-invocation kernel records so `sfn-trace flame` can rebuild
/// the call tree.
pub fn current_path() -> String {
    STACK.with(|s| s.borrow().join("/"))
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed();
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        report::record_stage(&path, elapsed);
    }
}

/// A scoped timer that always measures (callers need the duration for
/// their own bookkeeping, e.g. `ProjectionOutcome::wall_time`) and
/// additionally aggregates into the stage table when metrics are
/// enabled.
///
/// [`ScopedTimer::stop`] consumes the timer and returns the elapsed
/// time; a timer dropped without `stop` still records its stage.
pub struct ScopedTimer {
    name: &'static str,
    start: Instant,
    armed: bool,
}

impl ScopedTimer {
    /// Starts timing stage `name`.
    #[inline]
    pub fn start(name: &'static str) -> Self {
        Self {
            name,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Elapsed time so far, without stopping.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Stops the timer, records the stage, and returns the elapsed
    /// time.
    pub fn stop(mut self) -> Duration {
        self.armed = false;
        let elapsed = self.start.elapsed();
        if crate::metrics_enabled() {
            report::record_stage(self.name, elapsed);
        }
        elapsed
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        if self.armed && crate::metrics_enabled() {
            report::record_stage(self.name, self.start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn nested_spans_build_hierarchical_paths() {
        let _guard = test_lock::hold();
        crate::reset();
        crate::enable_metrics(true);
        {
            let _outer = crate::span!("test_span_outer");
            let _inner = crate::span!("inner");
            std::thread::sleep(Duration::from_millis(1));
        }
        let stages = crate::stage_snapshot();
        let names: Vec<&str> = stages.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"test_span_outer"), "stages: {names:?}");
        assert!(
            names.contains(&"test_span_outer/inner"),
            "stages: {names:?}"
        );
        let outer = stages
            .iter()
            .find(|(n, _)| n == "test_span_outer")
            .unwrap();
        assert_eq!(outer.1.calls, 1);
        assert!(outer.1.total >= Duration::from_millis(1));
        crate::enable_metrics(false);
        crate::reset();
    }

    #[test]
    fn scoped_timer_returns_elapsed_and_records() {
        let _guard = test_lock::hold();
        crate::reset();
        crate::enable_metrics(true);
        let t = ScopedTimer::start("test_span_timer");
        std::thread::sleep(Duration::from_millis(1));
        let d = t.stop();
        assert!(d >= Duration::from_millis(1));
        let stages = crate::stage_snapshot();
        assert!(stages.iter().any(|(n, s)| n == "test_span_timer" && s.calls == 1));
        crate::enable_metrics(false);
        crate::reset();
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = test_lock::hold();
        crate::reset();
        crate::enable_metrics(false);
        {
            let _s = crate::span!("test_span_disabled");
        }
        let t = ScopedTimer::start("test_span_timer_disabled");
        let d = t.stop();
        assert!(d >= Duration::ZERO);
        assert!(crate::stage_snapshot().is_empty());
    }

    #[test]
    fn spans_aggregate_across_threads() {
        let _guard = test_lock::hold();
        crate::reset();
        crate::enable_metrics(true);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let _span = crate::span!("test_span_mt");
                    }
                });
            }
        });
        let stages = crate::stage_snapshot();
        let (_, stats) = stages
            .iter()
            .find(|(n, _)| n == "test_span_mt")
            .expect("stage recorded");
        assert_eq!(stats.calls, 200);
        crate::enable_metrics(false);
        crate::reset();
    }
}
