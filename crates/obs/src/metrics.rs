//! Lock-free counters and histograms with a global named registry.
//!
//! The hot-path contract: when metrics are disabled,
//! [`counter_add`] / [`histogram_record`] cost one relaxed atomic load.
//! When enabled, the registry lookup takes a short mutex critical
//! section (callers on truly hot loops can intern a handle once with
//! [`counter`] / [`histogram`] and update it lock-free thereafter).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of log2 buckets in a [`Histogram`] (and in the bucket array
/// carried by every [`HistogramSnapshot`]).
pub const BUCKETS: usize = 64;

/// A lock-free histogram over f64 samples with power-of-two buckets
/// (bucket 0 collects values ≤ 0; bucket `i ≥ 1` collects
/// `[2^(i−33), 2^(i−32))`, covering ~1e-10 … ~2e9).
pub struct Histogram {
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// Bucket index of sample `v` (bucket 0 for `v ≤ 0`, else the clamped
/// power-of-two bucket). Public so downstream aggregators (sfn-metrics
/// window rings) bucket with identical math.
pub fn bucket_index(v: f64) -> usize {
    if v <= 0.0 {
        return 0;
    }
    let e = v.log2().floor() as i64;
    (e + 33).clamp(1, BUCKETS as i64 - 1) as usize
}

/// Lower bound of bucket `i ≥ 1` (used for quantile estimates).
pub fn bucket_floor(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        (i as f64 - 33.0).exp2()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }

    /// Records one sample. Non-finite samples count towards `count`
    /// only (they carry no magnitude information).
    pub fn record(&self, v: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        if !v.is_finite() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
        let _ = self
            .min_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (v < f64::from_bits(bits)).then(|| v.to_bits())
            });
        let _ = self
            .max_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (v > f64::from_bits(bits)).then(|| v.to_bits())
            });
    }

    /// A point-in-time summary.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let sum = f64::from_bits(self.sum_bits.load(Ordering::Relaxed));
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        snapshot_from(count, sum, min, max, &counts)
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0, Ordering::Relaxed);
        self.min_bits.store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Builds the summary from raw aggregates. All count arithmetic
/// saturates: bucket tallies near `u64::MAX` (a counter left running
/// for months, or a wrapped test fixture) must degrade percentile
/// resolution, never overflow.
fn snapshot_from(count: u64, sum: f64, min: f64, max: f64, counts: &[u64]) -> HistogramSnapshot {
    let finite = counts.iter().fold(0u64, |acc, &c| acc.saturating_add(c));
    let quantile = |q: f64| -> f64 {
        if finite == 0 {
            return f64::NAN;
        }
        // f64-to-u64 casts saturate, so a huge `finite` cannot wrap the
        // target either.
        let target = ((q * finite as f64).ceil().max(1.0) as u64).min(finite);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= target {
                return bucket_floor(i);
            }
        }
        max
    };
    let mut buckets = [0u64; BUCKETS];
    for (dst, &src) in buckets.iter_mut().zip(counts) {
        *dst = src;
    }
    HistogramSnapshot {
        count,
        sum,
        min: if finite == 0 { f64::NAN } else { min },
        max: if finite == 0 { f64::NAN } else { max },
        p50: quantile(0.50),
        p90: quantile(0.90),
        p95: quantile(0.95),
        p99: quantile(0.99),
        buckets,
    }
}

/// Summary of a [`Histogram`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded (including non-finite ones).
    pub count: u64,
    /// Sum of finite samples.
    pub sum: f64,
    /// Smallest finite sample (NaN when empty).
    pub min: f64,
    /// Largest finite sample (NaN when empty).
    pub max: f64,
    /// Median estimate at bucket resolution (a power-of-two lower
    /// bound, so within 2× of the true median).
    pub p50: f64,
    /// 90th-percentile estimate at bucket resolution.
    pub p90: f64,
    /// 95th-percentile estimate at bucket resolution.
    pub p95: f64,
    /// 99th-percentile estimate at bucket resolution.
    pub p99: f64,
    /// Raw per-bucket tallies of the finite samples ([`bucket_index`]
    /// layout) — what [`HistogramSnapshot::merge`] and downstream
    /// window rings operate on.
    pub buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// A snapshot of an empty histogram (NaN min/max/percentiles).
    pub fn empty() -> Self {
        snapshot_from(0, 0.0, f64::NAN, f64::NAN, &[])
    }

    /// Builds a snapshot from raw aggregates, recomputing the
    /// percentile estimates from `buckets`. The constructor downstream
    /// delta/window code uses after bucket arithmetic.
    pub fn from_parts(count: u64, sum: f64, min: f64, max: f64, buckets: &[u64; BUCKETS]) -> Self {
        snapshot_from(count, sum, min, max, buckets)
    }

    /// Mean of the finite samples (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Merges two snapshots into the summary of their combined samples:
    /// counts and bucket tallies add (saturating — two near-overflow
    /// halves must degrade resolution, never wrap), sums add, min/max
    /// combine NaN-safely, and the percentile estimates are recomputed
    /// from the merged buckets. The building block of sliding-window
    /// rings: a window is the merge of its per-slot snapshots.
    pub fn merge(&self, other: &Self) -> Self {
        let mut buckets = self.buckets;
        for (dst, &src) in buckets.iter_mut().zip(&other.buckets) {
            *dst = dst.saturating_add(src);
        }
        // NaN-safe: an empty side contributes nothing to min/max.
        let min = match (self.min.is_nan(), other.min.is_nan()) {
            (true, _) => other.min,
            (_, true) => self.min,
            _ => self.min.min(other.min),
        };
        let max = match (self.max.is_nan(), other.max.is_nan()) {
            (true, _) => other.max,
            (_, true) => self.max,
            _ => self.max.max(other.max),
        };
        snapshot_from(
            self.count.saturating_add(other.count),
            self.sum + other.sum,
            min,
            max,
            &buckets,
        )
    }
}

fn counters() -> &'static Mutex<BTreeMap<String, &'static Counter>> {
    static MAP: OnceLock<Mutex<BTreeMap<String, &'static Counter>>> = OnceLock::new();
    MAP.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn histograms() -> &'static Mutex<BTreeMap<String, &'static Histogram>> {
    static MAP: OnceLock<Mutex<BTreeMap<String, &'static Histogram>>> = OnceLock::new();
    MAP.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Interns and returns the counter `name`. The returned handle updates
/// lock-free, so hot loops should call this once and reuse it.
pub fn counter(name: &str) -> &'static Counter {
    let mut map = lock(counters());
    if let Some(c) = map.get(name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::new(Counter::new()));
    map.insert(name.to_string(), c);
    c
}

/// Adds `v` to counter `name` when metrics are enabled (single atomic
/// load otherwise).
#[inline]
pub fn counter_add(name: &str, v: u64) {
    if crate::metrics_enabled() {
        counter(name).add(v);
    }
}

/// Current value of counter `name` (0 if it was never touched).
pub fn counter_value(name: &str) -> u64 {
    lock(counters()).get(name).map(|c| c.get()).unwrap_or(0)
}

/// Interns and returns the histogram `name`.
pub fn histogram(name: &str) -> &'static Histogram {
    let mut map = lock(histograms());
    if let Some(h) = map.get(name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    map.insert(name.to_string(), h);
    h
}

/// Records `v` into histogram `name` when metrics are enabled.
#[inline]
pub fn histogram_record(name: &str, v: f64) {
    if crate::metrics_enabled() {
        histogram(name).record(v);
    }
}

/// Snapshot of histogram `name`, if it exists.
pub fn histogram_snapshot(name: &str) -> Option<HistogramSnapshot> {
    lock(histograms()).get(name).map(|h| h.snapshot())
}

/// All counters, sorted by name.
pub fn counters_snapshot() -> Vec<(String, u64)> {
    lock(counters())
        .iter()
        .map(|(k, c)| (k.clone(), c.get()))
        .collect()
}

/// All histograms, sorted by name.
pub fn histograms_snapshot() -> Vec<(String, HistogramSnapshot)> {
    lock(histograms())
        .iter()
        .map(|(k, h)| (k.clone(), h.snapshot()))
        .collect()
}

pub(crate) fn reset_metrics() {
    for c in lock(counters()).values() {
        c.reset();
    }
    for h in lock(histograms()).values() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn counter_updates_are_atomic_across_threads() {
        let _guard = test_lock::hold();
        crate::enable_metrics(true);
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..per_thread {
                        counter_add("test.metrics.concurrent_counter", 1);
                    }
                });
            }
        });
        assert_eq!(
            counter_value("test.metrics.concurrent_counter"),
            threads * per_thread
        );
        crate::enable_metrics(false);
    }

    #[test]
    fn histogram_concurrent_updates_preserve_totals() {
        let _guard = test_lock::hold();
        crate::enable_metrics(true);
        let threads = 4;
        let n = 1000;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for i in 1..=n {
                        histogram_record("test.metrics.concurrent_hist", i as f64);
                    }
                });
            }
        });
        let snap = histogram_snapshot("test.metrics.concurrent_hist").unwrap();
        assert_eq!(snap.count, (threads * n) as u64);
        assert_eq!(snap.min, 1.0);
        assert_eq!(snap.max, n as f64);
        let expect_sum = threads as f64 * (n * (n + 1) / 2) as f64;
        assert!((snap.sum - expect_sum).abs() < 1e-6, "sum {}", snap.sum);
        assert!((snap.mean() - expect_sum / (threads * n) as f64).abs() < 1e-9);
        // Median of 1..=1000 is ~500; the bucket estimate is its
        // power-of-two floor.
        assert!(snap.p50 >= 128.0 && snap.p50 <= 512.0, "p50 {}", snap.p50);
        crate::enable_metrics(false);
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let _guard = test_lock::hold();
        crate::enable_metrics(false);
        counter_add("test.metrics.disabled_counter", 5);
        histogram_record("test.metrics.disabled_hist", 1.0);
        assert_eq!(counter_value("test.metrics.disabled_counter"), 0);
        assert!(histogram_snapshot("test.metrics.disabled_hist").is_none());
    }

    #[test]
    fn histogram_handles_nonfinite_and_nonpositive() {
        let h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(-3.0);
        h.record(0.0);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, -3.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.sum, -3.0);
    }

    #[test]
    fn empty_histogram_snapshot_is_all_nan() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0.0);
        for v in [s.min, s.max, s.p50, s.p90, s.p95, s.p99, s.mean()] {
            assert!(v.is_nan(), "expected NaN, got {v}");
        }
    }

    #[test]
    fn single_sample_pins_every_percentile() {
        let h = Histogram::new();
        h.record(6.64);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!((s.min, s.max), (6.64, 6.64));
        // One sample: every quantile resolves to its bucket's floor.
        let floor = bucket_floor(bucket_index(6.64));
        for q in [s.p50, s.p90, s.p95, s.p99] {
            assert_eq!(q, floor);
        }
        assert!(floor <= 6.64 && 6.64 < floor * 2.0);
    }

    #[test]
    fn exact_log2_boundaries_land_in_their_own_bucket() {
        // 2^k is the *inclusive lower bound* of its bucket: recording
        // exact powers of two must report those same powers back as
        // percentile floors, not the bucket below.
        for v in [0.25, 0.5, 1.0, 2.0, 4.0, 1024.0] {
            assert_eq!(bucket_floor(bucket_index(v)), v, "boundary {v}");
            let h = Histogram::new();
            h.record(v);
            let s = h.snapshot();
            assert_eq!(s.p50, v, "p50 of a single boundary sample {v}");
        }
        // Just below a boundary falls in the previous bucket.
        assert_eq!(bucket_index(2.0f64.next_down()), bucket_index(1.5));
        assert_eq!(bucket_index(2.0), bucket_index(3.0));
    }

    #[test]
    fn quantiles_split_across_boundary_buckets() {
        let h = Histogram::new();
        for _ in 0..50 {
            h.record(1.0); // [1, 2) bucket
        }
        for _ in 0..50 {
            h.record(2.0); // [2, 4) bucket
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, 1.0, "the 50th sample is still in the first bucket");
        assert_eq!(s.p90, 2.0);
        assert_eq!(s.p99, 2.0);
    }

    #[test]
    fn saturating_counts_do_not_overflow_percentiles() {
        // Synthetic aggregates with bucket tallies at u64::MAX: the
        // cumulative walk must saturate instead of wrapping (a wrap
        // would panic in debug builds and mis-rank quantiles in
        // release).
        let mut counts = vec![0u64; BUCKETS];
        counts[10] = u64::MAX;
        counts[20] = u64::MAX;
        counts[30] = 1;
        let s = snapshot_from(u64::MAX, f64::INFINITY, 1e-6, 1e3, &counts);
        assert_eq!(s.p50, bucket_floor(10), "half the mass sits in the first spike");
        // The saturated first spike alone reaches any clamped target:
        // resolution degrades to the first bucket, but never wraps.
        assert_eq!(s.p99, bucket_floor(10));
        assert_eq!(s.min, 1e-6);
        assert_eq!(s.max, 1e3);
        // All-saturated tail: the quantile target itself clamps to
        // `finite` and resolves to the last non-empty bucket.
        let mut tail = vec![0u64; BUCKETS];
        tail[BUCKETS - 1] = u64::MAX;
        let s = snapshot_from(u64::MAX, 0.0, 0.0, 0.0, &tail);
        assert_eq!(s.p99, bucket_floor(BUCKETS - 1));
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let h = Histogram::new();
        for v in [0.5, 1.0, 3.0, 700.0] {
            h.record(v);
        }
        let s = h.snapshot();
        let e = HistogramSnapshot::empty();
        assert_eq!(e.merge(&e).count, 0);
        assert!(e.merge(&e).p50.is_nan());
        for merged in [s.merge(&e), e.merge(&s)] {
            assert_eq!(merged, s, "merging with empty must be an identity");
        }
    }

    #[test]
    fn merge_disjoint_buckets_combines_ranges() {
        // Left histogram entirely in [1, 2), right entirely in
        // [1024, 2048): no bucket overlaps.
        let (a, b) = (Histogram::new(), Histogram::new());
        for _ in 0..90 {
            a.record(1.5);
        }
        for _ in 0..10 {
            b.record(1500.0);
        }
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.count, 100);
        assert_eq!((m.min, m.max), (1.5, 1500.0));
        assert_eq!(m.buckets[bucket_index(1.5)], 90);
        assert_eq!(m.buckets[bucket_index(1500.0)], 10);
        // 90% of the mass sits in the low bucket: the median stays
        // there and the p99 jumps to the high one.
        assert_eq!(m.p50, bucket_floor(bucket_index(1.5)));
        assert_eq!(m.p99, bucket_floor(bucket_index(1500.0)));
    }

    #[test]
    fn merge_overlapping_buckets_adds_tallies() {
        let (a, b) = (Histogram::new(), Histogram::new());
        for _ in 0..50 {
            a.record(1.0);
            b.record(1.0);
        }
        for _ in 0..25 {
            b.record(2.5);
        }
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.count, 125);
        assert_eq!(m.buckets[bucket_index(1.0)], 100);
        assert_eq!(m.buckets[bucket_index(2.5)], 25);
        assert_eq!(m.sum, 50.0 + 50.0 + 62.5);
        // 100 of 125 samples in [1, 2): p50 there, p90 in [2, 4).
        assert_eq!(m.p50, 1.0);
        assert_eq!(m.p90, 2.0);
        // Merge is symmetric.
        assert_eq!(b.snapshot().merge(&a.snapshot()), m);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut counts = [0u64; BUCKETS];
        counts[10] = u64::MAX - 1;
        let a = HistogramSnapshot::from_parts(u64::MAX - 1, 1.0, 1e-6, 1e-6, &counts);
        let m = a.merge(&a);
        assert_eq!(m.count, u64::MAX);
        assert_eq!(m.buckets[10], u64::MAX);
        assert_eq!(m.p99, bucket_floor(10));
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut last = 0;
        for v in [1e-12, 1e-6, 0.1, 1.0, 2.0, 100.0, 1e6, 1e12] {
            let i = bucket_index(v);
            assert!(i >= last, "index not monotone at {v}");
            last = i;
        }
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(1.5), bucket_index(1.9));
        assert!(bucket_floor(bucket_index(6.64)) <= 6.64);
    }
}
