//! `sfn-obs` — the observability layer of the Smart-fluidnet pipeline.
//!
//! The adaptive runtime's behaviour (Algorithm 2's switch/restart
//! decisions), the per-stage costs it trades off (advect / forces /
//! projection; PCG iterations vs. NN inference) and the bench harness's
//! progress all flow through this crate:
//!
//! * **Spans** — [`span!`] opens a hierarchical RAII timing scope;
//!   elapsed times aggregate thread-safely into a global per-stage
//!   table ([`report::render_report`] is the Table-3 analogue).
//!   [`ScopedTimer`] is the flat variant that also *returns* the
//!   elapsed [`std::time::Duration`] for callers that need it.
//! * **Counters & histograms** — [`counter_add`] / [`histogram_record`]
//!   accumulate PCG iterations, conv FLOPs, steps per model,
//!   `CumDivNorm` samples, switch/restart events…
//! * **Structured events** — [`event`] builds one JSONL record written
//!   to the file named by `SFN_TRACE_FILE` and, at or above the
//!   `SFN_LOG` verbosity, a human-readable line on stderr.
//! * **Flight recorder** — [`flight`] keeps the most recent `info`+
//!   events in a fixed ring even when tracing is off, and dumps a JSONL
//!   crash report on panic or when the simulation's blow-up guard /
//!   sanitizer calls [`note_incident`].
//!
//! # Configuration
//!
//! | variable | effect |
//! |---|---|
//! | `SFN_LOG` | stderr verbosity: `off`, `error`, `warn` (default), `info`, `debug`, `trace`; `info`+ also enables metrics |
//! | `SFN_TRACE_FILE` | path of the JSONL event trace (created/truncated); setting it enables metrics |
//! | `SFN_METRICS` | `1` enables span/counter/histogram aggregation without logging |
//! | `SFN_CRASH_FILE` | crash-report path; setting it installs the panic hook |
//! | `SFN_FLIGHT` | `0` disables the flight recorder |
//!
//! # Overhead
//!
//! Everything is off by default. The disabled fast path of a span or a
//! counter update is a single relaxed atomic load — no allocation, no
//! locking, no `Instant::now` — so instrumented hot loops run at full
//! speed (`cargo bench -p sfn-bench --bench runtime_overhead` measures
//! the instrumented simulation step both ways).
//!
//! This crate is deliberately dependency-free so the whole workspace
//! can link it without cost.

#![warn(missing_docs)]

pub mod events;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod report;
pub mod span;

pub use events::{
    add_event_observer, clear_event_observers, event, flush_trace, log, observing, set_trace_file,
    set_trace_writer, EventBuilder,
};
pub use flight::{
    crash_report, flight_enabled, incident_count, install_crash_handler, note_incident,
    set_crash_file, set_flight_enabled,
};
pub use metrics::{
    bucket_floor, bucket_index, counter, counter_add, counter_value, counters_snapshot, histogram,
    histogram_record, histogram_snapshot, histograms_snapshot, Counter, Histogram,
    HistogramSnapshot, BUCKETS,
};
pub use report::{render_report, reset, stage_percentiles, stage_snapshot, StageStats};
pub use span::{current_path as current_span_path, ScopedTimer, SpanGuard};

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Once, OnceLock};
use std::time::Instant;

/// Severity / verbosity levels, ordered from silent to most verbose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Logging disabled.
    Off = 0,
    /// Unrecoverable or data-destroying conditions (NaN blow-ups).
    Error = 1,
    /// Suspicious but survivable conditions (malformed env vars,
    /// cache-write failures). The default stderr verbosity.
    Warn = 2,
    /// Behavioural milestones (scheduler decisions, bench progress).
    Info = 3,
    /// Periodic internals (physical diagnostics every few steps).
    Debug = 4,
    /// Per-operation records (every Poisson solve).
    Trace = 5,
}

impl Level {
    /// Parses `"warn"`-style (or numeric `"2"`-style) level names.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(Level::Off),
            "error" | "1" => Some(Level::Error),
            "warn" | "warning" | "2" => Some(Level::Warn),
            "info" | "3" => Some(Level::Info),
            "debug" | "4" => Some(Level::Debug),
            "trace" | "5" => Some(Level::Trace),
            _ => None,
        }
    }

    /// The lowercase name used in event records.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

static INIT: Once = Once::new();
static LOG_LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);
static METRICS: AtomicBool = AtomicBool::new(false);

fn start_instant() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Seconds since the first call into this crate (the `ts` of every
/// event record — monotonic, not wall-clock).
pub fn uptime() -> f64 {
    start_instant().elapsed().as_secs_f64()
}

/// Applies the `SFN_LOG` / `SFN_TRACE_FILE` / `SFN_METRICS` environment
/// configuration. Called lazily by every entry point; calling it
/// explicitly (e.g. first thing in `main`) only pins *when* the
/// environment is read.
pub fn init() {
    INIT.call_once(|| {
        let _ = start_instant();
        if let Ok(v) = std::env::var("SFN_LOG") {
            if !v.is_empty() {
                match Level::parse(&v) {
                    Some(l) => {
                        LOG_LEVEL.store(l as u8, Ordering::Relaxed);
                        if l >= Level::Info {
                            METRICS.store(true, Ordering::Relaxed);
                        }
                    }
                    None => eprintln!("[sfn warn] SFN_LOG={v:?} is not a log level (off|error|warn|info|debug|trace); keeping \"warn\""),
                }
            }
        }
        if std::env::var("SFN_METRICS").map(|v| v == "1").unwrap_or(false) {
            METRICS.store(true, Ordering::Relaxed);
        }
        if let Ok(path) = std::env::var("SFN_TRACE_FILE") {
            if !path.is_empty() {
                METRICS.store(true, Ordering::Relaxed);
                if let Err(e) = events::set_trace_file(&path) {
                    eprintln!("[sfn warn] cannot open SFN_TRACE_FILE {path:?}: {e}");
                }
            }
        }
        flight::init_from_env();
    });
}

/// The current stderr verbosity.
pub fn log_level() -> Level {
    init();
    match LOG_LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        4 => Level::Debug,
        _ => Level::Trace,
    }
}

/// Overrides the stderr verbosity programmatically.
pub fn set_log_level(level: Level) {
    init();
    LOG_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// True if a message at `level` reaches stderr.
pub fn log_enabled(level: Level) -> bool {
    init();
    log_enabled_raw(level)
}

pub(crate) fn log_enabled_raw(level: Level) -> bool {
    level != Level::Off && (level as u8) <= LOG_LEVEL.load(Ordering::Relaxed)
}

/// True if span/counter/histogram aggregation is active.
#[inline]
pub fn metrics_enabled() -> bool {
    init();
    METRICS.load(Ordering::Relaxed)
}

/// Turns span/counter/histogram aggregation on or off (the bench
/// harness enables it for its end-of-run report).
pub fn enable_metrics(on: bool) {
    init();
    METRICS.store(on, Ordering::Relaxed);
}

/// True if an event at `level` would be recorded anywhere (trace sink,
/// an in-process observer, or stderr) — the cheap pre-flight check
/// before computing expensive event payloads such as physical
/// diagnostics.
pub fn event_enabled(level: Level) -> bool {
    init();
    events::tracing_enabled_raw() || events::observing_raw() || log_enabled_raw(level)
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard};

    // The obs state is process-global; tests that toggle it serialise
    // on this lock so `cargo test`'s parallel threads don't interleave.
    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("warn"), Some(Level::Warn));
        assert_eq!(Level::parse("TRACE"), Some(Level::Trace));
        assert_eq!(Level::parse(" info "), Some(Level::Info));
        assert_eq!(Level::parse("3"), Some(Level::Info));
        assert_eq!(Level::parse("verbose"), None);
        assert!(Level::Trace > Level::Debug && Level::Error < Level::Warn);
    }

    #[test]
    fn metrics_toggle_round_trips() {
        let _guard = test_lock::hold();
        let before = metrics_enabled();
        enable_metrics(true);
        assert!(metrics_enabled());
        enable_metrics(false);
        assert!(!metrics_enabled());
        enable_metrics(before);
    }
}
