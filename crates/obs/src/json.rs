//! Minimal JSON emission **and** a strict JSON-subset parser.
//!
//! The dependency-free crates of the pipeline all speak JSON somewhere:
//! `sfn-obs` writes JSONL trace events, `sfn-faults` reads `SFN_FAULTS`
//! schedules, `sfn-trace` reads traces and summaries back. This module
//! is the single hand-rolled implementation they share (no serde by
//! design), hoisted out of `sfn-faults` so exactly one parser exists.
//!
//! The parser accepts the JSON subset the emitters produce — objects,
//! arrays, strings with the common escapes, `f64` numbers, booleans,
//! `null` — and rejects everything else with a position-carrying
//! [`JsonError`], so a malformed input can be reported and skipped
//! rather than crashing the host process.

use std::fmt::Write as _;

// ------------------------------------------------------------ emission

/// Appends `s` to `out` with JSON string escaping (no surrounding
/// quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Appends a JSON number; non-finite values become `null` (JSON has no
/// NaN/Infinity).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

// ------------------------------------------------------------- parsing

/// The JSON subset the parser produces.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; field order is preserved and duplicate keys are kept
    /// (lookup returns the first).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items.as_slice()),
            _ => None,
        }
    }

    /// The object's `(key, value)` pairs in document order, if this is
    /// an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields.as_slice()),
            _ => None,
        }
    }

    /// Serialises the value back to compact JSON (the inverse of
    /// [`parse`], modulo float formatting).
    pub fn write_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => push_f64(out, *n),
            Value::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_into(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(out, k);
                    out.push_str("\":");
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    /// [`Value::write_into`] into a fresh string.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_into(&mut s);
        s
    }

    /// Pretty-printed rendering (2-space indent, serde_json style) for
    /// human-inspected artifacts like the bench summary.
    pub fn write_pretty_into(&self, out: &mut String, indent: usize) {
        const STEP: usize = 2;
        let pad = |out: &mut String, n: usize| {
            for _ in 0..n {
                out.push(' ');
            }
        };
        match self {
            Value::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, indent + STEP);
                    v.write_pretty_into(out, indent + STEP);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Value::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, indent + STEP);
                    out.push('"');
                    escape_into(out, k);
                    out.push_str("\": ");
                    v.write_pretty_into(out, indent + STEP);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
            other => other.write_into(out),
        }
    }

    /// [`Value::write_pretty_into`] into a fresh string.
    pub fn to_json_pretty(&self) -> String {
        let mut s = String::new();
        self.write_pretty_into(&mut s, 0);
        s
    }
}

// ------------------------------------------------------------- codecs
//
// The workspace's replacement for serde derives: types that cross a
// serialization boundary implement `ToJson`/`FromJson` against the
// `Value` tree. The wire shapes mirror what serde_json's derive would
// have produced (structs as objects in field order, unit enum variants
// as strings, struct variants as single-key objects, tuples as arrays),
// so files written before the derive removal still parse.

/// Conversion into a JSON [`Value`].
pub trait ToJson {
    /// Builds the JSON tree for `self`.
    fn to_json_value(&self) -> Value;
}

/// Conversion from a JSON [`Value`].
pub trait FromJson: Sized {
    /// Rebuilds `Self`, reporting the first structural mismatch.
    fn from_json_value(v: &Value) -> Result<Self, JsonError>;
}

/// Builds an object `Value` from `(key, value)` pairs.
pub fn obj<const N: usize>(fields: [(&str, Value); N]) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn type_error(expected: &str, got: &Value) -> JsonError {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Num(_) => "number",
        Value::Str(_) => "string",
        Value::Arr(_) => "array",
        Value::Obj(_) => "object",
    };
    JsonError { at: 0, message: format!("expected {expected}, got {kind}") }
}

impl Value {
    /// Typed field lookup for decoders: `v.field::<f64>("dt")?`.
    pub fn field<T: FromJson>(&self, key: &str) -> Result<T, JsonError> {
        let inner = self.get(key).ok_or_else(|| JsonError {
            at: 0,
            message: format!("missing field `{key}`"),
        })?;
        T::from_json_value(inner).map_err(|e| JsonError {
            at: e.at,
            message: format!("field `{key}`: {}", e.message),
        })
    }
}

impl ToJson for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| type_error("bool", v))
    }
}

impl ToJson for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        v.as_str().map(str::to_string).ok_or_else(|| type_error("string", v))
    }
}

impl ToJson for &str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl ToJson for f64 {
    fn to_json_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| type_error("number", v))
    }
}

impl ToJson for f32 {
    fn to_json_value(&self) -> Value {
        Value::Num(f64::from(*self))
    }
}

impl FromJson for f32 {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        let n = f64::from_json_value(v)?;
        let f = n as f32;
        // The parser only yields finite f64s, so a non-finite cast means
        // the literal overflowed f32. Writing it back out would render
        // `null` (non-round-trippable); refuse it on the way in instead.
        if !f.is_finite() {
            return Err(JsonError { at: 0, message: format!("number {n:e} out of f32 range") });
        }
        Ok(f)
    }
}

macro_rules! int_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json_value(&self) -> Value {
                // All integers the pipeline serialises (ids, seeds,
                // counters) fit in f64's 53-bit exact range; refuse to
                // silently round anything bigger.
                let v = *self as f64;
                debug_assert!(
                    v as u128 == *self as u128,
                    "integer {self} not exactly representable in JSON"
                );
                Value::Num(v)
            }
        }
        impl FromJson for $t {
            fn from_json_value(v: &Value) -> Result<Self, JsonError> {
                let n = v.as_u64().ok_or_else(|| type_error("integer", v))?;
                <$t>::try_from(n).map_err(|_| JsonError {
                    at: 0,
                    message: format!("integer {n} out of range"),
                })
            }
        }
    )*};
}

int_json!(u32, u64, usize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_json_value(other)?)),
        }
    }
}

impl<T: ToJson> ToJson for std::collections::BTreeMap<String, T> {
    fn to_json_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<T: FromJson> FromJson for std::collections::BTreeMap<String, T> {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        let fields = v.as_obj().ok_or_else(|| type_error("object", v))?;
        fields
            .iter()
            .map(|(k, inner)| Ok((k.clone(), T::from_json_value(inner)?)))
            .collect()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Arr(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        let items = v.as_arr().ok_or_else(|| type_error("array", v))?;
        items.iter().map(T::from_json_value).collect()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json_value(&self) -> Value {
        Value::Arr(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        match v.as_arr() {
            Some([a, b]) => Ok((A::from_json_value(a)?, B::from_json_value(b)?)),
            _ => Err(type_error("2-element array", v)),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_json_value(),
            self.1.to_json_value(),
            self.2.to_json_value(),
        ])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        match v.as_arr() {
            Some([a, b, c]) => Ok((
                A::from_json_value(a)?,
                B::from_json_value(b)?,
                C::from_json_value(c)?,
            )),
            _ => Err(type_error("3-element array", v)),
        }
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Arr(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: FromJson + Copy + Default, const N: usize> FromJson for [T; N] {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        let items = v.as_arr().ok_or_else(|| type_error("array", v))?;
        if items.len() != N {
            return Err(JsonError {
                at: 0,
                message: format!("expected {N}-element array, got {}", items.len()),
            });
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_json_value(item)?;
        }
        Ok(out)
    }
}

/// Encodes any [`ToJson`] type to a compact JSON string.
pub fn to_json_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json_value().to_json()
}

/// Encodes any [`ToJson`] type to a pretty-printed JSON string.
pub fn to_json_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json_value().to_json_pretty()
}

/// Parses and decodes any [`FromJson`] type from a JSON string.
pub fn from_json_str<T: FromJson>(input: &str) -> Result<T, JsonError> {
    T::from_json_value(&parse(input)?)
}

/// A parse failure with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Deepest object/array nesting [`parse`] accepts. The recursive-
/// descent parser uses one call frame per level, so an unbounded
/// `[[[[…` from an untrusted file would overflow the stack; everything
/// the pipeline emits nests a handful of levels deep.
pub const MAX_DEPTH: usize = 128;

/// Largest input [`parse`] accepts, in bytes. The biggest legitimate
/// document the pipeline reads is an offline-artifact cache (a few MB
/// of weights); the cap stops a forged multi-GB file from being
/// buffered into `Value` trees before any schema check can run.
pub const MAX_INPUT_LEN: usize = 64 << 20;

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// Untrusted-input guarantees: inputs longer than [`MAX_INPUT_LEN`] or
/// nesting deeper than [`MAX_DEPTH`] are rejected with a [`JsonError`]
/// (never a stack overflow), and no error path allocates proportionally
/// to declared sizes.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    if input.len() > MAX_INPUT_LEN {
        return Err(JsonError {
            at: 0,
            message: format!(
                "input of {} bytes exceeds the {MAX_INPUT_LEN}-byte limit",
                input.len()
            ),
        });
    }
    let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { at: self.pos, message: message.into() }
    }

    /// Bumps the nesting depth on entering an object or array. Only the
    /// success paths unwind it — an error aborts the whole parse.
    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'u' => {
                            // \uXXXX escapes, including surrogate pairs
                            // (the emitter writes control characters as
                            // \u00XX).
                            let first = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&first) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            match char::from_u32(cp) {
                                Some(c) => s.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.err(format!("unsupported escape \\{}", esc as char))),
                    }
                }
                Some(_) => {
                    // Copy the full UTF-8 scalar starting here. `rest`
                    // is non-empty (peek succeeded), so a valid slice
                    // always yields a char — but this is an untrusted-
                    // input path, so fail closed rather than unwrap.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = text
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    if ch.is_control() {
                        return Err(self.err("raw control character in string"));
                    }
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = self.peek().and_then(|b| (b as char).to_digit(16));
            match d {
                Some(d) => {
                    cp = cp * 16 + d;
                    self.pos += 1;
                }
                None => return Err(self.err("expected 4 hex digits after \\u")),
            }
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.pos += 1;
        }
        // Every byte the loop above accepts is ASCII, so this slice is
        // valid UTF-8 by construction — but fail closed, not unwrap.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError { at: start, message: "invalid UTF-8 in number".into() })?;
        match text.parse::<f64>() {
            // JSON has no Infinity; overflowing literals like 1e400 are
            // rejected rather than silently saturated.
            Ok(v) if v.is_finite() => Ok(Value::Num(v)),
            _ => Err(JsonError { at: start, message: format!("invalid number {text:?}") }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn numbers_round_trip_and_nan_is_null() {
        let mut s = String::new();
        push_f64(&mut s, 0.013);
        s.push(',');
        push_f64(&mut s, f64::NAN);
        s.push(',');
        push_f64(&mut s, f64::INFINITY);
        assert_eq!(s, "0.013,null,null");
    }

    #[test]
    fn parses_the_emitted_subset() {
        let v = parse(
            r#"{"ts":1.25,"level":"info","kind":"scheduler.decision","step":20,
                "ok":true,"none":null,"arr":[1,-2.5,"x"]}"#,
        )
        .unwrap();
        assert_eq!(v.get("ts").and_then(Value::as_f64), Some(1.25));
        assert_eq!(v.get("level").and_then(Value::as_str), Some("info"));
        assert_eq!(v.get("step").and_then(Value::as_u64), Some(20));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("none"), Some(&Value::Null));
        let arr = v.get("arr").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].as_f64(), Some(-2.5));
    }

    #[test]
    fn string_escapes_round_trip_through_emit_and_parse() {
        let original = "a\"b\\c\nd\tπ\u{1}";
        let mut line = String::from("{\"k\":\"");
        escape_into(&mut line, original);
        line.push_str("\"}");
        let v = parse(&line).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_str), Some(original));
    }

    #[test]
    fn unicode_escapes_and_surrogate_pairs() {
        let v = parse(r#""Aé😀""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀"));
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(parse(r#""\u12"#).is_err(), "truncated escape");
    }

    #[test]
    fn malformed_inputs_are_rejected_with_offsets() {
        for bad in ["", "{", "[1, 2", "{\"a\" 1}", "tru", "1e400", "{} trailing", "\"\u{1}\""] {
            let e = parse(bad).unwrap_err();
            assert!(e.to_string().contains("byte"), "{bad:?} -> {e}");
        }
    }

    #[test]
    fn nesting_depth_is_limited_not_a_stack_overflow() {
        // Far deeper than any stack could take recursively: the limit
        // must trip, cheaply, long before frame exhaustion.
        for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
            let deep: String = open.repeat(500_000) + &close.repeat(500_000);
            let start = std::time::Instant::now();
            let e = parse(&deep).unwrap_err();
            assert!(e.message.contains("nesting"), "{e}");
            assert!(
                start.elapsed() < std::time::Duration::from_millis(100),
                "depth rejection took {:?}",
                start.elapsed()
            );
        }
        // The limit itself is fine.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
        let over = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        assert!(parse(&over).is_err());
    }

    #[test]
    fn oversized_inputs_are_rejected_up_front() {
        let mut big = String::with_capacity(MAX_INPUT_LEN + 16);
        big.push('"');
        // A 64 MiB+ string literal; must be rejected before any parse
        // work happens.
        big.push_str(&"a".repeat(MAX_INPUT_LEN));
        big.push('"');
        let start = std::time::Instant::now();
        let e = parse(&big).unwrap_err();
        assert!(e.message.contains("limit"), "{e}");
        assert!(start.elapsed() < std::time::Duration::from_millis(50));
    }

    #[test]
    fn value_serialisation_round_trips() {
        let src = r#"{"a":1,"b":[true,null,"x\ny"],"c":{"d":-0.5}}"#;
        let v = parse(src).unwrap();
        let emitted = v.to_json();
        assert_eq!(parse(&emitted).unwrap(), v);
    }

    #[test]
    fn duplicate_keys_resolve_to_first() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_f64), Some(1.0));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Value::Num(3.0).as_u64(), Some(3));
        assert_eq!(Value::Num(3.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Str("3".into()).as_u64(), None);
    }

    #[test]
    fn codec_primitives_round_trip() {
        assert_eq!(from_json_str::<f64>(&to_json_string(&1.25)), Ok(1.25));
        assert_eq!(from_json_str::<bool>(&to_json_string(&true)), Ok(true));
        assert_eq!(from_json_str::<usize>(&to_json_string(&42usize)), Ok(42));
        assert_eq!(
            from_json_str::<String>(&to_json_string(&"a\"b".to_string())),
            Ok("a\"b".to_string())
        );
        let v: Vec<(f64, f64)> = vec![(1.0, 2.5), (-3.0, 0.0)];
        assert_eq!(from_json_str::<Vec<(f64, f64)>>(&to_json_string(&v)), Ok(v));
        let a = [1.0f64, 2.0, 3.0];
        assert_eq!(from_json_str::<[f64; 3]>(&to_json_string(&a)), Ok(a));
    }

    #[test]
    fn codec_reports_field_and_type_errors() {
        let v = parse(r#"{"a":1}"#).unwrap();
        let missing = v.field::<f64>("b").unwrap_err();
        assert!(missing.message.contains("missing field `b`"), "{missing}");
        let wrong = v.field::<String>("a").unwrap_err();
        assert!(
            wrong.message.contains("field `a`") && wrong.message.contains("expected string"),
            "{wrong}"
        );
        assert!(from_json_str::<usize>("3.5").is_err());
        assert!(from_json_str::<u32>("4294967296").is_err(), "u32 overflow");
    }

    #[test]
    fn codec_obj_builder_preserves_order() {
        let v = obj([("b", Value::Num(1.0)), ("a", Value::Bool(false))]);
        assert_eq!(v.to_json(), r#"{"b":1,"a":false}"#);
    }
}
