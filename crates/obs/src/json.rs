//! Minimal JSON string/number emission (this crate is dependency-free
//! by design, so no serde).

use std::fmt::Write as _;

/// Appends `s` to `out` with JSON string escaping (no surrounding
/// quotes).
pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Appends a JSON number; non-finite values become `null` (JSON has no
/// NaN/Infinity).
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn numbers_round_trip_and_nan_is_null() {
        let mut s = String::new();
        push_f64(&mut s, 0.013);
        s.push(',');
        push_f64(&mut s, f64::NAN);
        s.push(',');
        push_f64(&mut s, f64::INFINITY);
        assert_eq!(s, "0.013,null,null");
    }
}
