//! Dependency-free seeded randomness for the whole workspace.
//!
//! This crate replaces the external `rand` dependency so the workspace
//! builds with `--offline` and no registry. The generator is
//! xoshiro256++ seeded through SplitMix64 (the reference seeding
//! procedure), which gives a long period (2²⁵⁶ − 1), cheap jumps from
//! one `u64` seed, and — most importantly here — **bit-for-bit
//! deterministic streams from a seed**, the contract the Algorithm 2
//! replay machinery and the `sfn-trace` decision audit rely on.
//!
//! The module layout deliberately mirrors the subset of the `rand` API
//! the workspace uses, so call sites swap `use rand::…` for
//! `use sfn_rng::…` and change nothing else:
//!
//! * [`rngs::StdRng`] — the one generator type;
//! * [`SeedableRng::seed_from_u64`] — seeding;
//! * [`RngExt::random_range`] — uniform sampling from integer and
//!   float ranges;
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates shuffling;
//! * [`RngExt::normal`] — zero-mean Gaussian draws (Box–Muller).
//!
//! The [`prop`] module is a seeded mini property-test harness that
//! stands in for `proptest` in this workspace's tests.

use std::ops::{Range, RangeInclusive};

pub mod prop;

/// Re-export module mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// Re-export module mirroring `rand::seq`.
pub mod seq {
    pub use crate::SliceRandom;
}

/// SplitMix64 step: advances `state` and returns the next output.
/// Used only to expand a 64-bit seed into the xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ — the workspace's standard generator.
///
/// Named `StdRng` so call sites keep the `rand` spelling. Cloning
/// clones the stream position; two clones produce identical sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

/// Seeding trait mirroring `rand::SeedableRng` (the `seed_from_u64`
/// subset the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut st = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut st);
        }
        // SplitMix64 never yields four zero words from any seed, but
        // guard the all-zero fixed point anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl StdRng {
    /// The core xoshiro256++ step.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0
            .wrapping_add(s3)
            .rotate_left(23)
            .wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// Uniform draw in `[0, 1)` with 53 mantissa bits.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via 128-bit multiply-shift
    /// (Lemire's unbiased-enough fast path; the residual bias is
    /// < 2⁻⁶⁴ per draw, far below anything these simulations resolve).
    #[inline]
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Uniform sampling from a range, mirroring `rand`'s
/// `Rng::random_range` argument convention.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded_u64(span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + rng.bounded_u64(span + 1) as $t
            }
        }
    )*};
}

int_sample_range!(u32, u64, usize, i32, i64);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty float range in random_range"
                );
                let u = rng.unit_f64() as $t;
                let v = self.start + u * (self.end - self.start);
                // Floating rounding can land exactly on `end`; fold it
                // back so the half-open contract holds.
                if v >= self.end {
                    self.start.max(<$t>::from_bits(self.end.to_bits() - 1))
                } else {
                    v
                }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Sampling extension methods, mirroring the `rand::RngExt` surface
/// the workspace's init/train code uses.
pub trait RngExt {
    /// Uniform sample from an integer or float range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// Uniform draw in `[0, 1)`.
    fn random_unit(&mut self) -> f64;

    /// Zero-mean Gaussian with standard deviation `sigma` (Box–Muller).
    fn normal(&mut self, sigma: f64) -> f64;
}

impl RngExt for StdRng {
    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn random_unit(&mut self) -> f64 {
        self.unit_f64()
    }

    fn normal(&mut self, sigma: f64) -> f64 {
        let u1: f64 = self.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.random_range(0.0..1.0);
        sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Slice shuffling, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// In-place Fisher–Yates shuffle.
    fn shuffle(&mut self, rng: &mut StdRng);
}

impl<T> SliceRandom for [T] {
    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            let j = rng.bounded_u64(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    // Golden values pin the exact stream. If these ever change, every
    // seeded weight init, problem generator and Algorithm 2 replay in
    // the workspace changes with them — treat that as a format break.
    #[test]
    fn golden_stream_seed_zero() {
        let mut r = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
    }

    #[test]
    fn golden_stream_seed_42() {
        let mut r = StdRng::seed_from_u64(42);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                15021278609987233951,
                5881210131331364753,
                18149643915985481100
            ]
        );
    }

    #[test]
    fn unit_f64_is_in_range_and_well_spread() {
        let mut r = StdRng::seed_from_u64(7);
        let mut mean = 0.0;
        for _ in 0..10_000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
            mean += v;
        }
        mean /= 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..200 {
            let v = r.random_range(4..=6usize);
            assert!((4..=6).contains(&v));
        }
        let v = r.random_range(5..6u32);
        assert_eq!(v, 5);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v = r.random_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&v), "{v}");
            let w: f32 = r.random_range(0.0..1.0f32);
            assert!((0.0..1.0).contains(&w), "{w}");
        }
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut a: Vec<usize> = (0..50).collect();
        let mut b: Vec<usize> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "50 elements should not shuffle to identity");
    }
}
