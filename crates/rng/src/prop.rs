//! A seeded mini property-test harness (the workspace's `proptest`
//! replacement).
//!
//! `proptest` cannot be fetched offline, and the workspace's
//! properties never needed shrinking — every failure is reproducible
//! from the case index alone because generation is seeded. The harness
//! is therefore deliberately tiny: run a closure over `n` cases, each
//! with its own deterministic [`Gen`], and on failure report which
//! case broke so the run can be replayed with [`cases_from`].
//!
//! ```
//! use sfn_rng::prop;
//!
//! prop::cases(24, |g| {
//!     let xs = g.vec_f64(-1.0..1.0, 16);
//!     let sum: f64 = xs.iter().sum();
//!     assert!(sum.abs() <= 16.0);
//! });
//! ```

use crate::{RngExt, SampleRange, SeedableRng, SliceRandom, StdRng};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Base seed folded into every case seed. Changing it reshuffles every
/// property's inputs, so keep it fixed.
const HARNESS_SEED: u64 = 0x5F4A_7C15_9E37_79B9;

/// Deterministic input generator handed to each property case.
pub struct Gen {
    rng: StdRng,
    /// Which case this generator belongs to (0-based).
    pub case: usize,
}

impl Gen {
    fn for_case(case: usize) -> Self {
        let seed = HARNESS_SEED ^ (case as u64).wrapping_mul(0xA24B_AED4_963E_E407);
        Gen { rng: StdRng::seed_from_u64(seed), case }
    }

    /// Uniform sample from an integer or float range.
    pub fn range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.rng.random_range(range)
    }

    /// Uniform `f64` vector with every element in `range`.
    pub fn vec_f64(&mut self, range: Range<f64>, len: usize) -> Vec<f64> {
        (0..len).map(|_| self.rng.random_range(range.clone())).collect()
    }

    /// Uniform `usize` vector with every element in `range`.
    pub fn vec_usize(&mut self, range: Range<usize>, len: usize) -> Vec<usize> {
        (0..len).map(|_| self.rng.random_range(range.clone())).collect()
    }

    /// Vector of pairs drawn from two `f64` ranges.
    pub fn vec_f64_pairs(
        &mut self,
        a: Range<f64>,
        b: Range<f64>,
        len: usize,
    ) -> Vec<(f64, f64)> {
        (0..len)
            .map(|_| (self.rng.random_range(a.clone()), self.rng.random_range(b.clone())))
            .collect()
    }

    /// In-place shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        xs.shuffle(&mut self.rng);
    }

    /// The underlying generator, for anything the helpers don't cover.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Runs `property` over `n` deterministic cases, starting at case 0.
///
/// # Panics
/// Re-raises the property's panic, after printing the failing case
/// index (replay it alone with [`cases_from`]).
pub fn cases(n: usize, property: impl FnMut(&mut Gen)) {
    cases_from(0, n, property);
}

/// Runs cases `first..first + n` — the replay entry point for a case
/// index printed by a failing [`cases`] run.
pub fn cases_from(first: usize, n: usize, mut property: impl FnMut(&mut Gen)) {
    for case in first..first + n {
        let mut g = Gen::for_case(case);
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| property(&mut g))) {
            eprintln!(
                "property failed at case {case} \
                 (replay: sfn_rng::prop::cases_from({case}, 1, …))"
            );
            resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut a = Vec::new();
        cases(5, |g| a.push(g.range(0..1000usize)));
        let mut b = Vec::new();
        cases(5, |g| b.push(g.range(0..1000usize)));
        assert_eq!(a, b);
        assert!(a.windows(2).any(|w| w[0] != w[1]), "cases vary: {a:?}");
    }

    #[test]
    fn replay_reproduces_a_case() {
        let mut all = Vec::new();
        cases(4, |g| all.push(g.vec_f64(0.0..1.0, 3)));
        let mut third = Vec::new();
        cases_from(2, 1, |g| third.push(g.vec_f64(0.0..1.0, 3)));
        assert_eq!(all[2], third[0]);
    }

    #[test]
    fn failing_case_index_is_reported() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            cases(10, |g| assert!(g.case < 7, "boom at {}", g.case));
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("boom at 7"), "{msg}");
    }
}
