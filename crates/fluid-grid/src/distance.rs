//! Exact Euclidean distance transform to the nearest solid cell.
//!
//! Eq. 5 of the paper weights the divergence of each fluid cell by
//! `w_i = max(1, k − d_i)`, where `d_i` is 0 for solid cells and the
//! minimum Euclidean distance to the nearest solid cell otherwise. We
//! compute `d` with the Felzenszwalb–Huttenlocher separable distance
//! transform, which is exact and O(n) per dimension.

use crate::{CellFlags, Field2};

const INF: f64 = 1e20;

/// 1-D squared-distance transform (lower envelope of parabolas).
///
/// `f` holds squared distances sampled on a line; returns the exact
/// squared Euclidean distance transform along that line.
#[allow(clippy::needless_range_loop)] // index-centric by construction
fn dt1d(f: &[f64]) -> Vec<f64> {
    let n = f.len();
    let mut d = vec![0.0; n];
    let mut v = vec![0usize; n]; // parabola apex positions
    let mut z = vec![0.0f64; n + 1]; // boundaries between parabolas
    let mut k = 0usize;
    v[0] = 0;
    z[0] = -INF;
    z[1] = INF;
    for q in 1..n {
        // Intersection of parabola from q with parabola from v[k].
        let mut s;
        loop {
            let p = v[k];
            s = ((f[q] + (q * q) as f64) - (f[p] + (p * p) as f64)) / (2.0 * (q as f64 - p as f64));
            if s <= z[k] {
                if k == 0 {
                    break;
                }
                k -= 1;
            } else {
                break;
            }
        }
        // If s <= z[k] with k == 0 we overwrite the first parabola.
        if s <= z[k] && k == 0 {
            v[0] = q;
            z[0] = -INF;
            z[1] = INF;
            k = 0;
            continue;
        }
        k += 1;
        v[k] = q;
        z[k] = s;
        z[k + 1] = INF;
    }
    k = 0;
    for q in 0..n {
        while z[k + 1] < q as f64 {
            k += 1;
        }
        let dq = q as f64 - v[k] as f64;
        d[q] = dq * dq + f[v[k]];
    }
    d
}

/// Exact Euclidean distance (in cell units, centre-to-centre) from each
/// cell to the nearest solid cell. Solid cells get distance 0.
///
/// If the grid contains no solid cells at all, every distance is a large
/// sentinel (`> max(nx, ny)`), which under `w = max(1, k − d)` cleanly
/// degrades to uniform weight 1.
pub fn distance_field(flags: &CellFlags) -> Field2 {
    let (nx, ny) = (flags.nx(), flags.ny());
    // Squared distance initialised to 0 at solids, INF elsewhere.
    let mut sq = Field2::from_fn(nx, ny, |i, j| if flags.is_solid(i, j) { 0.0 } else { INF });
    // Transform columns.
    for i in 0..nx {
        let col: Vec<f64> = (0..ny).map(|j| sq.at(i, j)).collect();
        let d = dt1d(&col);
        for (j, &v) in d.iter().enumerate() {
            sq.set(i, j, v);
        }
    }
    // Transform rows.
    for j in 0..ny {
        let row: Vec<f64> = (0..nx).map(|i| sq.at(i, j)).collect();
        let d = dt1d(&row);
        for (i, &v) in d.iter().enumerate() {
            sq.set(i, j, v);
        }
    }
    Field2::from_fn(nx, ny, |i, j| sq.at(i, j).sqrt().min(INF.sqrt()))
}

/// The DivNorm weight field of Eq. 5: `w = max(1, k − d)`.
///
/// `k` emphasises cells near geometry boundaries; the paper does not fix
/// a value, we default to 3 elsewhere in the workspace.
pub fn divnorm_weights(flags: &CellFlags, k: f64) -> Field2 {
    let d = distance_field(flags);
    Field2::from_fn(flags.nx(), flags.ny(), |i, j| (k - d.at(i, j)).max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellType;

    /// Brute-force reference: O(n²) nearest-solid search.
    fn brute_force(flags: &CellFlags) -> Field2 {
        let (nx, ny) = (flags.nx(), flags.ny());
        Field2::from_fn(nx, ny, |i, j| {
            let mut best = INF.sqrt();
            for sj in 0..ny {
                for si in 0..nx {
                    if flags.is_solid(si, sj) {
                        let dx = i as f64 - si as f64;
                        let dy = j as f64 - sj as f64;
                        best = best.min((dx * dx + dy * dy).sqrt());
                    }
                }
            }
            best
        })
    }

    #[test]
    fn solid_cells_have_zero_distance() {
        let mut f = CellFlags::all_fluid(8, 8);
        f.set(3, 4, CellType::Solid);
        let d = distance_field(&f);
        assert_eq!(d.at(3, 4), 0.0);
    }

    #[test]
    fn single_solid_matches_euclidean() {
        let mut f = CellFlags::all_fluid(9, 7);
        f.set(4, 3, CellType::Solid);
        let d = distance_field(&f);
        for j in 0..7 {
            for i in 0..9 {
                let dx = i as f64 - 4.0;
                let dy = j as f64 - 3.0;
                let want = (dx * dx + dy * dy).sqrt();
                assert!(
                    (d.at(i, j) - want).abs() < 1e-9,
                    "({i},{j}): {} vs {want}",
                    d.at(i, j)
                );
            }
        }
    }

    #[test]
    fn matches_brute_force_on_random_geometry() {
        let mut f = CellFlags::smoke_box(16, 12);
        f.add_solid_disc(8.0, 6.0, 2.5);
        f.set(13, 9, CellType::Solid);
        let fast = distance_field(&f);
        let slow = brute_force(&f);
        for j in 0..12 {
            for i in 0..16 {
                assert!(
                    (fast.at(i, j) - slow.at(i, j)).abs() < 1e-9,
                    "mismatch at ({i},{j}): {} vs {}",
                    fast.at(i, j),
                    slow.at(i, j)
                );
            }
        }
    }

    #[test]
    fn no_solid_cells_degrades_gracefully() {
        let f = CellFlags::all_fluid(6, 6);
        let w = divnorm_weights(&f, 3.0);
        for j in 0..6 {
            for i in 0..6 {
                assert_eq!(w.at(i, j), 1.0);
            }
        }
    }

    #[test]
    fn weights_emphasise_boundaries() {
        let f = CellFlags::closed_box(10, 10);
        let w = divnorm_weights(&f, 3.0);
        // Cell adjacent to the wall: d = 1 -> w = 2.
        assert_eq!(w.at(1, 5), 2.0);
        // Centre cell: d = 4.something? wall at i=0 => d=4.5? centre (5,5)
        // to wall cell (0,5) distance 5; nearest wall distance is 4 cells
        // away at (5,0)? All borders are wall, min distance = 4 -> w = 1.
        assert_eq!(w.at(5, 5), 1.0);
        // Solid cells themselves: d = 0 -> w = k.
        assert_eq!(w.at(0, 0), 3.0);
    }

    #[test]
    fn transform_equals_brute_force() {
        sfn_rng::prop::cases(200, |g| {
            // Pseudo-random sparse geometry from the case seed.
            let seed = g.range(0u64..200);
            let mut f = CellFlags::all_fluid(12, 10);
            let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            for _ in 0..5 {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let i = (s % 12) as usize;
                let j = ((s >> 8) % 10) as usize;
                f.set(i, j, CellType::Solid);
            }
            let fast = distance_field(&f);
            let slow = brute_force(&f);
            for j in 0..10 {
                for i in 0..12 {
                    assert!((fast.at(i, j) - slow.at(i, j)).abs() < 1e-9);
                }
            }
        });
    }
}
