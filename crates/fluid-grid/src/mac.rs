//! The staggered MAC velocity grid.
//!
//! For an `nx × ny` cell grid (cell size `dx`, positions in grid units):
//!
//! * `u` — x-velocity on vertical faces, dimensions `(nx+1) × ny`,
//!   `u(i, j)` located at position `(i, j + 0.5)`;
//! * `v` — y-velocity on horizontal faces, dimensions `nx × (ny+1)`,
//!   `v(i, j)` located at position `(i + 0.5, j)`.
//!
//! Pressure and scalars live at cell centres `(i + 0.5, j + 0.5)`.
//! This is exactly the arrangement of §2.1: "the pressure is sampled at
//! the grid cell center and the velocity is sampled at the centers of
//! the vertical faces of the grid cell".

use crate::{CellFlags, CellType, Field2};
use sfn_obs::json::{obj, FromJson, JsonError, ToJson, Value};

/// Staggered velocity field on an `nx × ny` MAC grid.
#[derive(Debug, Clone, PartialEq)]
pub struct MacGrid {
    nx: usize,
    ny: usize,
    dx: f64,
    /// x-velocity, `(nx+1) × ny`.
    pub u: Field2,
    /// y-velocity, `nx × (ny+1)`.
    pub v: Field2,
}

impl MacGrid {
    /// Zero velocity field for an `nx × ny` cell grid with spacing `dx`.
    pub fn new(nx: usize, ny: usize, dx: f64) -> Self {
        assert!(nx > 0 && ny > 0, "MacGrid dimensions must be positive");
        assert!(dx > 0.0 && dx.is_finite(), "dx must be positive");
        Self {
            nx,
            ny,
            dx,
            u: Field2::new(nx + 1, ny),
            v: Field2::new(nx, ny + 1),
        }
    }

    /// Grid width in cells.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in cells.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Cell size.
    #[inline]
    pub fn dx(&self) -> f64 {
        self.dx
    }

    /// Samples the x-velocity at an arbitrary position (grid units).
    ///
    /// `u(i, j)` sits at `(i, j + 0.5)`, so the sampler shifts y by 0.5.
    pub fn sample_u(&self, x: f64, y: f64) -> f64 {
        self.u.sample_linear(x, y - 0.5)
    }

    /// Samples the y-velocity at an arbitrary position (grid units).
    pub fn sample_v(&self, x: f64, y: f64) -> f64 {
        self.v.sample_linear(x - 0.5, y)
    }

    /// Samples the full velocity vector at a position (grid units).
    pub fn sample(&self, x: f64, y: f64) -> (f64, f64) {
        (self.sample_u(x, y), self.sample_v(x, y))
    }

    /// Maximum velocity magnitude (∞-norm over faces), used for CFL
    /// time-step control.
    pub fn max_speed(&self) -> f64 {
        self.u.max_abs().max(self.v.max_abs())
    }

    /// Central divergence per cell: `(∂u/∂x + ∂v/∂y)` with face
    /// differences, i.e. `(u(i+1,j) − u(i,j) + v(i,j+1) − v(i,j)) / dx`.
    ///
    /// Solid and empty cells get divergence 0 (no pressure equation is
    /// solved there).
    pub fn divergence(&self, flags: &CellFlags) -> Field2 {
        assert_eq!((flags.nx(), flags.ny()), (self.nx, self.ny), "flag shape");
        Field2::from_fn(self.nx, self.ny, |i, j| {
            if !flags.is_fluid(i, j) {
                return 0.0;
            }
            (self.u.at(i + 1, j) - self.u.at(i, j) + self.v.at(i, j + 1) - self.v.at(i, j))
                / self.dx
        })
    }

    /// Zeroes the normal velocity on every face touching a solid cell
    /// (no-slip for the normal component, the standard MAC treatment of
    /// solid boundaries).
    pub fn enforce_solid_boundaries(&mut self, flags: &CellFlags) {
        assert_eq!((flags.nx(), flags.ny()), (self.nx, self.ny), "flag shape");
        for j in 0..self.ny {
            for i in 0..=self.nx {
                let left = flags.at_or_solid(i as isize - 1, j as isize);
                let right = flags.at_or_solid(i as isize, j as isize);
                if left == CellType::Solid || right == CellType::Solid {
                    self.u.set(i, j, 0.0);
                }
            }
        }
        for j in 0..=self.ny {
            for i in 0..self.nx {
                let below = flags.at_or_solid(i as isize, j as isize - 1);
                let above = flags.at_or_solid(i as isize, j as isize);
                if below == CellType::Solid || above == CellType::Solid {
                    self.v.set(i, j, 0.0);
                }
            }
        }
    }

    /// Subtracts the pressure gradient: `u ← u − scale · ∇p`, where
    /// `scale = Δt / (ρ · dx)` (Algorithm 1 line 18). Faces adjacent to
    /// a solid keep zero normal velocity; empty neighbours contribute a
    /// ghost pressure of 0 (free surface).
    pub fn subtract_pressure_gradient(&mut self, p: &Field2, flags: &CellFlags, scale: f64) {
        assert_eq!((p.w(), p.h()), (self.nx, self.ny), "pressure shape");
        assert_eq!((flags.nx(), flags.ny()), (self.nx, self.ny), "flag shape");
        let cell_p = |i: isize, j: isize| -> Option<f64> {
            match flags.at_or_solid(i, j) {
                CellType::Fluid => Some(p.at(i as usize, j as usize)),
                CellType::Empty => Some(0.0),
                CellType::Solid => None,
            }
        };
        for j in 0..self.ny {
            for i in 0..=self.nx {
                let pl = cell_p(i as isize - 1, j as isize);
                let pr = cell_p(i as isize, j as isize);
                match (pl, pr) {
                    (Some(a), Some(b)) => {
                        let val = self.u.at(i, j) - scale * (b - a);
                        self.u.set(i, j, val);
                    }
                    // Face touches a solid: normal velocity is pinned.
                    _ => self.u.set(i, j, 0.0),
                }
            }
        }
        for j in 0..=self.ny {
            for i in 0..self.nx {
                let pb = cell_p(i as isize, j as isize - 1);
                let pt = cell_p(i as isize, j as isize);
                match (pb, pt) {
                    (Some(a), Some(b)) => {
                        let val = self.v.at(i, j) - scale * (b - a);
                        self.v.set(i, j, val);
                    }
                    _ => self.v.set(i, j, 0.0),
                }
            }
        }
    }

    /// True if every velocity sample is finite.
    pub fn all_finite(&self) -> bool {
        self.u.all_finite() && self.v.all_finite()
    }
}

impl ToJson for MacGrid {
    fn to_json_value(&self) -> Value {
        obj([
            ("nx", self.nx.to_json_value()),
            ("ny", self.ny.to_json_value()),
            ("dx", self.dx.to_json_value()),
            ("u", self.u.to_json_value()),
            ("v", self.v.to_json_value()),
        ])
    }
}

impl FromJson for MacGrid {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        let nx: usize = v.field("nx")?;
        let ny: usize = v.field("ny")?;
        let dx: f64 = v.field("dx")?;
        let u: Field2 = v.field("u")?;
        let vf: Field2 = v.field("v")?;
        if nx == 0
            || ny == 0
            || !(dx > 0.0 && dx.is_finite())
            || (u.w(), u.h()) != (nx + 1, ny)
            || (vf.w(), vf.h()) != (nx, ny + 1)
        {
            return Err(JsonError {
                at: 0,
                message: format!(
                    "MacGrid shape mismatch: {nx}x{ny} dx={dx} u={}x{} v={}x{}",
                    u.w(),
                    u.h(),
                    vf.w(),
                    vf.h()
                ),
            });
        }
        Ok(MacGrid { nx, ny, dx, u, v: vf })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staggered_dimensions() {
        let g = MacGrid::new(4, 3, 1.0);
        assert_eq!((g.u.w(), g.u.h()), (5, 3));
        assert_eq!((g.v.w(), g.v.h()), (4, 4));
    }

    #[test]
    fn uniform_flow_has_zero_divergence() {
        let mut g = MacGrid::new(8, 8, 1.0);
        g.u.fill(2.0);
        g.v.fill(-1.0);
        let flags = CellFlags::all_fluid(8, 8);
        let div = g.divergence(&flags);
        assert_eq!(div.max_abs(), 0.0);
    }

    #[test]
    fn linear_velocity_has_constant_divergence() {
        // u = x  =>  du/dx = 1, v = 0  =>  div = 1 everywhere.
        let mut g = MacGrid::new(6, 6, 1.0);
        for j in 0..6 {
            for i in 0..=6 {
                g.u.set(i, j, i as f64);
            }
        }
        let flags = CellFlags::all_fluid(6, 6);
        let div = g.divergence(&flags);
        for j in 0..6 {
            for i in 0..6 {
                assert!((div.at(i, j) - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn divergence_respects_dx() {
        let mut g = MacGrid::new(4, 4, 0.5);
        for j in 0..4 {
            for i in 0..=4 {
                g.u.set(i, j, i as f64);
            }
        }
        let flags = CellFlags::all_fluid(4, 4);
        let div = g.divergence(&flags);
        assert!((div.at(1, 1) - 2.0).abs() < 1e-12); // Δu/dx = 1/0.5
    }

    #[test]
    fn sampling_recovers_face_values() {
        let mut g = MacGrid::new(4, 4, 1.0);
        g.u.set(2, 1, 5.0);
        // u(2,1) lives at (2.0, 1.5).
        assert!((g.sample_u(2.0, 1.5) - 5.0).abs() < 1e-12);
        g.v.set(1, 2, -3.0);
        // v(1,2) lives at (1.5, 2.0).
        assert!((g.sample_v(1.5, 2.0) + 3.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_field_samples_uniform() {
        let mut g = MacGrid::new(5, 5, 1.0);
        g.u.fill(1.5);
        g.v.fill(0.25);
        for &(x, y) in &[(0.1, 0.1), (2.5, 2.5), (4.9, 4.9)] {
            let (u, v) = g.sample(x, y);
            assert!((u - 1.5).abs() < 1e-12);
            assert!((v - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn solid_boundary_enforcement() {
        let mut g = MacGrid::new(6, 6, 1.0);
        g.u.fill(1.0);
        g.v.fill(1.0);
        let flags = CellFlags::closed_box(6, 6);
        g.enforce_solid_boundaries(&flags);
        // Faces adjacent to the wall column i=0 are zero.
        for j in 0..6 {
            assert_eq!(g.u.at(0, j), 0.0);
            assert_eq!(g.u.at(1, j), 0.0); // face between solid(0,j) and fluid(1,j)
        }
        // Interior faces between fluid cells keep their velocity.
        assert_eq!(g.u.at(3, 3), 1.0);
    }

    #[test]
    fn pressure_gradient_drives_flow_apart() {
        // Single high-pressure cell pushes outward on its four faces.
        let mut g = MacGrid::new(3, 3, 1.0);
        let flags = CellFlags::all_fluid(3, 3);
        let mut p = Field2::new(3, 3);
        p.set(1, 1, 4.0);
        g.subtract_pressure_gradient(&p, &flags, 1.0);
        // u(1,1) sits between cells (0,1) and (1,1): −(p₁−p₀) = −4 (flow pushed left).
        assert_eq!(g.u.at(1, 1), -4.0);
        // u(2,1) sits between cells (1,1) and (2,1): −(p₂−p₁) = +4 (flow pushed right).
        assert_eq!(g.u.at(2, 1), 4.0);
        // Same on the vertical faces.
        assert_eq!(g.v.at(1, 1), -4.0);
        assert_eq!(g.v.at(1, 2), 4.0);
    }

    #[test]
    fn projection_identity_for_constant_pressure() {
        let mut g = MacGrid::new(4, 4, 1.0);
        g.u.fill(2.0);
        g.v.fill(1.0);
        let flags = CellFlags::all_fluid(4, 4);
        let mut p = Field2::new(4, 4);
        p.fill(7.0);
        g.subtract_pressure_gradient(&p, &flags, 0.5);
        // Constant pressure => zero gradient => interior velocity
        // unchanged. Domain-boundary faces touch the implicit outside
        // wall and are pinned to zero.
        for j in 0..4 {
            for i in 1..4 {
                assert_eq!(g.u.at(i, j), 2.0);
            }
            assert_eq!(g.u.at(0, j), 0.0);
            assert_eq!(g.u.at(4, j), 0.0);
        }
        for i in 0..4 {
            for j in 1..4 {
                assert_eq!(g.v.at(i, j), 1.0);
            }
            assert_eq!(g.v.at(i, 0), 0.0);
            assert_eq!(g.v.at(i, 4), 0.0);
        }
    }

    #[test]
    fn json_round_trip() {
        let mut g = MacGrid::new(4, 3, 0.5);
        g.u.set(2, 1, 1.25);
        g.v.set(1, 2, -0.75);
        let json = sfn_obs::json::to_json_string(&g);
        let back: MacGrid = sfn_obs::json::from_json_str(&json).expect("decode");
        assert_eq!(g, back);
    }

    #[test]
    fn json_rejects_inconsistent_staggering() {
        let g = MacGrid::new(4, 3, 0.5);
        let mut json = sfn_obs::json::to_json_string(&g);
        // Claim a different cell count than the stored component fields.
        json = json.replacen("\"nx\":4", "\"nx\":5", 1);
        assert!(sfn_obs::json::from_json_str::<MacGrid>(&json).is_err());
    }
}
