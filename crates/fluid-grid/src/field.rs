//! Dense 2-D field storage with bilinear sampling.
//!
//! One structure serves cell-centred scalars (density, pressure,
//! divergence) and the staggered velocity components (which simply have
//! different dimensions and sampling offsets).

use sfn_obs::json::{obj, FromJson, JsonError, ToJson, Value};

/// A dense row-major `w × h` array of `f64`.
///
/// Index `(i, j)` addresses column `i ∈ [0, w)` and row `j ∈ [0, h)`;
/// element `(i, j)` lives at `data[j * w + i]`. Positions handed to the
/// samplers are in *grid units* — the caller applies any staggering
/// offset before sampling (see [`crate::mac::MacGrid`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Field2 {
    w: usize,
    h: usize,
    data: Vec<f64>,
}

impl Field2 {
    /// Creates a zero-filled field of size `w × h`.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(w: usize, h: usize) -> Self {
        assert!(w > 0 && h > 0, "Field2 dimensions must be positive");
        Self {
            w,
            h,
            data: vec![0.0; w * h],
        }
    }

    /// Creates a field whose element `(i, j)` is `f(i, j)`.
    pub fn from_fn(w: usize, h: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut out = Self::new(w, h);
        for j in 0..h {
            for i in 0..w {
                out.data[j * w + i] = f(i, j);
            }
        }
        out
    }

    /// Creates a field from existing row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != w * h`.
    pub fn from_vec(w: usize, h: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), w * h, "data length mismatch");
        assert!(w > 0 && h > 0, "Field2 dimensions must be positive");
        Self { w, h, data }
    }

    /// Width (number of columns).
    #[inline]
    pub fn w(&self) -> usize {
        self.w
    }

    /// Height (number of rows).
    #[inline]
    pub fn h(&self) -> usize {
        self.h
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the field holds no elements (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat index of `(i, j)`.
    #[inline]
    pub fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.w && j < self.h, "({i},{j}) out of {}x{}", self.w, self.h);
        j * self.w + i
    }

    /// Element access.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[self.idx(i, j)]
    }

    /// Mutable element access.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        let k = self.idx(i, j);
        &mut self.data[k]
    }

    /// Sets element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let k = self.idx(i, j);
        self.data[k] = v;
    }

    /// Element access with clamped (replicated-edge) coordinates.
    #[inline]
    pub fn at_clamped(&self, i: isize, j: isize) -> f64 {
        let ci = i.clamp(0, self.w as isize - 1) as usize;
        let cj = j.clamp(0, self.h as isize - 1) as usize;
        self.at(ci, cj)
    }

    /// Raw data slice (row-major).
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data slice (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Fills the field with a constant.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// `self += scale * other`, element-wise.
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn add_scaled(&mut self, other: &Field2, scale: f64) {
        assert_eq!((self.w, self.h), (other.w, other.h), "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Element-wise multiply by a scalar.
    pub fn scale(&mut self, s: f64) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Maximum absolute value (0 for all-zero fields).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean absolute difference against another field — the quality-loss
    /// kernel of Eq. 3: `1/(N·M) Σ |ρ*_ij − ρ_ij|`.
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn mean_abs_diff(&self, other: &Field2) -> f64 {
        assert_eq!((self.w, self.h), (other.w, other.h), "shape mismatch");
        let s: f64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .sum();
        s / self.data.len() as f64
    }

    /// Bilinear sample at position `(x, y)` in index space, i.e. the
    /// value stored at `(i, j)` is located at position `(i, j)`.
    /// Coordinates are clamped to the valid interpolation domain.
    pub fn sample_linear(&self, x: f64, y: f64) -> f64 {
        let x = x.clamp(0.0, (self.w - 1) as f64);
        let y = y.clamp(0.0, (self.h - 1) as f64);
        let i0 = (x.floor() as usize).min(self.w - 1);
        let j0 = (y.floor() as usize).min(self.h - 1);
        let i1 = (i0 + 1).min(self.w - 1);
        let j1 = (j0 + 1).min(self.h - 1);
        let fx = x - i0 as f64;
        let fy = y - j0 as f64;
        let v00 = self.at(i0, j0);
        let v10 = self.at(i1, j0);
        let v01 = self.at(i0, j1);
        let v11 = self.at(i1, j1);
        let a = v00 + (v10 - v00) * fx;
        let b = v01 + (v11 - v01) * fx;
        a + (b - a) * fy
    }

    /// Monotone Catmull-Rom (cubic) sample at `(x, y)` in index space.
    ///
    /// Third-order accurate where smooth; the result is clamped to the
    /// local 4×4 stencil's range, so the sampler — like
    /// [`Field2::sample_linear`] — cannot overshoot (mantaflow's
    /// clamped cubic advection mode does the same).
    pub fn sample_cubic(&self, x: f64, y: f64) -> f64 {
        let x = x.clamp(0.0, (self.w - 1) as f64);
        let y = y.clamp(0.0, (self.h - 1) as f64);
        let i0 = (x.floor() as isize).min(self.w as isize - 1);
        let j0 = (y.floor() as isize).min(self.h as isize - 1);
        let fx = x - i0 as f64;
        let fy = y - j0 as f64;

        #[inline]
        fn catmull_rom(p0: f64, p1: f64, p2: f64, p3: f64, t: f64) -> f64 {
            let a = -0.5 * p0 + 1.5 * p1 - 1.5 * p2 + 0.5 * p3;
            let b = p0 - 2.5 * p1 + 2.0 * p2 - 0.5 * p3;
            let c = -0.5 * p0 + 0.5 * p2;
            ((a * t + b) * t + c) * t + p1
        }

        let mut rows = [0.0; 4];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (r, row) in rows.iter_mut().enumerate() {
            let j = j0 - 1 + r as isize;
            let p: [f64; 4] = std::array::from_fn(|k| self.at_clamped(i0 - 1 + k as isize, j));
            // Track the inner 2x2 stencil for the monotonicity clamp.
            if (1..=2).contains(&(j - j0 + 1)) {
                lo = lo.min(p[1]).min(p[2]);
                hi = hi.max(p[1]).max(p[2]);
            }
            *row = catmull_rom(p[0], p[1], p[2], p[3], fx);
        }
        let v = catmull_rom(rows[0], rows[1], rows[2], rows[3], fy);
        v.clamp(lo, hi)
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Dot product with another field of identical shape.
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn dot(&self, other: &Field2) -> f64 {
        assert_eq!((self.w, self.h), (other.w, other.h), "shape mismatch");
        self.data.iter().zip(&other.data).map(|(&a, &b)| a * b).sum()
    }
}

impl ToJson for Field2 {
    fn to_json_value(&self) -> Value {
        obj([
            ("w", self.w.to_json_value()),
            ("h", self.h.to_json_value()),
            ("data", self.data.to_json_value()),
        ])
    }
}

impl FromJson for Field2 {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        let w: usize = v.field("w")?;
        let h: usize = v.field("h")?;
        let data: Vec<f64> = v.field("data")?;
        if w == 0 || h == 0 || data.len() != w * h {
            return Err(JsonError {
                at: 0,
                message: format!(
                    "Field2 shape mismatch: {w}x{h} with {} elements",
                    data.len()
                ),
            });
        }
        Ok(Field2 { w, h, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trip() {
        let mut f = Field2::new(4, 3);
        f.set(2, 1, 7.5);
        assert_eq!(f.at(2, 1), 7.5);
        assert_eq!(f.data()[4 + 2], 7.5);
    }

    #[test]
    fn from_fn_layout() {
        let f = Field2::from_fn(3, 2, |i, j| (10 * j + i) as f64);
        assert_eq!(f.at(0, 0), 0.0);
        assert_eq!(f.at(2, 0), 2.0);
        assert_eq!(f.at(0, 1), 10.0);
        assert_eq!(f.at(2, 1), 12.0);
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn from_vec_checks_length() {
        let _ = Field2::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn clamped_access() {
        let f = Field2::from_fn(2, 2, |i, j| (i + 2 * j) as f64);
        assert_eq!(f.at_clamped(-5, 0), f.at(0, 0));
        assert_eq!(f.at_clamped(9, 9), f.at(1, 1));
    }

    #[test]
    fn bilinear_reproduces_bilinear_function() {
        // f(x,y) = 2x + 3y + 1 is reproduced exactly by bilinear interp.
        let f = Field2::from_fn(5, 5, |i, j| 2.0 * i as f64 + 3.0 * j as f64 + 1.0);
        for &(x, y) in &[(0.25, 0.75), (1.5, 2.5), (3.9, 0.1)] {
            let want = 2.0 * x + 3.0 * y + 1.0;
            assert!((f.sample_linear(x, y) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn bilinear_clamps_outside_domain() {
        let f = Field2::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(f.sample_linear(-4.0, -4.0), f.at(0, 0));
        assert_eq!(f.sample_linear(99.0, 99.0), f.at(2, 2));
    }

    #[test]
    fn sample_at_nodes_is_exact() {
        let f = Field2::from_fn(4, 4, |i, j| ((i * 7 + j * 13) % 5) as f64);
        for j in 0..4 {
            for i in 0..4 {
                assert_eq!(f.sample_linear(i as f64, j as f64), f.at(i, j));
            }
        }
    }

    #[test]
    fn mean_abs_diff_matches_eq3() {
        let a = Field2::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Field2::new(2, 2);
        // |0|+|1|+|1|+|2| over 4 cells = 1.0
        assert!((a.mean_abs_diff(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn add_scaled_and_dot() {
        let mut a = Field2::from_fn(2, 2, |i, _| i as f64);
        let b = Field2::from_fn(2, 2, |_, j| j as f64);
        a.add_scaled(&b, 2.0);
        assert_eq!(a.at(1, 1), 3.0);
        let d = a.dot(&b);
        // a = [[0,1],[2,3]], b = [[0,0],[1,1]] -> dot = 2 + 3 = 5
        assert_eq!(d, 5.0);
    }

    #[test]
    fn cubic_reproduces_cubic_polynomials_in_1d() {
        // Catmull-Rom is exact for quadratics along a row.
        let f = Field2::from_fn(8, 3, |i, _| {
            let x = i as f64;
            0.5 * x * x - 2.0 * x + 1.0
        });
        for &x in &[1.25, 2.5, 4.75, 5.9] {
            let want = 0.5 * x * x - 2.0 * x + 1.0;
            let got = f.sample_cubic(x, 1.0);
            assert!((got - want).abs() < 1e-9, "x={x}: {got} vs {want}");
        }
    }

    #[test]
    fn cubic_at_nodes_is_exact() {
        let f = Field2::from_fn(6, 6, |i, j| ((i * 7 + j * 13) % 5) as f64);
        for j in 1..5 {
            for i in 1..5 {
                assert!((f.sample_cubic(i as f64, j as f64) - f.at(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cubic_clamped_to_local_stencil() {
        // A step function: cubic interpolation would overshoot without
        // the clamp.
        let f = Field2::from_fn(8, 8, |i, _| if i < 4 { 0.0 } else { 1.0 });
        for &x in &[2.5, 3.25, 3.5, 3.75, 4.5] {
            let v = f.sample_cubic(x, 4.0);
            assert!((0.0..=1.0).contains(&v), "overshoot at {x}: {v}");
        }
    }

    #[test]
    fn cubic_sharper_than_linear_on_smooth_bump() {
        let f = Field2::from_fn(16, 16, |i, j| {
            let dx = i as f64 - 8.0;
            let dy = j as f64 - 8.0;
            (-(dx * dx + dy * dy) / 6.0).exp()
        });
        // At an off-grid point near the peak, cubic should be closer to
        // the true Gaussian than linear.
        let (x, y) = (8.5, 8.5);
        let truth = (-(0.5f64 * 0.5 + 0.5 * 0.5) / 6.0).exp();
        let ec = (f.sample_cubic(x, y) - truth).abs();
        let el = (f.sample_linear(x, y) - truth).abs();
        assert!(ec < el, "cubic err {ec} vs linear err {el}");
    }

    #[test]
    fn finite_detection() {
        let mut f = Field2::new(2, 2);
        assert!(f.all_finite());
        f.set(0, 1, f64::NAN);
        assert!(!f.all_finite());
    }

    #[test]
    fn json_round_trip() {
        let f = Field2::from_fn(4, 3, |i, j| (i * 10 + j) as f64 * 0.25);
        let json = sfn_obs::json::to_json_string(&f);
        let back: Field2 = sfn_obs::json::from_json_str(&json).expect("decode");
        assert_eq!(f, back);
    }

    #[test]
    fn json_rejects_shape_mismatch() {
        let bad = r#"{"w":3,"h":2,"data":[0.0,1.0,2.0]}"#;
        assert!(sfn_obs::json::from_json_str::<Field2>(bad).is_err());
    }
}
