//! Field import/export: PGM images (for eyeballing smoke frames) and
//! CSV (for external plotting of the bench series).

use crate::{CellFlags, Field2};
use std::io::Write;
use std::path::Path;

/// Writes a field as a binary 8-bit PGM image, mapping `[lo, hi]` to
/// `[0, 255]` (values outside are clamped). Row 0 of the image is the
/// *top* of the domain (grid `j = h-1`), matching image conventions.
pub fn write_pgm(field: &Field2, lo: f64, hi: f64, path: &Path) -> std::io::Result<()> {
    assert!(hi > lo, "invalid value range");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut out = Vec::with_capacity(field.len() + 64);
    write!(out, "P5\n{} {}\n255\n", field.w(), field.h())?;
    for j in (0..field.h()).rev() {
        for i in 0..field.w() {
            let t = ((field.at(i, j) - lo) / (hi - lo)).clamp(0.0, 1.0);
            out.push((t * 255.0).round() as u8);
        }
    }
    std::fs::write(path, out)
}

/// Writes a field as a PGM with solid cells rendered mid-grey, giving
/// quick-look smoke frames with visible geometry.
pub fn write_pgm_with_geometry(
    field: &Field2,
    flags: &CellFlags,
    lo: f64,
    hi: f64,
    path: &Path,
) -> std::io::Result<()> {
    assert!(hi > lo, "invalid value range");
    assert_eq!((flags.nx(), flags.ny()), (field.w(), field.h()), "shape");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut out = Vec::with_capacity(field.len() + 64);
    write!(out, "P5\n{} {}\n255\n", field.w(), field.h())?;
    for j in (0..field.h()).rev() {
        for i in 0..field.w() {
            if flags.is_solid(i, j) {
                out.push(128);
            } else {
                let t = ((field.at(i, j) - lo) / (hi - lo)).clamp(0.0, 1.0);
                out.push((t * 255.0).round() as u8);
            }
        }
    }
    std::fs::write(path, out)
}

/// Writes a field as CSV (one row per grid row, `j = 0` first).
pub fn write_csv(field: &Field2, path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut s = String::with_capacity(field.len() * 8);
    for j in 0..field.h() {
        for i in 0..field.w() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{}", field.at(i, j)));
        }
        s.push('\n');
    }
    std::fs::write(path, s)
}

/// Reads a CSV written by [`write_csv`] back into a field.
pub fn read_csv(path: &Path) -> std::io::Result<Field2> {
    let text = std::fs::read_to_string(path)?;
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let row: Result<Vec<f64>, _> = line.split(',').map(|t| t.trim().parse()).collect();
        rows.push(row.map_err(|e| std::io::Error::other(format!("bad CSV number: {e}")))?);
    }
    if rows.is_empty() {
        return Err(std::io::Error::other("empty CSV"));
    }
    let w = rows[0].len();
    if rows.iter().any(|r| r.len() != w) {
        return Err(std::io::Error::other("ragged CSV rows"));
    }
    let h = rows.len();
    let mut data = Vec::with_capacity(w * h);
    for row in rows {
        data.extend(row);
    }
    Ok(Field2::from_vec(w, h, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join("sfn-io-tests").join(name)
    }

    #[test]
    fn pgm_header_and_size() {
        let f = Field2::from_fn(4, 3, |i, j| (i + j) as f64);
        let p = tmp("a.pgm");
        write_pgm(&f, 0.0, 5.0, &p).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        assert!(bytes.starts_with(b"P5\n4 3\n255\n"));
        assert_eq!(bytes.len(), b"P5\n4 3\n255\n".len() + 12);
    }

    #[test]
    fn pgm_flips_vertically_and_clamps() {
        let mut f = Field2::new(2, 2);
        f.set(0, 1, 99.0); // top-left of the domain
        let p = tmp("b.pgm");
        write_pgm(&f, 0.0, 1.0, &p).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        let pixels = &bytes[bytes.len() - 4..];
        // First pixel row = domain top: clamped 255 then 0.
        assert_eq!(pixels, &[255, 0, 0, 0]);
    }

    #[test]
    fn geometry_renders_grey() {
        let f = Field2::new(3, 3);
        let mut flags = crate::CellFlags::all_fluid(3, 3);
        flags.set(1, 1, crate::CellType::Solid);
        let p = tmp("c.pgm");
        write_pgm_with_geometry(&f, &flags, 0.0, 1.0, &p).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        let pixels = &bytes[bytes.len() - 9..];
        assert_eq!(pixels[4], 128); // centre pixel
    }

    #[test]
    fn csv_round_trip() {
        let f = Field2::from_fn(5, 4, |i, j| i as f64 * 1.5 - j as f64 / 3.0);
        let p = tmp("d.csv");
        write_csv(&f, &p).unwrap();
        let back = read_csv(&p).unwrap();
        assert_eq!(back.w(), 5);
        assert_eq!(back.h(), 4);
        for (a, b) in f.data().iter().zip(back.data()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn read_csv_rejects_garbage() {
        let p = tmp("e.csv");
        std::fs::create_dir_all(p.parent().unwrap()).unwrap();
        std::fs::write(&p, "1,2\n3\n").unwrap();
        assert!(read_csv(&p).is_err());
        std::fs::write(&p, "1,x\n").unwrap();
        assert!(read_csv(&p).is_err());
    }
}
