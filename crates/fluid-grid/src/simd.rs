//! Vectorised f64 slice primitives for the solver and advection hot
//! paths.
//!
//! Every public function dispatches on [`sfn_par::simd::level`] between
//! an always-compiled scalar reference (`*_scalar`) and `std::arch`
//! variants (AVX2 on x86_64, NEON on aarch64). The scalar variants are
//! the semantic ground truth: the `simd_diff` fuzz target and the
//! property tests in this module compare the vector paths against them.
//!
//! Rounding contract: the element-wise kernels ([`axpy`], [`xpay`],
//! [`bilinear4`]) perform *exactly* the scalar operation sequence with
//! plain mul/add (no FMA contraction), so their vector results are
//! bit-identical to the scalar reference. The reductions ([`dot`],
//! [`norm_sq`], [`axpy_norm_sq`]) re-associate the sum across lanes and
//! therefore agree only to rounding (a few ULP on well-scaled data).

use sfn_par::simd::{level, SimdLevel};

// ------------------------------------------------------------- dot

/// Scalar reference: `Σ a[i]·b[i]` in index order.
pub fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        s += x * y;
    }
    s
}

/// `Σ a[i]·b[i]`, vector-dispatched (lane-reassociated sum).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    match level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { dot_avx2(a, b) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { dot_neon(a, b) },
        _ => dot_scalar(a, b),
    }
}

/// `Σ a[i]²`, vector-dispatched.
pub fn norm_sq(a: &[f64]) -> f64 {
    dot(a, a)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_avx2(a: &[f64], b: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let n = a.len();
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let mut i = 0;
    while i + 8 <= n {
        let a0 = _mm256_loadu_pd(a.as_ptr().add(i));
        let b0 = _mm256_loadu_pd(b.as_ptr().add(i));
        let a1 = _mm256_loadu_pd(a.as_ptr().add(i + 4));
        let b1 = _mm256_loadu_pd(b.as_ptr().add(i + 4));
        acc0 = _mm256_fmadd_pd(a0, b0, acc0);
        acc1 = _mm256_fmadd_pd(a1, b1, acc1);
        i += 8;
    }
    let acc = _mm256_add_pd(acc0, acc1);
    let lo = _mm256_castpd256_pd128(acc);
    let hi = _mm256_extractf128_pd::<1>(acc);
    let s2 = _mm_add_pd(lo, hi);
    let s1 = _mm_add_sd(s2, _mm_unpackhi_pd(s2, s2));
    let mut s = _mm_cvtsd_f64(s1);
    while i < n {
        s += a[i] * b[i];
        i += 1;
    }
    s
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn dot_neon(a: &[f64], b: &[f64]) -> f64 {
    use std::arch::aarch64::*;
    let n = a.len();
    let mut acc = vdupq_n_f64(0.0);
    let mut i = 0;
    while i + 2 <= n {
        let av = vld1q_f64(a.as_ptr().add(i));
        let bv = vld1q_f64(b.as_ptr().add(i));
        acc = vfmaq_f64(acc, av, bv);
        i += 2;
    }
    let mut s = vaddvq_f64(acc);
    while i < n {
        s += a[i] * b[i];
        i += 1;
    }
    s
}

// ------------------------------------------------------------- axpy

/// Scalar reference: `y[i] += alpha·x[i]` (mul then add, no FMA).
pub fn axpy_scalar(y: &mut [f64], x: &[f64], alpha: f64) {
    debug_assert_eq!(y.len(), x.len());
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// `y += alpha·x`, vector-dispatched; bit-identical to the scalar
/// reference (element-wise, no contraction).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn axpy(y: &mut [f64], x: &[f64], alpha: f64) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    match level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { axpy_avx2(y, x, alpha) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { axpy_neon(y, x, alpha) },
        _ => axpy_scalar(y, x, alpha),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2(y: &mut [f64], x: &[f64], alpha: f64) {
    use std::arch::x86_64::*;
    let n = y.len();
    let av = _mm256_set1_pd(alpha);
    let mut i = 0;
    while i + 4 <= n {
        let xv = _mm256_loadu_pd(x.as_ptr().add(i));
        let yv = _mm256_loadu_pd(y.as_ptr().add(i));
        // mul + add (not FMA) to match the scalar rounding exactly.
        let r = _mm256_add_pd(yv, _mm256_mul_pd(av, xv));
        _mm256_storeu_pd(y.as_mut_ptr().add(i), r);
        i += 4;
    }
    while i < n {
        y[i] += alpha * x[i];
        i += 1;
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn axpy_neon(y: &mut [f64], x: &[f64], alpha: f64) {
    use std::arch::aarch64::*;
    let n = y.len();
    let av = vdupq_n_f64(alpha);
    let mut i = 0;
    while i + 2 <= n {
        let xv = vld1q_f64(x.as_ptr().add(i));
        let yv = vld1q_f64(y.as_ptr().add(i));
        let r = vaddq_f64(yv, vmulq_f64(av, xv));
        vst1q_f64(y.as_mut_ptr().add(i), r);
        i += 2;
    }
    while i < n {
        y[i] += alpha * x[i];
        i += 1;
    }
}

// ------------------------------------------------------------- xpay

/// Scalar reference: `s[i] = z[i] + beta·s[i]` (the PCG direction
/// update).
pub fn xpay_scalar(s: &mut [f64], z: &[f64], beta: f64) {
    debug_assert_eq!(s.len(), z.len());
    for (sv, &zv) in s.iter_mut().zip(z) {
        *sv = zv + beta * *sv;
    }
}

/// `s = z + beta·s`, vector-dispatched; bit-identical to scalar.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn xpay(s: &mut [f64], z: &[f64], beta: f64) {
    assert_eq!(s.len(), z.len(), "xpay length mismatch");
    match level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { xpay_avx2(s, z, beta) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { xpay_neon(s, z, beta) },
        _ => xpay_scalar(s, z, beta),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn xpay_avx2(s: &mut [f64], z: &[f64], beta: f64) {
    use std::arch::x86_64::*;
    let n = s.len();
    let bv = _mm256_set1_pd(beta);
    let mut i = 0;
    while i + 4 <= n {
        let sv = _mm256_loadu_pd(s.as_ptr().add(i));
        let zv = _mm256_loadu_pd(z.as_ptr().add(i));
        let r = _mm256_add_pd(zv, _mm256_mul_pd(bv, sv));
        _mm256_storeu_pd(s.as_mut_ptr().add(i), r);
        i += 4;
    }
    while i < n {
        s[i] = z[i] + beta * s[i];
        i += 1;
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn xpay_neon(s: &mut [f64], z: &[f64], beta: f64) {
    use std::arch::aarch64::*;
    let n = s.len();
    let bv = vdupq_n_f64(beta);
    let mut i = 0;
    while i + 2 <= n {
        let sv = vld1q_f64(s.as_ptr().add(i));
        let zv = vld1q_f64(z.as_ptr().add(i));
        let r = vaddq_f64(zv, vmulq_f64(bv, sv));
        vst1q_f64(s.as_mut_ptr().add(i), r);
        i += 2;
    }
    while i < n {
        s[i] = z[i] + beta * s[i];
        i += 1;
    }
}

// ------------------------------------------- fused axpy + norm²

/// Scalar reference for the fused residual update: `r += alpha·a`,
/// returning `Σ r[i]²` of the *updated* residual.
pub fn axpy_norm_sq_scalar(r: &mut [f64], a: &[f64], alpha: f64) -> f64 {
    debug_assert_eq!(r.len(), a.len());
    let mut s = 0.0;
    for (rv, &av) in r.iter_mut().zip(a) {
        *rv += alpha * av;
        s += *rv * *rv;
    }
    s
}

/// Fused `r += alpha·a; return ‖r‖²` — one pass over the residual
/// instead of the axpy-then-norm two-pass the scalar PCG loop did.
/// Updated elements are bit-identical to scalar; the returned sum is
/// lane-reassociated.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn axpy_norm_sq(r: &mut [f64], a: &[f64], alpha: f64) -> f64 {
    assert_eq!(r.len(), a.len(), "axpy_norm_sq length mismatch");
    match level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { axpy_norm_sq_avx2(r, a, alpha) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { axpy_norm_sq_neon(r, a, alpha) },
        _ => axpy_norm_sq_scalar(r, a, alpha),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn axpy_norm_sq_avx2(r: &mut [f64], a: &[f64], alpha: f64) -> f64 {
    use std::arch::x86_64::*;
    let n = r.len();
    let av = _mm256_set1_pd(alpha);
    let mut acc = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        let xv = _mm256_loadu_pd(a.as_ptr().add(i));
        let rv = _mm256_loadu_pd(r.as_ptr().add(i));
        let nr = _mm256_add_pd(rv, _mm256_mul_pd(av, xv));
        _mm256_storeu_pd(r.as_mut_ptr().add(i), nr);
        acc = _mm256_fmadd_pd(nr, nr, acc);
        i += 4;
    }
    let lo = _mm256_castpd256_pd128(acc);
    let hi = _mm256_extractf128_pd::<1>(acc);
    let s2 = _mm_add_pd(lo, hi);
    let s1 = _mm_add_sd(s2, _mm_unpackhi_pd(s2, s2));
    let mut s = _mm_cvtsd_f64(s1);
    while i < n {
        r[i] += alpha * a[i];
        s += r[i] * r[i];
        i += 1;
    }
    s
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn axpy_norm_sq_neon(r: &mut [f64], a: &[f64], alpha: f64) -> f64 {
    use std::arch::aarch64::*;
    let n = r.len();
    let av = vdupq_n_f64(alpha);
    let mut acc = vdupq_n_f64(0.0);
    let mut i = 0;
    while i + 2 <= n {
        let xv = vld1q_f64(a.as_ptr().add(i));
        let rv = vld1q_f64(r.as_ptr().add(i));
        let nr = vaddq_f64(rv, vmulq_f64(av, xv));
        vst1q_f64(r.as_mut_ptr().add(i), nr);
        acc = vfmaq_f64(acc, nr, nr);
        i += 2;
    }
    let mut s = vaddvq_f64(acc);
    while i < n {
        r[i] += alpha * a[i];
        s += r[i] * r[i];
        i += 1;
    }
    s
}

// ------------------------------------------------------- bilinear4

/// Scalar reference: clamped bilinear sample of a `w×h` row-major grid
/// at `(x, y)` in index space — the exact operation sequence of
/// `Field2::sample_linear`.
#[inline]
pub fn bilinear_scalar(data: &[f64], w: usize, h: usize, x: f64, y: f64) -> f64 {
    let x = x.clamp(0.0, (w - 1) as f64);
    let y = y.clamp(0.0, (h - 1) as f64);
    let i0 = (x.floor() as usize).min(w - 1);
    let j0 = (y.floor() as usize).min(h - 1);
    let i1 = (i0 + 1).min(w - 1);
    let j1 = (j0 + 1).min(h - 1);
    let fx = x - i0 as f64;
    let fy = y - j0 as f64;
    let v00 = data[j0 * w + i0];
    let v10 = data[j0 * w + i1];
    let v01 = data[j1 * w + i0];
    let v11 = data[j1 * w + i1];
    let a = v00 + (v10 - v00) * fx;
    let b = v01 + (v11 - v01) * fx;
    a + (b - a) * fy
}

/// Four clamped bilinear samples at once, vector-dispatched. The AVX2
/// path gathers the 16 corner values and performs the same mul/add
/// lerp sequence as [`bilinear_scalar`], so results are bit-identical.
///
/// NaN coordinates are the one divergence from scalar `clamp` (which
/// panics on NaN bounds never, but propagates NaN): the vector clamp
/// maps NaN to index 0. Callers (advection backtraces over finite
/// fields) never produce NaN coordinates; the fuzz generator enforces
/// finiteness too.
///
/// # Panics
/// Panics if `data.len() != w*h` or the grid is empty.
pub fn bilinear4(data: &[f64], w: usize, h: usize, xs: &[f64; 4], ys: &[f64; 4]) -> [f64; 4] {
    assert_eq!(data.len(), w * h, "grid shape");
    assert!(w > 0 && h > 0, "empty grid");
    match level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { bilinear4_avx2(data, w, h, xs, ys) },
        _ => {
            let mut out = [0.0; 4];
            for k in 0..4 {
                out[k] = bilinear_scalar(data, w, h, xs[k], ys[k]);
            }
            out
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn bilinear4_avx2(data: &[f64], w: usize, h: usize, xs: &[f64; 4], ys: &[f64; 4]) -> [f64; 4] {
    use std::arch::x86_64::*;
    let zero = _mm256_setzero_pd();
    let wm1 = _mm256_set1_pd((w - 1) as f64);
    let hm1 = _mm256_set1_pd((h - 1) as f64);
    let wv = _mm256_set1_pd(w as f64);
    // Clamp into the interpolation domain. min(max(x, 0), w-1) maps
    // NaN to w-1 with this operand order? No: _mm_max_pd(NaN, 0)
    // returns the second operand (0) — NaN lands at index 0 either
    // way, which is fine per the documented contract.
    let x = _mm256_min_pd(_mm256_max_pd(_mm256_loadu_pd(xs.as_ptr()), zero), wm1);
    let y = _mm256_min_pd(_mm256_max_pd(_mm256_loadu_pd(ys.as_ptr()), zero), hm1);
    let i0 = _mm256_min_pd(_mm256_floor_pd(x), wm1);
    let j0 = _mm256_min_pd(_mm256_floor_pd(y), hm1);
    let one = _mm256_set1_pd(1.0);
    let i1 = _mm256_min_pd(_mm256_add_pd(i0, one), wm1);
    let j1 = _mm256_min_pd(_mm256_add_pd(j0, one), hm1);
    let fx = _mm256_sub_pd(x, i0);
    let fy = _mm256_sub_pd(y, j0);
    // Flat indices as doubles (exact for any grid that fits memory),
    // then truncate to i32 for the gathers.
    let base0 = _mm256_mul_pd(j0, wv);
    let base1 = _mm256_mul_pd(j1, wv);
    let idx00 = _mm256_cvttpd_epi32(_mm256_add_pd(base0, i0));
    let idx10 = _mm256_cvttpd_epi32(_mm256_add_pd(base0, i1));
    let idx01 = _mm256_cvttpd_epi32(_mm256_add_pd(base1, i0));
    let idx11 = _mm256_cvttpd_epi32(_mm256_add_pd(base1, i1));
    let p = data.as_ptr();
    let v00 = _mm256_i32gather_pd::<8>(p, idx00);
    let v10 = _mm256_i32gather_pd::<8>(p, idx10);
    let v01 = _mm256_i32gather_pd::<8>(p, idx01);
    let v11 = _mm256_i32gather_pd::<8>(p, idx11);
    // Same lerp sequence as the scalar reference (mul/add, no FMA).
    let a = _mm256_add_pd(v00, _mm256_mul_pd(_mm256_sub_pd(v10, v00), fx));
    let b = _mm256_add_pd(v01, _mm256_mul_pd(_mm256_sub_pd(v11, v01), fx));
    let r = _mm256_add_pd(a, _mm256_mul_pd(_mm256_sub_pd(b, a), fy));
    let mut out = [0.0f64; 4];
    _mm256_storeu_pd(out.as_mut_ptr(), r);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfn_par::simd::{with_level, SimdLevel};

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 37) % 101) as f64 / 13.0 - 3.5).collect()
    }

    #[test]
    fn dot_matches_scalar_to_rounding() {
        for n in [0, 1, 3, 7, 8, 31, 257] {
            let a = ramp(n);
            let b: Vec<f64> = a.iter().map(|v| v * 0.7 + 1.0).collect();
            let want = dot_scalar(&a, &b);
            let got = dot(&a, &b);
            assert!(
                (want - got).abs() <= 1e-12 * want.abs().max(1.0),
                "n={n}: {want} vs {got}"
            );
        }
    }

    #[test]
    fn axpy_and_xpay_bit_identical_to_scalar() {
        for n in [1, 4, 5, 64, 129] {
            let x = ramp(n);
            let mut y1 = ramp(n);
            y1.reverse();
            let mut y2 = y1.clone();
            axpy_scalar(&mut y1, &x, 0.37);
            axpy(&mut y2, &x, 0.37);
            assert_eq!(y1, y2, "axpy n={n}");
            let mut s1 = y1.clone();
            let mut s2 = y1.clone();
            xpay_scalar(&mut s1, &x, -1.25);
            xpay(&mut s2, &x, -1.25);
            assert_eq!(s1, s2, "xpay n={n}");
        }
    }

    #[test]
    fn fused_axpy_norm_matches_two_pass() {
        for n in [1, 4, 6, 100] {
            let a = ramp(n);
            let mut r1 = ramp(n);
            r1.rotate_left(n / 2);
            let mut r2 = r1.clone();
            let s_fused = axpy_norm_sq(&mut r1, &a, -0.61);
            axpy_scalar(&mut r2, &a, -0.61);
            assert_eq!(r1, r2, "residual update n={n}");
            let s_two = dot_scalar(&r2, &r2);
            assert!((s_fused - s_two).abs() <= 1e-12 * s_two.max(1.0));
        }
    }

    #[test]
    fn bilinear4_bit_identical_to_scalar_reference() {
        let (w, h) = (9, 7);
        let data = ramp(w * h);
        let cases: Vec<(f64, f64)> = vec![
            (0.0, 0.0),
            (7.9999, 5.9999),
            (-3.0, 2.5),     // clamps left
            (100.0, 100.0),  // clamps bottom-right
            (3.25, 4.75),
            (8.0, 6.0),      // exactly on the last node
            (0.5, 0.0),
            (2.0, 3.0),
        ];
        for quad in cases.chunks(4) {
            let mut xs = [0.0; 4];
            let mut ys = [0.0; 4];
            for (k, &(x, y)) in quad.iter().enumerate() {
                xs[k] = x;
                ys[k] = y;
            }
            let got = bilinear4(&data, w, h, &xs, &ys);
            for k in 0..quad.len() {
                let want = bilinear_scalar(&data, w, h, xs[k], ys[k]);
                assert!(
                    want.to_bits() == got[k].to_bits(),
                    "({}, {}): {want} vs {}",
                    xs[k],
                    ys[k],
                    got[k]
                );
            }
        }
    }

    #[test]
    fn forced_scalar_path_agrees_with_dispatch() {
        let a = ramp(50);
        let b = ramp(50);
        let scalar = with_level(SimdLevel::Scalar, || dot(&a, &b));
        assert_eq!(scalar, dot_scalar(&a, &b));
    }
}
