//! MAC staggered-grid substrate for the Eulerian fluid simulation.
//!
//! The paper (§2.1) discretises the incompressible Euler equations on a
//! MAC (marker-and-cell) grid [Harlow & Welch 1965]: pressure and other
//! scalars are sampled at cell centres, the x-velocity `u` on vertical
//! cell faces, and the y-velocity `v` on horizontal cell faces. This
//! crate provides:
//!
//! * [`field::Field2`] — a dense 2-D array with bilinear sampling,
//!   used for both cell-centred scalars and face-centred components;
//! * [`mac::MacGrid`] — the staggered velocity field with divergence,
//!   pressure-gradient subtraction and velocity sampling;
//! * [`flags::CellFlags`] — fluid/solid/empty cell classification with
//!   geometry rasterisation helpers;
//! * [`distance::distance_field`] — exact Euclidean
//!   distance-to-nearest-solid transform, used for the DivNorm weights
//!   `w_i = max(1, k − d_i)` of Eq. 5.

#![warn(missing_docs)]

pub mod distance;
pub mod field;
pub mod flags;
pub mod io;
pub mod mac;
pub mod simd;

pub use field::Field2;
pub use flags::{CellFlags, CellType};
pub use mac::MacGrid;
