//! End-to-end tests of the metrics HTTP endpoint: bind a real
//! listener on a loopback ephemeral port, speak HTTP/1.1 over a
//! `TcpStream`, and check every route plus the malformed-request and
//! method-not-allowed paths.

use sfn_metrics::hub::{Config, Hub};
use sfn_metrics::{serve, validate_exposition};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn seeded_hub() -> Arc<Hub> {
    let hub = Arc::new(Hub::new(Config {
        // Collector cadence is irrelevant here (requests are served
        // from whatever state the hub holds), but keep it quick.
        tick_millis: 50,
        ..Config::default()
    }));
    let h = sfn_obs::Histogram::new();
    for i in 1..=200 {
        h.record(i as f64 / 1000.0);
    }
    hub.ingest_at("runtime.step_secs", &h.snapshot(), hub.now_ms());
    hub.ingest_counter_at("runtime.steps", 200, hub.now_ms());
    hub.note_model_step("mlp-a", 1);
    hub.note_kernel("advect", 10, 10_000, 80_000.0);
    hub.note_fault("latency_spike");
    hub
}

/// One raw request → (status line, body).
fn roundtrip(addr: &str, raw: &[u8]) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream.write_all(raw).expect("write request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8_lossy(&response).into_owned();
    let (head, body) = text.split_once("\r\n\r\n").expect("response has a head");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

fn get(addr: &str, path: &str) -> (String, String) {
    roundtrip(addr, format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
}

#[test]
fn endpoint_serves_all_routes() {
    let hub = seeded_hub();
    let server = serve(Arc::clone(&hub), "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr.to_string();

    // /metrics: valid exposition with the expected series.
    let (status, body) = get(&addr, "/metrics");
    assert!(status.contains("200"), "status {status}");
    let series = validate_exposition(&body).expect("scrape validates");
    assert!(series >= 20, "only {series} series in:\n{body}");
    assert!(body.contains("sfn_runtime_step_secs{window="));
    assert!(body.contains("sfn_slo_burn_rate{objective=\"step-latency\""));

    // /healthz: nothing is burning.
    let (status, body) = get(&addr, "/healthz");
    assert!(status.contains("200"), "status {status}");
    assert_eq!(body, "ok\n");

    // /snapshot.json: parses and carries the schema + seeded series.
    let (status, body) = get(&addr, "/snapshot.json");
    assert!(status.contains("200"), "status {status}");
    let doc = sfn_obs::json::parse(&body).expect("snapshot parses");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("sfn-metrics/live@1")
    );
    assert!(doc
        .get("windows")
        .and_then(|w| w.get("slow"))
        .and_then(|w| w.get("series"))
        .and_then(|s| s.get("runtime.step_secs"))
        .is_some());

    // Unknown path → 404; unsupported method → 405; garbage → 400.
    let (status, _) = get(&addr, "/nope");
    assert!(status.contains("404"), "status {status}");
    let (status, _) =
        roundtrip(&addr, b"DELETE /metrics HTTP/1.1\r\nHost: test\r\n\r\n");
    assert!(status.contains("405"), "status {status}");
    let (status, _) = roundtrip(&addr, b"\x00\x01\x02garbage\r\n\r\n");
    assert!(status.contains("400"), "status {status}");

    // HEAD is accepted (served like GET; body handling is the
    // client's concern since we always close).
    let (status, _) = roundtrip(&addr, b"HEAD /healthz HTTP/1.1\r\n\r\n");
    assert!(status.contains("200"), "status {status}");

    server.stop();
}

#[test]
fn collector_ticks_advance_on_the_server_thread() {
    let hub = Arc::new(Hub::new(Config { tick_millis: 20, ..Config::default() }));
    let server = serve(Arc::clone(&hub), "127.0.0.1:0").expect("bind loopback");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while hub.ticks() < 3 {
        assert!(std::time::Instant::now() < deadline, "collector never ticked");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.stop();
}
