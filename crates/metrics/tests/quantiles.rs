//! Accuracy of the sliding-window quantile estimator.
//!
//! The estimator reports the lower edge of the log2 bucket holding the
//! target rank, so for a positive exact quantile `q` it must return
//! exactly `bucket_floor(bucket_index(q))`, which pins it inside
//! `(q/2, q]`. The tests drive seeded sfn-rng sample streams of
//! different shapes (uniform, lognormal, bimodal) through a hub with an
//! explicit clock and check both the exact-bucket identity and the
//! factor-of-two bound for the merged fast and slow windows, then that
//! samples expire once the window slides past them.

use sfn_metrics::hub::{Config, Hub, Window};
use sfn_metrics::slo::SloConfig;
use sfn_obs::{bucket_floor, bucket_index, Histogram};
use sfn_rng::{RngExt, SeedableRng, StdRng};

fn test_hub() -> Hub {
    Hub::new(Config {
        slot_millis: 100,
        slots: 10,
        fast_slots: 3,
        slo: SloConfig::default(),
        ..Config::default()
    })
}

/// Exact empirical quantile with the histogram's rank convention
/// (smallest value whose rank reaches `ceil(q·n)`).
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let target = ((q * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len());
    sorted[target - 1]
}

fn assert_windowed_quantiles_match(name: &str, samples: &[f64]) {
    let hub = test_hub();
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    // All samples land in one tick; both windows then see the same set.
    hub.ingest_at(name, &h.snapshot(), 0);

    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);

    for window in [Window::Fast, Window::Slow] {
        let snap = hub.window_at(name, window, 0);
        assert_eq!(snap.count, samples.len() as u64, "{name}: windowed count");
        for (q, est) in [(0.50, snap.p50), (0.99, snap.p99)] {
            let exact = exact_quantile(&sorted, q);
            assert!(exact > 0.0, "{name}: degenerate stream");
            let expected = bucket_floor(bucket_index(exact));
            assert_eq!(
                est, expected,
                "{name} p{}: estimator {est} != bucket floor {expected} of exact {exact}",
                (q * 100.0) as u32
            );
            assert!(
                est <= exact && exact < 2.0 * est,
                "{name} p{}: {est} outside ({}, {}] log2-bucket bound around exact {exact}",
                (q * 100.0) as u32,
                exact / 2.0,
                exact
            );
        }
    }
}

#[test]
fn uniform_stream_quantiles_are_bucket_exact() {
    let mut rng = StdRng::seed_from_u64(11);
    let samples: Vec<f64> = (0..20_000).map(|_| rng.random_range(0.001..1.0)).collect();
    assert_windowed_quantiles_match("uniform.secs", &samples);
}

#[test]
fn lognormal_stream_quantiles_are_bucket_exact() {
    let mut rng = StdRng::seed_from_u64(12);
    // exp(N(-3, 1)): median ≈ 50 ms with a heavy right tail — the
    // shape of real step latencies.
    let samples: Vec<f64> = (0..20_000).map(|_| (rng.normal(1.0) - 3.0).exp()).collect();
    assert_windowed_quantiles_match("lognormal.secs", &samples);
}

#[test]
fn bimodal_stream_quantiles_are_bucket_exact() {
    let mut rng = StdRng::seed_from_u64(13);
    // 90% fast surrogate steps around 5 ms, 10% slow solver fallbacks
    // in the hundreds of milliseconds: p50 and p99 land in different
    // modes, which defeats mean-based summaries.
    let samples: Vec<f64> = (0..20_000)
        .map(|_| {
            if rng.random_unit() < 0.9 {
                rng.random_range(0.004..0.006)
            } else {
                rng.random_range(0.6..1.0)
            }
        })
        .collect();
    assert_windowed_quantiles_match("bimodal.secs", &samples);
    // Sanity: the two quantiles really straddle the modes.
    let hub = test_hub();
    let h = Histogram::new();
    for &v in &samples {
        h.record(v);
    }
    hub.ingest_at("bimodal.secs", &h.snapshot(), 0);
    let snap = hub.window_at("bimodal.secs", Window::Fast, 0);
    assert!(snap.p50 < 0.01, "p50 {} should sit in the fast mode", snap.p50);
    assert!(snap.p99 >= 0.5, "p99 {} should sit in the slow mode", snap.p99);
}

#[test]
fn sliding_windows_expire_old_samples_from_quantiles() {
    let hub = test_hub();
    let slow = Histogram::new();
    for _ in 0..100 {
        slow.record(1.0);
    }
    let fast = Histogram::new();
    for _ in 0..100 {
        fast.record(0.01);
    }
    // Slow samples at t=0s; fast samples at t=0.5s.
    hub.ingest_at("s", &slow.snapshot(), 0);
    hub.ingest_at("s", &fast.snapshot(), 500);

    // At t=0.5s the fast window (0.3 s) has slid past the slow batch:
    // its p99 reflects only the 10 ms samples. The slow window (1 s)
    // still covers both batches, so its p99 stays in the 1 s bucket.
    let fast_now = hub.window_at("s", Window::Fast, 500);
    assert_eq!(fast_now.count, 100);
    assert!(fast_now.p99 < 0.02, "fast p99 {} still polluted", fast_now.p99);
    let slow_now = hub.window_at("s", Window::Slow, 500);
    assert_eq!(slow_now.count, 200);
    assert!(slow_now.p99 >= 0.5, "slow p99 {} lost the old batch", slow_now.p99);

    // Once the slow window slides past t=0 too, its p99 drops as well.
    let slow_later = hub.window_at("s", Window::Slow, 1200);
    assert_eq!(slow_later.count, 100);
    assert!(slow_later.p99 < 0.02, "expired batch leaked into p99 {}", slow_later.p99);

    // And past everything, the window reads empty with NaN quantiles.
    let empty = hub.window_at("s", Window::Slow, 5_000);
    assert_eq!(empty.count, 0);
    assert!(empty.p50.is_nan() && empty.p99.is_nan());
}
