//! The obs→metrics bridge: a fanout sink turning the event stream the
//! codebase already emits (`runtime.step`, `scheduler.decision`,
//! `fault.injected`, `ckpt.write`, `prof.kernel`, …) into live series
//! — zero new instrumentation call sites.
//!
//! The bridge registers an [`sfn_obs::add_event_observer`] callback;
//! installing it makes `sfn_obs::event_enabled` true at every level,
//! so even Trace-gated emitters (the per-step `runtime.step` record)
//! keep firing when nothing but the live endpoint is listening.
//!
//! Value-carrying fields are fed into sfn-obs histograms through
//! handles interned once at install time (lock-free per event);
//! the collector then windows them like any other histogram. Roster /
//! kernel / fault tallies go straight to the hub (one short mutex,
//! at event rate, off the simulation hot path).
//!
//! Re-entrancy rule: the callback must never emit events itself — it
//! only records metrics and touches hub state.

use crate::hub::Hub;
use sfn_obs::json::{self, Value};
use sfn_obs::{counter, histogram, Counter, Histogram};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

struct Handles {
    div_norm: &'static Histogram,
    predicted_loss: &'static Histogram,
    ckpt_write_secs: &'static Histogram,
    events_observed: &'static Counter,
}

/// Installs the bridge feeding `hub`. Idempotent per process (the
/// second and later calls are no-ops — one observer, one hub).
pub fn install(hub: Arc<Hub>) {
    static INSTALLED: AtomicBool = AtomicBool::new(false);
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    // The bridge is an aggregation consumer: make sure counters and
    // histograms actually record.
    sfn_obs::enable_metrics(true);
    let handles = Handles {
        div_norm: histogram("runtime.div_norm"),
        predicted_loss: histogram("scheduler.predicted_loss"),
        ckpt_write_secs: histogram("ckpt.write_secs"),
        events_observed: counter("metrics.events_observed"),
    };
    sfn_obs::add_event_observer(Box::new(move |line| observe_line(&hub, &handles, line)));
}

fn observe_line(hub: &Hub, handles: &Handles, line: &str) {
    handles.events_observed.add(1);
    let Ok(v) = json::parse(line) else {
        return;
    };
    let Some(kind) = v.get("kind").and_then(Value::as_str) else {
        return;
    };
    let f64_field = |key: &str| v.get(key).and_then(Value::as_f64);
    let str_field = |key: &str| v.get(key).and_then(Value::as_str);
    match kind {
        "runtime.step" => {
            if let Some(dn) = f64_field("div_norm") {
                handles.div_norm.record(dn);
            }
            if let Some(model) = str_field("model") {
                hub.note_model_step(model, hub.now_ms());
            }
        }
        "scheduler.decision" => {
            if let Some(loss) = f64_field("predicted_loss") {
                handles.predicted_loss.record(loss);
            }
            if let Some(n) = f64_field("candidates") {
                hub.set_gauge("scheduler.candidates", n);
            }
            if let Some(n) = f64_field("barred") {
                hub.set_gauge("scheduler.barred", n);
            }
        }
        "runtime.quarantine" => {
            if let Some(model) = str_field("model") {
                hub.note_model_quarantined(model);
            }
        }
        "fault.injected" => {
            hub.note_fault(str_field("fault").unwrap_or("unknown"));
        }
        "ckpt.write" => {
            if let Some(secs) = f64_field("secs") {
                handles.ckpt_write_secs.record(secs);
            }
            if let Some(bytes) = f64_field("bytes") {
                hub.set_gauge("ckpt.last_write_bytes", bytes);
            }
        }
        "prof.kernel" => {
            if let (Some(kernel), Some(calls), Some(ns)) =
                (str_field("kernel"), f64_field("calls"), f64_field("ns"))
            {
                let flops = f64_field("flops").unwrap_or(0.0);
                hub.note_kernel(kernel, calls as u64, ns as u64, flops);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::Config;

    // `install` is process-global, so the parsing path is tested
    // directly: feed canned lines through `observe_line`.
    fn test_handles() -> Handles {
        Handles {
            div_norm: histogram("test.bridge.div_norm"),
            predicted_loss: histogram("test.bridge.predicted_loss"),
            ckpt_write_secs: histogram("test.bridge.ckpt_write_secs"),
            events_observed: counter("test.bridge.events_observed"),
        }
    }

    #[test]
    fn bridges_known_kinds_into_hub_state() {
        let hub = Hub::new(Config::default());
        let handles = test_handles();
        let lines = [
            r#"{"ts":0.1,"level":"trace","kind":"runtime.step","step":3,"model":"mlp-a","secs":0.002,"div_norm":0.01}"#,
            r#"{"ts":0.2,"level":"info","kind":"scheduler.decision","model":"mlp-a","predicted_loss":0.4,"candidates":5,"barred":1}"#,
            r#"{"ts":0.3,"level":"warn","kind":"runtime.quarantine","model":"mlp-a","strikes":1}"#,
            r#"{"ts":0.4,"level":"warn","kind":"fault.injected","fault":"nan_output","site":"chaos"}"#,
            r#"{"ts":0.5,"level":"info","kind":"ckpt.write","step":8,"bytes":4096,"secs":0.008}"#,
            r#"{"ts":0.6,"level":"info","kind":"prof.kernel","kernel":"conv2d","calls":2,"ns":1000,"flops":5000}"#,
            r#"{"ts":0.7,"level":"info","kind":"unknown.kind","x":1}"#,
            "not json at all",
        ];
        let before = handles.events_observed.get();
        for line in lines {
            observe_line(&hub, &handles, line);
        }
        assert_eq!(handles.events_observed.get() - before, lines.len() as u64);
        assert_eq!(handles.div_norm.snapshot().count, 1);
        assert_eq!(handles.predicted_loss.snapshot().count, 1);
        assert_eq!(handles.ckpt_write_secs.snapshot().count, 1);
        let roster = hub.roster();
        assert_eq!(roster[0].0, "mlp-a");
        assert_eq!((roster[0].1.steps, roster[0].1.quarantines), (1, 1));
        assert_eq!(hub.faults(), vec![("nan_output".into(), 1)]);
        assert_eq!(hub.kernels()[0].0, "conv2d");
        assert!((hub.kernels()[0].1.gflops() - 5.0).abs() < 1e-12);
        let gauges = hub.gauges();
        assert!(gauges.iter().any(|(k, v)| k == "scheduler.candidates" && *v == 5.0));
        assert!(gauges.iter().any(|(k, v)| k == "ckpt.last_write_bytes" && *v == 4096.0));
    }
}
