//! The `/snapshot.json` payload: a structured `sfn-metrics/live@1`
//! document carrying everything `sfn-trace top` renders — windowed
//! summaries, counter totals, gauges, the scheduler roster, kernel
//! throughput, fault tallies, SLO burn state, and health.

use crate::hub::{Hub, Window};
use sfn_obs::json::{obj, Value};
use sfn_obs::HistogramSnapshot;

/// Schema tag of the payload (`schema` field).
pub const SCHEMA: &str = "sfn-metrics/live@1";

fn num(v: f64) -> Value {
    // JSON has no NaN/Inf; empty-window percentiles become null.
    if v.is_finite() {
        Value::Num(v)
    } else {
        Value::Null
    }
}

fn summary(snap: &HistogramSnapshot) -> Value {
    obj([
        ("count", Value::Num(snap.count as f64)),
        ("sum", num(snap.sum)),
        ("min", num(snap.min)),
        ("max", num(snap.max)),
        ("p50", num(snap.p50)),
        ("p90", num(snap.p90)),
        ("p95", num(snap.p95)),
        ("p99", num(snap.p99)),
    ])
}

fn window_doc(hub: &Hub, window: Window, now_ms: u64) -> Value {
    let series = hub
        .series_names()
        .into_iter()
        .map(|name| {
            let snap = hub.window_at(&name, window, now_ms);
            (name, summary(&snap))
        })
        .collect::<Vec<_>>();
    let secs = match window {
        Window::Fast => hub.config().fast_window_secs(),
        Window::Slow => hub.config().slow_window_secs(),
    };
    obj([
        ("secs", Value::Num(secs)),
        ("series", Value::Obj(series)),
    ])
}

/// Renders the full snapshot document for `hub`.
pub fn render(hub: &Hub) -> String {
    let now_ms = hub.now_ms();
    let counters = hub
        .counter_totals()
        .into_iter()
        .map(|(k, v)| (k, Value::Num(v as f64)))
        .collect::<Vec<_>>();
    let gauges = hub.gauges().into_iter().map(|(k, v)| (k, num(v))).collect::<Vec<_>>();
    let roster = hub
        .roster()
        .into_iter()
        .map(|(model, stat)| {
            Value::Obj(vec![
                ("model".into(), Value::Str(model)),
                ("steps".into(), Value::Num(stat.steps as f64)),
                ("quarantines".into(), Value::Num(stat.quarantines as f64)),
                ("last_seen_ms".into(), Value::Num(stat.last_seen_ms as f64)),
            ])
        })
        .collect::<Vec<_>>();
    let kernels = hub
        .kernels()
        .into_iter()
        .map(|(kernel, stat)| {
            Value::Obj(vec![
                ("kernel".into(), Value::Str(kernel)),
                ("calls".into(), Value::Num(stat.calls as f64)),
                ("ns".into(), Value::Num(stat.ns as f64)),
                ("gflops".into(), num(stat.gflops())),
            ])
        })
        .collect::<Vec<_>>();
    let faults = hub
        .faults()
        .into_iter()
        .map(|(kind, n)| (kind, Value::Num(n as f64)))
        .collect::<Vec<_>>();
    let slo = hub
        .slo_states()
        .into_iter()
        .map(|s| {
            Value::Obj(vec![
                ("objective".into(), Value::Str(s.spec.name)),
                ("budget".into(), Value::Num(s.spec.budget)),
                ("fast_burn".into(), num(s.fast_burn)),
                ("slow_burn".into(), num(s.slow_burn)),
                ("burning".into(), Value::Bool(s.burning)),
            ])
        })
        .collect::<Vec<_>>();
    let health = hub.health();
    let doc = obj([
        ("schema", Value::Str(SCHEMA.into())),
        ("uptime_secs", Value::Num(hub.uptime_secs())),
        ("ticks", Value::Num(hub.ticks() as f64)),
        (
            "windows",
            obj([
                ("fast", window_doc(hub, Window::Fast, now_ms)),
                ("slow", window_doc(hub, Window::Slow, now_ms)),
            ]),
        ),
        ("counters", Value::Obj(counters)),
        ("gauges", Value::Obj(gauges)),
        ("roster", Value::Arr(roster)),
        ("kernels", Value::Arr(kernels)),
        ("faults", Value::Obj(faults)),
        ("slo", Value::Arr(slo)),
        (
            "health",
            obj([
                ("degraded", Value::Bool(health.degraded)),
                (
                    "reasons",
                    Value::Arr(health.reasons.into_iter().map(Value::Str).collect()),
                ),
            ]),
        ),
    ]);
    let mut out = doc.to_json();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::Config;
    use sfn_obs::json;

    #[test]
    fn snapshot_parses_and_carries_the_schema() {
        let hub = Hub::new(Config::default());
        let h = sfn_obs::Histogram::new();
        for i in 1..=50 {
            h.record(i as f64 / 100.0);
        }
        hub.ingest_at("runtime.step_secs", &h.snapshot(), hub.now_ms());
        hub.note_model_step("mlp-a", 5);
        hub.note_fault("latency_spike");
        hub.set_gauge("scheduler.candidates", 3.0);
        let text = render(&hub);
        let doc = json::parse(&text).expect("snapshot is valid json");
        assert_eq!(doc.get("schema").and_then(Value::as_str), Some(SCHEMA));
        let fast = doc
            .get("windows")
            .and_then(|w| w.get("fast"))
            .expect("fast window present");
        let series = fast.get("series").and_then(|s| s.get("runtime.step_secs")).unwrap();
        assert_eq!(series.get("count").and_then(Value::as_u64), Some(50));
        assert!(series.get("p99").and_then(Value::as_f64).is_some());
        let roster = doc.get("roster").and_then(Value::as_arr).unwrap();
        assert_eq!(roster[0].get("model").and_then(Value::as_str), Some("mlp-a"));
        let slo = doc.get("slo").and_then(Value::as_arr).unwrap();
        assert_eq!(slo.len(), 4);
        assert_eq!(
            doc.get("health").and_then(|h| h.get("degraded")).and_then(Value::as_bool),
            Some(false)
        );
        // Empty-window percentiles serialize as null, not NaN.
        assert!(!text.contains("NaN"));
    }
}
