//! sfn-metrics — live in-process metrics for smart-fluidnet.
//!
//! The crate turns the aggregates the codebase already maintains
//! (sfn-obs lock-free counters and histograms, the structured event
//! stream) into a live, scrapeable surface:
//!
//! * a [`hub::Hub`] holding sliding-window quantile series (last-60s /
//!   last-10m by default), windowed counter rates, gauges, and the
//!   roster/kernel/fault tallies;
//! * an obs→metrics [`bridge`] observing every emitted event —
//!   `runtime.step`, `scheduler.decision`, `fault.injected`,
//!   `ckpt.write`, `prof.kernel` — with **zero new instrumentation
//!   call sites** in the emitting crates;
//! * a declarative [`slo`] engine computing multi-window error-budget
//!   burn rates and flipping `/healthz` to degraded;
//! * a hand-rolled [`http`] server (on `std::net::TcpListener`)
//!   exposing `/metrics` (Prometheus text exposition, rendered by
//!   [`expo`]), `/healthz`, and `/snapshot.json` (the
//!   `sfn-metrics/live@1` document rendered by [`snapshot`], which
//!   `sfn-trace top` consumes).
//!
//! Hot-path cost model: simulation threads only touch sfn-obs's
//! lock-free atomics (and only when metrics are live — see
//! [`record_step`]); the hub's mutex is taken by the once-a-second
//! collector tick, by event-rate bridge updates, and by scrapes.
//!
//! Enable by setting `SFN_METRICS_ADDR` (e.g. `127.0.0.1:9900`) and
//! calling [`serve_from_env`], which the runtime does at run start.

#![warn(missing_docs)]

pub mod bridge;
pub mod expo;
pub mod http;
pub mod hub;
pub mod slo;
pub mod snapshot;

pub use expo::validate_exposition;
pub use http::{parse_request, serve, Request, RequestError, ServerHandle};
pub use hub::{Config, Health, Hub, KernelStat, ModelStat, Window};
pub use slo::{SloConfig, SloKind, SloSpec, SloState};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

static GLOBAL: OnceLock<Arc<Hub>> = OnceLock::new();
static LIVE: AtomicBool = AtomicBool::new(false);

/// The process-wide hub, created from [`Config::from_env`] on first
/// use (or by an earlier [`init_global`] call).
pub fn global() -> Arc<Hub> {
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(Hub::new(Config::from_env()))))
}

/// Installs `cfg` as the global hub's configuration. Returns `false`
/// if the global hub already existed (the configuration is kept and
/// `cfg` is dropped) — call this before anything touches [`global`].
pub fn init_global(cfg: Config) -> bool {
    let mut installed = false;
    GLOBAL.get_or_init(|| {
        installed = true;
        Arc::new(Hub::new(cfg))
    });
    installed
}

/// True once a metrics endpoint is serving in this process. Gates the
/// direct-registration hot paths ([`record_step`] and the runtime's
/// step timers) so a run without metrics pays nothing.
#[inline]
pub fn live() -> bool {
    LIVE.load(Ordering::Relaxed)
}

/// Starts serving the global hub on `addr`: installs the event
/// bridge, binds the listener, spawns the collector, and flips
/// [`live`]. The returned handle's threads are detached — dropping it
/// keeps the endpoint alive; call [`ServerHandle::stop`] to shut down.
pub fn start_global(addr: &str) -> std::io::Result<ServerHandle> {
    let hub = global();
    bridge::install(Arc::clone(&hub));
    let handle = http::serve(hub, addr)?;
    LIVE.store(true, Ordering::Relaxed);
    sfn_obs::event(sfn_obs::Level::Info, "metrics.serving")
        .field_str("addr", &handle.addr.to_string())
        .emit();
    Ok(handle)
}

/// Starts the metrics endpoint if `SFN_METRICS_ADDR` is set (e.g.
/// `127.0.0.1:9900`). Idempotent — the first call wins; later calls
/// (and calls with the variable unset) return `None`. A bind failure
/// is logged, not fatal: simulations must not die because a metrics
/// port is taken.
pub fn serve_from_env() -> Option<ServerHandle> {
    static STARTED: AtomicBool = AtomicBool::new(false);
    let addr = match std::env::var("SFN_METRICS_ADDR") {
        Ok(a) if !a.trim().is_empty() => a.trim().to_string(),
        _ => return None,
    };
    if STARTED.swap(true, Ordering::SeqCst) {
        return None;
    }
    match start_global(&addr) {
        Ok(handle) => Some(handle),
        Err(e) => {
            sfn_obs::log(
                sfn_obs::Level::Warn,
                &format!("SFN_METRICS_ADDR={addr}: bind failed ({e}); metrics endpoint disabled"),
            );
            None
        }
    }
}

/// One objective's burn-rate reading, flattened from [`SloState`] for
/// overload controllers (sfn-serve's brownout loop polls this once a
/// tick and maps sustained burn onto degradation rungs).
#[derive(Debug, Clone, PartialEq)]
pub struct BurnReading {
    /// Objective name (e.g. `step-latency`).
    pub name: String,
    /// Burn rate over the fast window.
    pub fast_burn: f64,
    /// Burn rate over the slow window.
    pub slow_burn: f64,
    /// True while the objective's multi-window rule holds.
    pub burning: bool,
}

/// Burn-rate snapshot of every objective on the global hub, as of the
/// last collector tick (call [`Hub::collect_now`] first for a fresh
/// evaluation). Works whether or not an HTTP endpoint is serving —
/// reading burn rates must not require opening a port.
pub fn burn_rates() -> Vec<BurnReading> {
    global()
        .slo_states()
        .into_iter()
        .map(|s| BurnReading {
            name: s.spec.name.clone(),
            fast_burn: s.fast_burn,
            slow_burn: s.slow_burn,
            burning: s.burning,
        })
        .collect()
}

/// The highest fast-window burn rate across objectives and whether any
/// objective is currently burning — the two numbers an overload
/// controller actually branches on.
pub fn worst_burn() -> (f64, bool) {
    let mut worst = 0.0f64;
    let mut burning = false;
    for r in burn_rates() {
        worst = worst.max(r.fast_burn);
        burning |= r.burning;
    }
    (worst, burning)
}

/// Direct registration of one simulation step: feeds the
/// `runtime.step_secs` latency series, the `runtime.steps` rate
/// counter, and the model roster. No-op unless [`live`] — callers
/// gate their `Instant::now()` on `live()` too, so a metrics-off run
/// pays a single relaxed atomic load per step.
///
/// This is the **only** feeder of the step-latency series: the event
/// bridge deliberately does not histogram `runtime.step` durations, so
/// latency samples are never double-counted.
pub fn record_step(model: &str, secs: f64) {
    if !live() {
        return;
    }
    struct Handles {
        step_secs: &'static sfn_obs::Histogram,
        steps: &'static sfn_obs::Counter,
    }
    static HANDLES: OnceLock<Handles> = OnceLock::new();
    let handles = HANDLES.get_or_init(|| Handles {
        step_secs: sfn_obs::histogram("runtime.step_secs"),
        steps: sfn_obs::counter("runtime.steps"),
    });
    handles.step_secs.record(secs);
    handles.steps.add(1);
    let hub = global();
    hub.note_model_step(model, hub.now_ms());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_step_is_inert_until_live() {
        // LIVE is process-global; this test only checks the off state
        // (endpoint tests flip it in their own process).
        if live() {
            return;
        }
        let before = sfn_obs::counter_value("runtime.steps");
        record_step("mlp-a", 0.001);
        assert_eq!(sfn_obs::counter_value("runtime.steps"), before);
    }

    #[test]
    fn init_global_first_call_wins() {
        let custom = Config { slot_millis: 123, ..Config::default() };
        let first = init_global(custom);
        if first {
            assert_eq!(global().config().slot_millis, 123);
        }
        // Whether or not another test beat us to the first init, a
        // second call must report "already installed".
        assert!(!init_global(Config::default()));
    }

    #[test]
    fn burn_rates_read_every_objective_without_an_endpoint() {
        // No HTTP listener, no collector thread: the read API alone
        // must surface one reading per configured objective.
        let readings = burn_rates();
        assert_eq!(readings.len(), global().config().slo.objectives.len());
        assert!(!readings.is_empty(), "stock SLO config has objectives");
        for r in &readings {
            assert!(!r.name.is_empty());
            assert!(r.fast_burn >= 0.0 && r.slow_burn >= 0.0);
        }
        let (worst, _burning) = worst_burn();
        assert!(worst >= 0.0);
    }
}
