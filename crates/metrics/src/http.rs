//! A hand-rolled HTTP/1.1 server for the metrics endpoints, built
//! directly on [`std::net::TcpListener`].
//!
//! Security posture: the listener is meant for `127.0.0.1` (or an
//! otherwise firewalled address) and treats every byte off the socket
//! as hostile. [`parse_request`] is the single entry point for raw
//! request bytes — strict, allocation-bounded, and fuzzed as the
//! `http` target — and the server itself enforces a hard request-size
//! cap, a read deadline, a bounded connection count (excess
//! connections get `503` and are closed, never queued), and
//! `Connection: close` semantics (one request per connection, no
//! keep-alive state machine to get wrong).

use crate::hub::Hub;
use crate::{expo, snapshot};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Hard cap on the bytes of one request head (request line + headers
/// + terminator). Larger requests are rejected before parsing.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Maximum number of headers accepted in one request.
pub const MAX_HEADERS: usize = 32;

/// Maximum length of the request target (path + query).
pub const MAX_TARGET_BYTES: usize = 1024;

/// Maximum length of one header name / value.
pub const MAX_HEADER_NAME_BYTES: usize = 128;
/// Maximum length of one header value.
pub const MAX_HEADER_VALUE_BYTES: usize = 1024;

/// A parsed, validated HTTP/1.x request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `HEAD`, …). Parsing accepts any
    /// token; routing decides what is allowed.
    pub method: String,
    /// Request target, always starting with `/`.
    pub target: String,
    /// Minor HTTP version: 0 for `HTTP/1.0`, 1 for `HTTP/1.1`.
    pub minor_version: u8,
    /// Header `(name, trimmed value)` pairs in request order.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// Canonical wire rendering of the head (used by the fuzz oracle:
    /// `parse ∘ render` must be a fixed point).
    pub fn render(&self) -> Vec<u8> {
        let mut out = String::with_capacity(64);
        out.push_str(&self.method);
        out.push(' ');
        out.push_str(&self.target);
        out.push_str(" HTTP/1.");
        out.push(if self.minor_version == 0 { '0' } else { '1' });
        out.push_str("\r\n");
        for (name, value) in &self.headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        out.into_bytes()
    }
}

/// Why a request was refused. Every variant maps to a 4xx response;
/// none of them may panic, allocate unboundedly, or loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestError {
    /// Head exceeds [`MAX_REQUEST_BYTES`].
    TooLarge,
    /// Structurally invalid head (missing terminator, bad request
    /// line, illegal characters…). The payload names the first check
    /// that failed.
    Malformed(&'static str),
    /// Not an `HTTP/1.0` / `HTTP/1.1` request.
    UnsupportedVersion,
    /// More than [`MAX_HEADERS`] header lines.
    TooManyHeaders,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::TooLarge => write!(f, "request head exceeds {MAX_REQUEST_BYTES} bytes"),
            RequestError::Malformed(why) => write!(f, "malformed request: {why}"),
            RequestError::UnsupportedVersion => write!(f, "only HTTP/1.0 and HTTP/1.1 are served"),
            RequestError::TooManyHeaders => write!(f, "more than {MAX_HEADERS} headers"),
        }
    }
}

fn is_tchar(b: u8) -> bool {
    // RFC 9110 token characters.
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// Strictly parses one request head from raw socket bytes. Bytes after
/// the `\r\n\r\n` terminator (a body) are ignored — every served
/// endpoint is a bodiless GET.
pub fn parse_request(raw: &[u8]) -> Result<Request, RequestError> {
    if raw.len() > MAX_REQUEST_BYTES {
        return Err(RequestError::TooLarge);
    }
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or(RequestError::Malformed("missing \\r\\n\\r\\n terminator"))?;
    // Include the first `\r\n` of the terminator so every line in the
    // head carries its CRLF and bare-LF lines are detectable.
    let head = &raw[..head_end + 2];
    let mut lines: Vec<&[u8]> = head.split(|&b| b == b'\n').collect();
    // `head` ends with `\n`, so the final split piece is always empty.
    lines.pop();
    let mut lines = lines.into_iter();

    let request_line = lines.next().unwrap_or_default();
    let request_line = request_line
        .strip_suffix(b"\r")
        .ok_or(RequestError::Malformed("bare LF in request line"))?;
    let mut parts = request_line.split(|&b| b == b' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(RequestError::Malformed("request line is not `METHOD SP target SP version`")),
    };

    if method.is_empty() || method.len() > 16 || !method.iter().all(|&b| b.is_ascii_uppercase()) {
        return Err(RequestError::Malformed("method is not an uppercase token"));
    }
    if target.len() > MAX_TARGET_BYTES {
        return Err(RequestError::Malformed("target too long"));
    }
    if target.first() != Some(&b'/') || !target.iter().all(|&b| (0x21..=0x7e).contains(&b)) {
        return Err(RequestError::Malformed("target must be /-rooted visible ASCII"));
    }
    let minor_version = match version {
        b"HTTP/1.0" => 0,
        b"HTTP/1.1" => 1,
        _ => return Err(RequestError::UnsupportedVersion),
    };

    let mut headers = Vec::new();
    for line in lines {
        let line = line
            .strip_suffix(b"\r")
            .ok_or(RequestError::Malformed("bare LF in header line"))?;
        if headers.len() >= MAX_HEADERS {
            return Err(RequestError::TooManyHeaders);
        }
        let colon = line
            .iter()
            .position(|&b| b == b':')
            .ok_or(RequestError::Malformed("header line without colon"))?;
        let (name, value) = (&line[..colon], &line[colon + 1..]);
        if name.is_empty() || name.len() > MAX_HEADER_NAME_BYTES || !name.iter().all(|&b| is_tchar(b)) {
            return Err(RequestError::Malformed("header name is not a token"));
        }
        // Obsolete line folding (a header line starting with
        // whitespace) never reaches here: it would parse as a header
        // name with illegal characters and be rejected above.
        let value = trim_ows(value);
        if value.len() > MAX_HEADER_VALUE_BYTES {
            return Err(RequestError::Malformed("header value too long"));
        }
        if !value.iter().all(|&b| b == b'\t' || (0x20..=0x7e).contains(&b)) {
            return Err(RequestError::Malformed("header value has control bytes"));
        }
        headers.push((
            String::from_utf8_lossy(name).into_owned(),
            String::from_utf8_lossy(value).into_owned(),
        ));
    }

    Ok(Request {
        method: String::from_utf8_lossy(method).into_owned(),
        target: String::from_utf8_lossy(target).into_owned(),
        minor_version,
        headers,
    })
}

fn trim_ows(mut v: &[u8]) -> &[u8] {
    while let Some((first, rest)) = v.split_first() {
        if *first == b' ' || *first == b'\t' {
            v = rest;
        } else {
            break;
        }
    }
    while let Some((last, rest)) = v.split_last() {
        if *last == b' ' || *last == b'\t' {
            v = rest;
        } else {
            break;
        }
    }
    v
}

// -------------------------------------------------------------- server

/// A running metrics listener. Threads are detached; [`stop`] flips a
/// flag the accept and collector loops poll, so shutdown completes
/// within one poll interval.
///
/// [`stop`]: ServerHandle::stop
pub struct ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Signals the accept loop and collector to exit.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

/// Binds `addr` and serves the hub's endpoints on a background thread,
/// with a companion collector thread ticking the hub (window ingestion
/// + SLO evaluation) every `cfg.tick_millis`.
pub fn serve(hub: Arc<Hub>, addr: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));

    let collector_hub = Arc::clone(&hub);
    let collector_stop = Arc::clone(&shutdown);
    let tick = Duration::from_millis(collector_hub.config().tick_millis.max(10));
    std::thread::Builder::new()
        .name("sfn-metrics-collect".into())
        .spawn(move || {
            while !collector_stop.load(Ordering::Relaxed) {
                collector_hub.collect_now();
                std::thread::sleep(tick);
            }
        })?;

    let accept_stop = Arc::clone(&shutdown);
    let active = Arc::new(AtomicUsize::new(0));
    let max_conns = hub.config().max_connections.max(1);
    std::thread::Builder::new()
        .name("sfn-metrics-http".into())
        .spawn(move || loop {
            if accept_stop.load(Ordering::Relaxed) {
                return;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if active.load(Ordering::Relaxed) >= max_conns {
                        sfn_obs::counter_add("metrics.http.rejected", 1);
                        respond_overloaded(stream);
                        continue;
                    }
                    active.fetch_add(1, Ordering::Relaxed);
                    let hub = Arc::clone(&hub);
                    let conn_active = Arc::clone(&active);
                    let spawned = std::thread::Builder::new()
                        .name("sfn-metrics-conn".into())
                        .spawn(move || {
                            handle_connection(&hub, stream);
                            conn_active.fetch_sub(1, Ordering::Relaxed);
                        });
                    if spawned.is_err() {
                        active.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(100)),
            }
        })?;

    Ok(ServerHandle { addr, shutdown })
}

fn respond_overloaded(mut stream: TcpStream) {
    let _ = stream.write_all(
        b"HTTP/1.1 503 Service Unavailable\r\nConnection: close\r\nContent-Length: 9\r\n\r\noverload\n",
    );
}

fn handle_connection(hub: &Hub, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    sfn_obs::counter_add("metrics.http.requests", 1);

    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_complete = loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") {
            break true;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            break false;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break false,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break false,
        }
    };

    let (status, content_type, body) = if !head_complete && buf.len() > MAX_REQUEST_BYTES {
        status_page(431, "request head too large\n")
    } else if !head_complete {
        status_page(400, "incomplete request\n")
    } else {
        match parse_request(&buf) {
            Ok(req) => route(hub, &req),
            Err(RequestError::TooLarge) => status_page(431, "request head too large\n"),
            Err(e) => {
                sfn_obs::counter_add("metrics.http.malformed", 1);
                status_page(400, &format!("{e}\n"))
            }
        }
    };
    write_response(&mut stream, status, content_type, &body);
}

fn status_page(status: u16, body: &str) -> (u16, &'static str, Vec<u8>) {
    (status, "text/plain; charset=utf-8", body.as_bytes().to_vec())
}

fn route(hub: &Hub, req: &Request) -> (u16, &'static str, Vec<u8>) {
    if req.method != "GET" && req.method != "HEAD" {
        return status_page(405, "only GET and HEAD are served\n");
    }
    let path = req.target.split('?').next().unwrap_or("");
    match path {
        "/metrics" => (
            200,
            // The Prometheus text exposition format content type.
            "text/plain; version=0.0.4; charset=utf-8",
            expo::render(hub).into_bytes(),
        ),
        "/healthz" => {
            let health = hub.health();
            if health.degraded {
                let mut body = String::from("degraded\n");
                for reason in &health.reasons {
                    body.push_str(reason);
                    body.push('\n');
                }
                (503, "text/plain; charset=utf-8", body.into_bytes())
            } else {
                (200, "text/plain; charset=utf-8", b"ok\n".to_vec())
            }
        }
        "/snapshot.json" => (
            200,
            "application/json",
            snapshot::render(hub).into_bytes(),
        ),
        _ => status_page(404, "not found; try /metrics, /healthz or /snapshot.json\n"),
    }
}

fn write_response(stream: &mut TcpStream, status: u16, content_type: &str, body: &[u8]) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body);
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(raw: &[u8]) -> Request {
        parse_request(raw).expect("parses")
    }

    #[test]
    fn parses_minimal_get() {
        let r = ok(b"GET /metrics HTTP/1.1\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.target, "/metrics");
        assert_eq!(r.minor_version, 1);
        assert!(r.headers.is_empty());
    }

    #[test]
    fn parses_headers_and_trims_optional_whitespace() {
        let r = ok(b"GET / HTTP/1.0\r\nHost:  localhost:9090 \r\nAccept: */*\r\n\r\nignored body");
        assert_eq!(r.minor_version, 0);
        assert_eq!(r.headers[0], ("Host".into(), "localhost:9090".into()));
        assert_eq!(r.headers[1], ("Accept".into(), "*/*".into()));
    }

    #[test]
    fn render_parse_is_a_fixed_point() {
        let r = ok(b"HEAD /snapshot.json?x=1 HTTP/1.1\r\nHost: a\r\nX-B: c\t d\r\n\r\n");
        assert_eq!(ok(&r.render()), r);
    }

    #[test]
    fn rejects_malformed_heads() {
        for (raw, why) in [
            (&b"GET /metrics HTTP/1.1"[..], "no terminator"),
            (b"GET /metrics HTTP/1.1\n\n", "LF-only terminator"),
            (b"GET /metrics HTTP/1.1\nX: y\r\n\r\n", "bare LF line ending"),
            (b"get /metrics HTTP/1.1\r\n\r\n", "lowercase method"),
            (b"GET metrics HTTP/1.1\r\n\r\n", "target not /-rooted"),
            (b"GET /me trics HTTP/1.1\r\n\r\n", "space in target"),
            (b"GET /metrics HTTP/2\r\n\r\n", "unsupported version"),
            (b"GET /metrics HTTP/1.1 extra\r\n\r\n", "four request-line parts"),
            (b"GET /metrics HTTP/1.1\r\nNoColonHere\r\n\r\n", "header without colon"),
            (b"GET /metrics HTTP/1.1\r\n: empty-name\r\n\r\n", "empty header name"),
            (b"GET /metrics HTTP/1.1\r\nX: a\x01b\r\n\r\n", "control byte in value"),
            (b"\r\n\r\n", "empty request line"),
        ] {
            assert!(parse_request(raw).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn rejects_oversize_and_header_floods() {
        let huge = vec![b'A'; MAX_REQUEST_BYTES + 1];
        assert_eq!(parse_request(&huge), Err(RequestError::TooLarge));

        let mut flood = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..MAX_HEADERS + 1 {
            flood.extend_from_slice(format!("H{i}: v\r\n").as_bytes());
        }
        flood.extend_from_slice(b"\r\n");
        assert_eq!(parse_request(&flood), Err(RequestError::TooManyHeaders));

        let long_target = [b"GET /".to_vec(), vec![b'a'; MAX_TARGET_BYTES], b" HTTP/1.1\r\n\r\n".to_vec()]
            .concat();
        assert!(matches!(parse_request(&long_target), Err(RequestError::Malformed(_))));
    }
}
