//! A hand-rolled HTTP/1.1 server for the metrics endpoints, built
//! directly on [`std::net::TcpListener`].
//!
//! Security posture: the listener is meant for `127.0.0.1` (or an
//! otherwise firewalled address) and treats every byte off the socket
//! as hostile. [`parse_request`] — shared with `sfn-serve` via
//! `sfn-httpcore`, and fuzzed as the `http` target — is the single
//! entry point for raw request bytes, and the server itself enforces a
//! hard request-size cap, a read deadline, a bounded connection count
//! (excess connections get `503` and are closed, never queued), and
//! `Connection: close` semantics (one request per connection, no
//! keep-alive state machine to get wrong).

use crate::hub::Hub;
use crate::{expo, snapshot};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

// The byte-level request contract lives in `sfn-httpcore`; these
// re-exports keep the long-standing `sfn_metrics::http::*` paths (and
// the `http` fuzz target) stable.
pub use sfn_httpcore::{
    parse_request, Request, RequestError, MAX_HEADERS, MAX_HEADER_NAME_BYTES,
    MAX_HEADER_VALUE_BYTES, MAX_REQUEST_BYTES, MAX_TARGET_BYTES,
};

// -------------------------------------------------------------- server

/// A running metrics listener. Threads are detached; [`stop`] flips a
/// flag the accept and collector loops poll, so shutdown completes
/// within one poll interval.
///
/// [`stop`]: ServerHandle::stop
pub struct ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Signals the accept loop and collector to exit.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

/// Binds `addr` and serves the hub's endpoints on a background thread,
/// with a companion collector thread ticking the hub (window ingestion
/// + SLO evaluation) every `cfg.tick_millis`.
pub fn serve(hub: Arc<Hub>, addr: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));

    let collector_hub = Arc::clone(&hub);
    let collector_stop = Arc::clone(&shutdown);
    let tick = Duration::from_millis(collector_hub.config().tick_millis.max(10));
    std::thread::Builder::new()
        .name("sfn-metrics-collect".into())
        .spawn(move || {
            while !collector_stop.load(Ordering::Relaxed) {
                collector_hub.collect_now();
                std::thread::sleep(tick);
            }
        })?;

    let accept_stop = Arc::clone(&shutdown);
    let active = Arc::new(AtomicUsize::new(0));
    let max_conns = hub.config().max_connections.max(1);
    std::thread::Builder::new()
        .name("sfn-metrics-http".into())
        .spawn(move || loop {
            if accept_stop.load(Ordering::Relaxed) {
                return;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if active.load(Ordering::Relaxed) >= max_conns {
                        sfn_obs::counter_add("metrics.http.rejected", 1);
                        respond_overloaded(stream);
                        continue;
                    }
                    active.fetch_add(1, Ordering::Relaxed);
                    let hub = Arc::clone(&hub);
                    let conn_active = Arc::clone(&active);
                    let spawned = std::thread::Builder::new()
                        .name("sfn-metrics-conn".into())
                        .spawn(move || {
                            handle_connection(&hub, stream);
                            conn_active.fetch_sub(1, Ordering::Relaxed);
                        });
                    if spawned.is_err() {
                        active.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(100)),
            }
        })?;

    Ok(ServerHandle { addr, shutdown })
}

fn respond_overloaded(mut stream: TcpStream) {
    sfn_httpcore::write_response(
        &mut stream,
        503,
        "text/plain; charset=utf-8",
        &[],
        b"overload\n",
    );
}

fn handle_connection(hub: &Hub, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    sfn_obs::counter_add("metrics.http.requests", 1);

    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_complete = loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") {
            break true;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            break false;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break false,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break false,
        }
    };

    let (status, content_type, body) = if !head_complete && buf.len() > MAX_REQUEST_BYTES {
        status_page(431, "request head too large\n")
    } else if !head_complete {
        status_page(400, "incomplete request\n")
    } else {
        match parse_request(&buf) {
            Ok(req) => route(hub, &req),
            Err(RequestError::TooLarge) => status_page(431, "request head too large\n"),
            Err(e) => {
                sfn_obs::counter_add("metrics.http.malformed", 1);
                status_page(400, &format!("{e}\n"))
            }
        }
    };
    sfn_httpcore::write_response(&mut stream, status, content_type, &[], &body);
}

fn status_page(status: u16, body: &str) -> (u16, &'static str, Vec<u8>) {
    (status, "text/plain; charset=utf-8", body.as_bytes().to_vec())
}

fn route(hub: &Hub, req: &Request) -> (u16, &'static str, Vec<u8>) {
    if req.method != "GET" && req.method != "HEAD" {
        return status_page(405, "only GET and HEAD are served\n");
    }
    let path = req.target.split('?').next().unwrap_or("");
    match path {
        "/metrics" => (
            200,
            // The Prometheus text exposition format content type.
            "text/plain; version=0.0.4; charset=utf-8",
            expo::render(hub).into_bytes(),
        ),
        "/healthz" => {
            let health = hub.health();
            if health.degraded {
                let mut body = String::from("degraded\n");
                for reason in &health.reasons {
                    body.push_str(reason);
                    body.push('\n');
                }
                (503, "text/plain; charset=utf-8", body.into_bytes())
            } else {
                (200, "text/plain; charset=utf-8", b"ok\n".to_vec())
            }
        }
        "/snapshot.json" => (
            200,
            "application/json",
            snapshot::render(hub).into_bytes(),
        ),
        _ => status_page(404, "not found; try /metrics, /healthz or /snapshot.json\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The parser's own behavioural tests live in `sfn-httpcore`; these
    // pin the re-exported paths this crate has always offered.
    #[test]
    fn reexported_parser_paths_still_work() {
        let r = parse_request(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").expect("parses");
        assert_eq!(r.method, "GET");
        assert_eq!(r.target, "/metrics");
        assert_eq!(crate::parse_request(&r.render()).expect("fixed point"), r);
        const { assert!(MAX_REQUEST_BYTES >= MAX_TARGET_BYTES) };
        const { assert!(MAX_HEADER_NAME_BYTES < MAX_HEADER_VALUE_BYTES || MAX_HEADERS > 0) };
    }

    #[test]
    fn oversize_heads_still_reject_through_reexport() {
        let huge = vec![b'A'; MAX_REQUEST_BYTES + 1];
        assert_eq!(parse_request(&huge), Err(RequestError::TooLarge));
    }
}
