//! Prometheus text exposition (format version 0.0.4) rendering and an
//! in-tree validator for it.
//!
//! Rendered families:
//!
//! * every cumulative sfn-obs counter as `sfn_<name>_total`;
//! * every windowed histogram series as a summary — `quantile`-labelled
//!   samples plus `_sum`/`_count`, one labelset per window
//!   (`window="60s"` / `window="600s"` at default config);
//! * gauges: bridge-maintained values, per-objective SLO burn rates
//!   (`sfn_slo_burn_rate`), health/uptime, the model roster
//!   (`sfn_model_steps`), and per-kernel throughput
//!   (`sfn_kernel_gflops`).
//!
//! Metric names are sanitized to `[a-zA-Z_][a-zA-Z0-9_]*`; everything
//! dynamic (model, kernel, objective, window) is a label value, where
//! arbitrary UTF-8 is legal once escaped.

use crate::hub::{Hub, Window};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Sanitizes an sfn metric name (`runtime.step_secs`,
/// `stage.step/advect`) into a Prometheus metric-name suffix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn push_value(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Renders the full `/metrics` payload for `hub`.
pub fn render(hub: &Hub) -> String {
    let now_ms = hub.now_ms();
    let mut out = String::with_capacity(8 * 1024);
    let windows = [
        (Window::Fast, format!("{:.0}s", hub.config().fast_window_secs())),
        (Window::Slow, format!("{:.0}s", hub.config().slow_window_secs())),
    ];

    out.push_str("# HELP sfn_up Whether the sfn-metrics endpoint is live.\n# TYPE sfn_up gauge\nsfn_up 1\n");
    out.push_str("# HELP sfn_uptime_seconds Seconds since the metric hub started.\n# TYPE sfn_uptime_seconds gauge\n");
    let _ = writeln!(out, "sfn_uptime_seconds {:.3}", hub.uptime_secs());
    let health = hub.health();
    out.push_str("# HELP sfn_health_degraded 1 while any SLO objective is burning.\n# TYPE sfn_health_degraded gauge\n");
    let _ = writeln!(out, "sfn_health_degraded {}", u8::from(health.degraded));

    // Cumulative counters.
    for (name, value) in hub.counter_totals() {
        let metric = format!("sfn_{}_total", sanitize_name(&name));
        let _ = writeln!(out, "# HELP {metric} Cumulative sfn counter `{name}`.");
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }

    // Windowed quantile summaries.
    for name in hub.series_names() {
        let metric = format!("sfn_{}", sanitize_name(&name));
        let _ = writeln!(out, "# HELP {metric} Sliding-window summary of sfn series `{name}`.");
        let _ = writeln!(out, "# TYPE {metric} summary");
        for (window, label) in &windows {
            let snap = hub.window_at(&name, *window, now_ms);
            for (q, v) in
                [("0.5", snap.p50), ("0.9", snap.p90), ("0.95", snap.p95), ("0.99", snap.p99)]
            {
                let _ = write!(out, "{metric}{{window=\"{label}\",quantile=\"{q}\"}} ");
                push_value(&mut out, v);
                out.push('\n');
            }
            let _ = write!(out, "{metric}_sum{{window=\"{label}\"}} ");
            push_value(&mut out, snap.sum);
            out.push('\n');
            let _ = writeln!(out, "{metric}_count{{window=\"{label}\"}} {}", snap.count);
        }
    }

    // Bridge-maintained gauges.
    for (name, value) in hub.gauges() {
        let metric = format!("sfn_{}", sanitize_name(&name));
        let _ = writeln!(out, "# HELP {metric} Live gauge `{name}`.");
        let _ = writeln!(out, "# TYPE {metric} gauge");
        let _ = write!(out, "{metric} ");
        push_value(&mut out, value);
        out.push('\n');
    }

    // SLO burn rates.
    out.push_str("# HELP sfn_slo_burn_rate Error-budget burn rate per objective and window.\n# TYPE sfn_slo_burn_rate gauge\n");
    out.push_str("# HELP sfn_slo_burning 1 while the objective's multi-window burn rule holds.\n# TYPE sfn_slo_burning gauge\n");
    for state in hub.slo_states() {
        let objective = escape_label(&state.spec.name);
        for (window, burn) in [("fast", state.fast_burn), ("slow", state.slow_burn)] {
            let _ = write!(out, "sfn_slo_burn_rate{{objective=\"{objective}\",window=\"{window}\"}} ");
            push_value(&mut out, burn);
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "sfn_slo_burning{{objective=\"{objective}\"}} {}",
            u8::from(state.burning)
        );
    }

    // Scheduler roster.
    let roster = hub.roster();
    if !roster.is_empty() {
        out.push_str("# HELP sfn_model_steps Steps driven per model since the hub started.\n# TYPE sfn_model_steps counter\n");
        for (model, stat) in &roster {
            let _ =
                writeln!(out, "sfn_model_steps{{model=\"{}\"}} {}", escape_label(model), stat.steps);
        }
        out.push_str("# HELP sfn_model_quarantines Quarantines per model since the hub started.\n# TYPE sfn_model_quarantines counter\n");
        for (model, stat) in &roster {
            let _ = writeln!(
                out,
                "sfn_model_quarantines{{model=\"{}\"}} {}",
                escape_label(model),
                stat.quarantines
            );
        }
    }

    // Kernel throughput.
    let kernels = hub.kernels();
    if !kernels.is_empty() {
        out.push_str("# HELP sfn_kernel_gflops Mean kernel throughput in GFLOP/s.\n# TYPE sfn_kernel_gflops gauge\n");
        for (kernel, stat) in &kernels {
            let _ = write!(out, "sfn_kernel_gflops{{kernel=\"{}\"}} ", escape_label(kernel));
            push_value(&mut out, stat.gflops());
            out.push('\n');
        }
    }

    // Fault tallies by kind.
    let faults = hub.faults();
    if !faults.is_empty() {
        out.push_str("# HELP sfn_faults_injected_by_kind Injected faults per kind.\n# TYPE sfn_faults_injected_by_kind counter\n");
        for (kind, n) in &faults {
            let _ =
                writeln!(out, "sfn_faults_injected_by_kind{{kind=\"{}\"}} {}", escape_label(kind), n);
        }
    }

    out
}

// ---------------------------------------------------------- validation

fn valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Splits `name{labels}` / `name` off a sample line, returning
/// `(name, canonical labelset, rest)`.
fn parse_sample_head(line: &str) -> Result<(String, String, String), String> {
    match line.find('{') {
        None => {
            let mut it = line.splitn(2, ' ');
            let name = it.next().unwrap_or("").to_string();
            let rest = it.next().unwrap_or("").to_string();
            Ok((name, String::new(), rest))
        }
        Some(open) => {
            let name = line[..open].to_string();
            let body = &line[open + 1..];
            let labels = parse_labels(body)?;
            let rest = body[labels.end..].trim_start().to_string();
            Ok((name, labels.canonical, rest))
        }
    }
}

struct Labels {
    canonical: String,
    end: usize,
}

fn parse_labels(body: &str) -> Result<Labels, String> {
    // body is everything after `{`; parse `name="value",...}`.
    let bytes = body.as_bytes();
    let mut i = 0usize;
    let mut pairs: Vec<(String, String)> = Vec::new();
    loop {
        if i >= bytes.len() {
            return Err("unterminated labelset".into());
        }
        if bytes[i] == b'}' {
            i += 1;
            break;
        }
        let name_start = i;
        while i < bytes.len() && bytes[i] != b'=' {
            i += 1;
        }
        let name = &body[name_start..i];
        if !valid_label_name(name) {
            return Err(format!("bad label name {name:?}"));
        }
        i += 1; // '='
        if i >= bytes.len() || bytes[i] != b'"' {
            return Err("label value is not quoted".into());
        }
        i += 1;
        let mut value = String::new();
        loop {
            if i >= bytes.len() {
                return Err("unterminated label value".into());
            }
            match bytes[i] {
                b'"' => {
                    i += 1;
                    break;
                }
                b'\\' => {
                    let esc = bytes.get(i + 1).ok_or("dangling escape")?;
                    match esc {
                        b'\\' => value.push('\\'),
                        b'"' => value.push('"'),
                        b'n' => value.push('\n'),
                        other => return Err(format!("bad escape \\{}", *other as char)),
                    }
                    i += 2;
                }
                _ => {
                    // Body is valid UTF-8 (it came from a &str); walk
                    // one whole char.
                    let ch = body[i..].chars().next().ok_or("bad utf-8")?;
                    value.push(ch);
                    i += ch.len_utf8();
                }
            }
        }
        pairs.push((name.to_string(), value));
        if i < bytes.len() && bytes[i] == b',' {
            i += 1;
        }
    }
    pairs.sort();
    let canonical = pairs
        .iter()
        .map(|(k, v)| format!("{k}={v:?}"))
        .collect::<Vec<_>>()
        .join(",");
    Ok(Labels { canonical, end: i })
}

fn valid_value(s: &str) -> bool {
    matches!(s, "NaN" | "+Inf" | "-Inf" | "Inf") || s.parse::<f64>().is_ok()
}

/// Validates a text exposition payload: `# HELP` / `# TYPE` comment
/// grammar, metric/label name charsets, quoted+escaped label values,
/// parseable sample values, `TYPE` declared before its samples, and no
/// duplicate `(name, labelset)`. Returns the number of sample lines
/// (series) on success.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    const TYPES: [&str; 5] = ["counter", "gauge", "summary", "histogram", "untyped"];
    let mut typed: BTreeSet<String> = BTreeSet::new();
    let mut sampled: BTreeSet<String> = BTreeSet::new();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    let mut samples = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap_or("");
            let ty = it.next().unwrap_or("");
            if !valid_metric_name(name) {
                return Err(format!("line {lineno}: bad metric name in TYPE: {name:?}"));
            }
            if !TYPES.contains(&ty) {
                return Err(format!("line {lineno}: unknown TYPE {ty:?}"));
            }
            if sampled.contains(name) {
                return Err(format!("line {lineno}: TYPE for {name} after its samples"));
            }
            if !typed.insert(name.to_string()) {
                return Err(format!("line {lineno}: duplicate TYPE for {name}"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            if !valid_metric_name(name) {
                return Err(format!("line {lineno}: bad metric name in HELP: {name:?}"));
            }
            continue;
        }
        if line.starts_with('#') {
            // Free-form comment: legal, ignored.
            continue;
        }
        let (name, labels, rest) =
            parse_sample_head(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if !valid_metric_name(&name) {
            return Err(format!("line {lineno}: bad metric name {name:?}"));
        }
        let mut fields = rest.split_whitespace();
        let value = fields.next().unwrap_or("");
        if !valid_value(value) {
            return Err(format!("line {lineno}: bad sample value {value:?}"));
        }
        if let Some(ts) = fields.next() {
            if ts.parse::<i64>().is_err() {
                return Err(format!("line {lineno}: bad timestamp {ts:?}"));
            }
        }
        if fields.next().is_some() {
            return Err(format!("line {lineno}: trailing garbage after value"));
        }
        if !seen.insert((name.clone(), labels)) {
            return Err(format!("line {lineno}: duplicate series {name} with same labels"));
        }
        // `_sum`/`_count`/`_bucket` samples belong to their family for
        // TYPE-ordering purposes.
        let family = name
            .strip_suffix("_sum")
            .or_else(|| name.strip_suffix("_count"))
            .or_else(|| name.strip_suffix("_bucket"))
            .unwrap_or(&name);
        sampled.insert(family.to_string());
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples".into());
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::Config;

    #[test]
    fn sanitize_produces_legal_names() {
        assert_eq!(sanitize_name("runtime.step_secs"), "runtime_step_secs");
        assert_eq!(sanitize_name("stage.step/advect"), "stage_step_advect");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert!(valid_metric_name(&format!("sfn_{}", sanitize_name("stage.step/advect"))));
    }

    #[test]
    fn rendered_exposition_validates_and_has_expected_series() {
        let hub = Hub::new(Config::default());
        let h = sfn_obs::Histogram::new();
        for i in 1..=100 {
            h.record(i as f64 / 1000.0);
        }
        hub.ingest_at("runtime.step_secs", &h.snapshot(), hub.now_ms());
        hub.set_gauge("scheduler.candidates", 5.0);
        hub.note_model_step("mlp-a", 1);
        hub.note_kernel("conv2d", 3, 1000, 4000.0);
        hub.note_fault("nan_output");
        let text = render(&hub);
        let series = validate_exposition(&text).expect("rendered exposition validates");
        assert!(series >= 20, "expected >= 20 series, got {series}:\n{text}");
        for needle in [
            "sfn_up 1",
            "sfn_runtime_step_secs{window=\"60s\",quantile=\"0.99\"}",
            "sfn_runtime_step_secs_count{window=\"600s\"} 100",
            "sfn_slo_burn_rate{objective=\"step-latency\",window=\"fast\"}",
            "sfn_model_steps{model=\"mlp-a\"} 1",
            "sfn_kernel_gflops{kernel=\"conv2d\"} 4",
            "sfn_faults_injected_by_kind{kind=\"nan_output\"} 1",
            "sfn_health_degraded 0",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn validator_rejects_doctored_payloads() {
        for (payload, why) in [
            ("", "empty"),
            ("sfn_up one\n", "non-numeric value"),
            ("sfn up 1\n", "space in name"),
            ("sfn_up{bad-label=\"x\"} 1\n", "bad label name"),
            ("sfn_up{l=\"x} 1\n", "unterminated label value"),
            ("sfn_up{l=\"x\"} 1 2 3\n", "trailing garbage"),
            ("sfn_up 1\nsfn_up 1\n", "duplicate series"),
            ("sfn_up 1\n# TYPE sfn_up gauge\n", "TYPE after samples"),
            ("# TYPE sfn_up flavour\nsfn_up 1\n", "unknown type"),
        ] {
            assert!(validate_exposition(payload).is_err(), "should reject: {why}");
        }
        let ok = "# HELP sfn_up x\n# TYPE sfn_up gauge\nsfn_up 1\nx{a=\"b\\\"c\",d=\"e\"} +Inf 123\n";
        assert_eq!(validate_exposition(ok), Ok(2));
    }
}
