//! `expocheck` — validates a Prometheus text exposition payload.
//!
//! Reads the payload from the file named on the command line (or from
//! stdin when no argument / `-` is given), runs
//! [`sfn_metrics::validate_exposition`], and exits 0 with a series
//! count on success or 1 with the first violation. CI uses it to
//! assert that a mid-chaos `/metrics` scrape is well-formed.

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let arg = std::env::args().nth(1);
    let (source, text) = match arg.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("expocheck: reading stdin: {e}");
                return ExitCode::FAILURE;
            }
            ("<stdin>".to_string(), buf)
        }
        Some("--help" | "-h") => {
            eprintln!("usage: expocheck [FILE|-]  (validates Prometheus text exposition)");
            return ExitCode::SUCCESS;
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(buf) => (path.to_string(), buf),
            Err(e) => {
                eprintln!("expocheck: reading {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    match sfn_metrics::validate_exposition(&text) {
        Ok(series) => {
            println!("{source}: ok ({series} series)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{source}: invalid exposition: {e}");
            ExitCode::FAILURE
        }
    }
}
