//! The metric hub: sliding-window quantile series, windowed counter
//! rates, gauges, and the roster/kernel/fault tallies the dashboard
//! renders.
//!
//! The hot path never touches this module. Samples are recorded into
//! `sfn-obs`'s lock-free counters and histograms (by existing
//! instrumentation, the event bridge, and [`crate::record_step`]); the
//! collector tick ([`Hub::collect_now`]) diffs those cumulative
//! aggregates once a second and files the per-tick deltas into ring
//! slots here. A window is then just the [`HistogramSnapshot::merge`]
//! of its live slots, computed at read (scrape) time.

use crate::slo::{self, SloConfig, SloState};
use sfn_obs::{bucket_floor, HistogramSnapshot, BUCKETS};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// Windowing, listener, and SLO configuration of a [`Hub`].
#[derive(Debug, Clone)]
pub struct Config {
    /// Width of one ring slot in milliseconds.
    pub slot_millis: u64,
    /// Ring length; `slots × slot_millis` is the slow window (10 min
    /// by default).
    pub slots: usize,
    /// Slots making up the fast window (60 s by default).
    pub fast_slots: usize,
    /// Collector cadence in milliseconds.
    pub tick_millis: u64,
    /// Maximum concurrent HTTP connections; excess gets `503`.
    pub max_connections: usize,
    /// Declarative SLO objectives.
    pub slo: SloConfig,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            slot_millis: 10_000,
            slots: 60,
            fast_slots: 6,
            tick_millis: 1_000,
            max_connections: 8,
            slo: SloConfig::default(),
        }
    }
}

fn env_millis(var: &str, default: u64) -> u64 {
    match std::env::var(var) {
        Ok(v) if !v.is_empty() => match v.trim().parse::<u64>() {
            Ok(ms) if ms > 0 => ms,
            _ => {
                sfn_obs::log(
                    sfn_obs::Level::Warn,
                    &format!("{var}={v:?} is not a positive millisecond count; keeping {default}"),
                );
                default
            }
        },
        _ => default,
    }
}

impl Config {
    /// Defaults overridden by `SFN_METRICS_SLOT_MS` / `SFN_METRICS_TICK_MS`
    /// and the `SFN_SLO_*` threshold variables.
    pub fn from_env() -> Self {
        let mut cfg = Config::default();
        cfg.slot_millis = env_millis("SFN_METRICS_SLOT_MS", cfg.slot_millis);
        cfg.tick_millis = env_millis("SFN_METRICS_TICK_MS", cfg.tick_millis);
        cfg.slo = SloConfig::from_env();
        cfg
    }

    /// Fast-window span in seconds.
    pub fn fast_window_secs(&self) -> f64 {
        (self.fast_slots as u64 * self.slot_millis) as f64 / 1e3
    }

    /// Slow-window span in seconds.
    pub fn slow_window_secs(&self) -> f64 {
        (self.slots as u64 * self.slot_millis) as f64 / 1e3
    }
}

/// Which sliding window to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Window {
    /// The short window (60 s at default config) — what alerts and
    /// `/healthz` react on.
    Fast,
    /// The long window (10 min at default config) — the confirmation
    /// window of the multi-window burn rule.
    Slow,
}

/// One ring slot: the merged deltas of one `slot_millis`-wide time
/// interval, tagged with the interval's absolute index so stale slots
/// are detected (and discarded) instead of wrapping into the next lap.
#[derive(Clone)]
struct Slot<T> {
    epoch: u64,
    value: T,
}

struct SeriesRing {
    slots: Vec<Option<Slot<HistogramSnapshot>>>,
}

impl SeriesRing {
    fn new(len: usize) -> Self {
        Self { slots: vec![None; len.max(1)] }
    }

    fn ingest(&mut self, delta: &HistogramSnapshot, epoch: u64) {
        let idx = (epoch % self.slots.len() as u64) as usize;
        match &mut self.slots[idx] {
            Some(slot) if slot.epoch == epoch => slot.value = slot.value.merge(delta),
            other => *other = Some(Slot { epoch, value: *delta }),
        }
    }

    /// Merge of the slots inside the last `window_slots` intervals
    /// ending at `epoch` (inclusive).
    fn window(&self, epoch: u64, window_slots: usize) -> HistogramSnapshot {
        let oldest = epoch.saturating_sub(window_slots.saturating_sub(1) as u64);
        let mut merged = HistogramSnapshot::empty();
        for slot in self.slots.iter().flatten() {
            if slot.epoch >= oldest && slot.epoch <= epoch {
                merged = merged.merge(&slot.value);
            }
        }
        merged
    }
}

struct CounterRing {
    slots: Vec<Option<Slot<u64>>>,
}

impl CounterRing {
    fn new(len: usize) -> Self {
        Self { slots: vec![None; len.max(1)] }
    }

    fn ingest(&mut self, delta: u64, epoch: u64) {
        let idx = (epoch % self.slots.len() as u64) as usize;
        match &mut self.slots[idx] {
            Some(slot) if slot.epoch == epoch => slot.value = slot.value.saturating_add(delta),
            other => *other = Some(Slot { epoch, value: delta }),
        }
    }

    fn window(&self, epoch: u64, window_slots: usize) -> u64 {
        let oldest = epoch.saturating_sub(window_slots.saturating_sub(1) as u64);
        self.slots
            .iter()
            .flatten()
            .filter(|s| s.epoch >= oldest && s.epoch <= epoch)
            .fold(0u64, |acc, s| acc.saturating_add(s.value))
    }
}

/// Live per-model tallies for the scheduler roster panel.
#[derive(Debug, Clone, Default)]
pub struct ModelStat {
    /// Steps this model has driven since the hub started.
    pub steps: u64,
    /// Times this model was quarantined.
    pub quarantines: u64,
    /// Uptime milliseconds of the last step it drove.
    pub last_seen_ms: u64,
}

/// Live per-kernel tallies from `prof.kernel` events.
#[derive(Debug, Clone, Default)]
pub struct KernelStat {
    /// Calls accumulated across reported scopes.
    pub calls: u64,
    /// Elapsed nanoseconds accumulated.
    pub ns: u64,
    /// FLOPs accumulated.
    pub flops: f64,
}

impl KernelStat {
    /// Mean throughput in GFLOP/s over everything reported so far.
    pub fn gflops(&self) -> f64 {
        if self.ns == 0 {
            0.0
        } else {
            self.flops / self.ns as f64
        }
    }
}

/// `/healthz` verdict.
#[derive(Debug, Clone, Default)]
pub struct Health {
    /// True while any SLO objective is burning.
    pub degraded: bool,
    /// One line per burning objective.
    pub reasons: Vec<String>,
}

#[derive(Default)]
pub(crate) struct Inner {
    series: BTreeMap<String, SeriesRing>,
    counter_rings: BTreeMap<String, CounterRing>,
    counters_total: BTreeMap<String, u64>,
    prev_hist: BTreeMap<String, HistogramSnapshot>,
    prev_counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    roster: BTreeMap<String, ModelStat>,
    kernels: BTreeMap<String, KernelStat>,
    faults: BTreeMap<String, u64>,
    pub(crate) slo: Vec<SloState>,
    reasons: Vec<String>,
    ticks: u64,
}

/// The registry every endpoint reads from. One global instance serves
/// a live process ([`crate::global`]); tests build private hubs with
/// explicit clocks.
pub struct Hub {
    cfg: Config,
    start: Instant,
    degraded: AtomicBool,
    inner: Mutex<Inner>,
}

fn lock(m: &Mutex<Inner>) -> MutexGuard<'_, Inner> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Hub {
    /// An empty hub with the given windowing/SLO configuration.
    pub fn new(cfg: Config) -> Self {
        let slo = slo::initial_state(&cfg.slo);
        Self {
            cfg,
            start: Instant::now(),
            degraded: AtomicBool::new(false),
            inner: Mutex::new(Inner { slo, ..Inner::default() }),
        }
    }

    /// The hub's configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Milliseconds since the hub was created (the clock every
    /// `*_at` method takes explicitly, so tests can drive time).
    pub fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Seconds since the hub was created.
    pub fn uptime_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn epoch_of(&self, now_ms: u64) -> u64 {
        now_ms / self.cfg.slot_millis.max(1)
    }

    fn window_slots(&self, window: Window) -> usize {
        match window {
            Window::Fast => self.cfg.fast_slots.min(self.cfg.slots),
            Window::Slow => self.cfg.slots,
        }
    }

    // ------------------------------------------------------ ingestion

    /// Files a histogram delta (the samples of one collector tick)
    /// into series `name` at time `now_ms`.
    pub fn ingest_at(&self, name: &str, delta: &HistogramSnapshot, now_ms: u64) {
        if delta.count == 0 {
            return;
        }
        let epoch = self.epoch_of(now_ms);
        let slots = self.cfg.slots;
        let mut inner = lock(&self.inner);
        inner
            .series
            .entry(name.to_string())
            .or_insert_with(|| SeriesRing::new(slots))
            .ingest(delta, epoch);
    }

    /// Files a counter increment into the windowed rate ring of `name`.
    pub fn ingest_counter_at(&self, name: &str, delta: u64, now_ms: u64) {
        if delta == 0 {
            return;
        }
        let epoch = self.epoch_of(now_ms);
        let slots = self.cfg.slots;
        let mut inner = lock(&self.inner);
        inner
            .counter_rings
            .entry(name.to_string())
            .or_insert_with(|| CounterRing::new(slots))
            .ingest(delta, epoch);
    }

    /// Sets gauge `name` to `v`.
    pub fn set_gauge(&self, name: &str, v: f64) {
        lock(&self.inner).gauges.insert(name.to_string(), v);
    }

    /// Credits one step to `model` in the roster.
    pub fn note_model_step(&self, model: &str, now_ms: u64) {
        let mut inner = lock(&self.inner);
        let stat = inner.roster.entry(model.to_string()).or_default();
        stat.steps = stat.steps.saturating_add(1);
        stat.last_seen_ms = now_ms;
    }

    /// Records a quarantine of `model`.
    pub fn note_model_quarantined(&self, model: &str) {
        let mut inner = lock(&self.inner);
        let stat = inner.roster.entry(model.to_string()).or_default();
        stat.quarantines = stat.quarantines.saturating_add(1);
    }

    /// Accumulates one `prof.kernel` report.
    pub fn note_kernel(&self, kernel: &str, calls: u64, ns: u64, flops: f64) {
        let mut inner = lock(&self.inner);
        let stat = inner.kernels.entry(kernel.to_string()).or_default();
        stat.calls = stat.calls.saturating_add(calls);
        stat.ns = stat.ns.saturating_add(ns);
        stat.flops += flops;
    }

    /// Tallies one injected fault of `kind`.
    pub fn note_fault(&self, kind: &str) {
        let mut inner = lock(&self.inner);
        let n = inner.faults.entry(kind.to_string()).or_insert(0);
        *n = n.saturating_add(1);
    }

    // -------------------------------------------------------- reading

    /// Windowed summary of series `name` (empty snapshot if the series
    /// has no live slots in the window).
    pub fn window_at(&self, name: &str, window: Window, now_ms: u64) -> HistogramSnapshot {
        let epoch = self.epoch_of(now_ms);
        let slots = self.window_slots(window);
        let inner = lock(&self.inner);
        inner
            .series
            .get(name)
            .map(|r| r.window(epoch, slots))
            .unwrap_or_else(HistogramSnapshot::empty)
    }

    /// Windowed sum of counter `name`.
    pub fn counter_window_at(&self, name: &str, window: Window, now_ms: u64) -> u64 {
        let epoch = self.epoch_of(now_ms);
        let slots = self.window_slots(window);
        let inner = lock(&self.inner);
        inner.counter_rings.get(name).map(|r| r.window(epoch, slots)).unwrap_or(0)
    }

    /// Names of every series with at least one live slot ever filed.
    pub fn series_names(&self) -> Vec<String> {
        lock(&self.inner).series.keys().cloned().collect()
    }

    /// Latest cumulative counter totals (collected from sfn-obs).
    pub fn counter_totals(&self) -> Vec<(String, u64)> {
        lock(&self.inner).counters_total.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        lock(&self.inner).gauges.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// The scheduler model roster, sorted by name.
    pub fn roster(&self) -> Vec<(String, ModelStat)> {
        lock(&self.inner).roster.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Per-kernel tallies, sorted by name.
    pub fn kernels(&self) -> Vec<(String, KernelStat)> {
        lock(&self.inner).kernels.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Per-fault-kind injection tallies.
    pub fn faults(&self) -> Vec<(String, u64)> {
        lock(&self.inner).faults.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Current SLO states (burn rates of the last evaluation).
    pub fn slo_states(&self) -> Vec<SloState> {
        lock(&self.inner).slo.clone()
    }

    /// Collector ticks performed so far.
    pub fn ticks(&self) -> u64 {
        lock(&self.inner).ticks
    }

    /// The `/healthz` verdict: degraded while any objective burns.
    pub fn health(&self) -> Health {
        Health {
            degraded: self.degraded.load(Ordering::Relaxed),
            reasons: lock(&self.inner).reasons.clone(),
        }
    }

    // ------------------------------------------------------ collector

    /// One collector tick at an explicit clock: diffs the cumulative
    /// sfn-obs counters/histograms against the previous tick, files
    /// the deltas into the window rings, and re-evaluates the SLOs.
    /// Emits `slo.burn` events outside the hub lock.
    pub fn collect_at(&self, now_ms: u64) {
        let hists = sfn_obs::histograms_snapshot();
        let counters = sfn_obs::counters_snapshot();
        let epoch = self.epoch_of(now_ms);
        let mut transitions;
        {
            let mut inner = lock(&self.inner);
            let slots = self.cfg.slots;
            for (name, cur) in &hists {
                let delta = match inner.prev_hist.get(name) {
                    Some(prev) => delta_snapshot(cur, prev),
                    None => *cur,
                };
                inner.prev_hist.insert(name.clone(), *cur);
                if delta.count > 0 {
                    inner
                        .series
                        .entry(name.clone())
                        .or_insert_with(|| SeriesRing::new(slots))
                        .ingest(&delta, epoch);
                }
            }
            for (name, cur) in &counters {
                let prev = inner.prev_counters.insert(name.clone(), *cur).unwrap_or(0);
                let delta = cur.saturating_sub(prev);
                inner.counters_total.insert(name.clone(), *cur);
                if delta > 0 {
                    inner
                        .counter_rings
                        .entry(name.clone())
                        .or_insert_with(|| CounterRing::new(slots))
                        .ingest(delta, epoch);
                }
            }
            inner.ticks += 1;

            // SLO pass over the freshly merged windows. Evaluation
            // needs the rings, so it runs under the same lock; the
            // resulting events are emitted after release.
            let window_slots = (self.window_slots(Window::Fast), self.window_slots(Window::Slow));
            transitions = slo::evaluate(&self.cfg.slo, &mut inner, epoch, window_slots);
            inner.reasons = transitions.reasons.clone();
        }
        self.degraded.store(!transitions.reasons.is_empty(), Ordering::Relaxed);
        for event in transitions.events.drain(..) {
            event.emit();
        }
    }

    /// [`Hub::collect_at`] on the real clock (what the collector
    /// thread calls).
    pub fn collect_now(&self) {
        self.collect_at(self.now_ms());
    }

    pub(crate) fn window_of_inner(
        inner: &mut Inner,
        name: &str,
        epoch: u64,
        window_slots: usize,
    ) -> HistogramSnapshot {
        inner
            .series
            .get(name)
            .map(|r| r.window(epoch, window_slots))
            .unwrap_or_else(HistogramSnapshot::empty)
    }

    pub(crate) fn counter_window_of_inner(
        inner: &mut Inner,
        name: &str,
        epoch: u64,
        window_slots: usize,
    ) -> u64 {
        inner.counter_rings.get(name).map(|r| r.window(epoch, window_slots)).unwrap_or(0)
    }
}

pub(crate) use Inner as HubInner;

/// The change in a cumulative histogram between two snapshots. Bucket
/// tallies and counts subtract (saturating — a reset mid-flight yields
/// the current snapshot, not garbage); min/max of the interval are
/// unknowable from cumulative aggregates, so they are approximated by
/// the delta's outermost occupied bucket edges.
pub fn delta_snapshot(cur: &HistogramSnapshot, prev: &HistogramSnapshot) -> HistogramSnapshot {
    if cur.count < prev.count {
        // The underlying histogram was reset; the whole current
        // snapshot is the delta.
        return *cur;
    }
    let mut buckets = [0u64; BUCKETS];
    for (i, dst) in buckets.iter_mut().enumerate() {
        *dst = cur.buckets[i].saturating_sub(prev.buckets[i]);
    }
    let count = cur.count - prev.count;
    let sum = if prev.sum.is_nan() { cur.sum } else { cur.sum - prev.sum };
    let lowest = buckets.iter().position(|&c| c > 0);
    let highest = buckets.iter().rposition(|&c| c > 0);
    let min = lowest.map(bucket_floor).unwrap_or(f64::NAN);
    let max = highest
        .map(|i| if i + 1 < BUCKETS { bucket_floor(i + 1) } else { bucket_floor(i) })
        .unwrap_or(f64::NAN);
    HistogramSnapshot::from_parts(count, sum, min, max, &buckets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfn_obs::Histogram;

    fn snap_of(samples: &[f64]) -> HistogramSnapshot {
        let h = Histogram::new();
        for &v in samples {
            h.record(v);
        }
        h.snapshot()
    }

    fn test_cfg() -> Config {
        Config {
            slot_millis: 100,
            slots: 10,
            fast_slots: 3,
            ..Config::default()
        }
    }

    #[test]
    fn windows_merge_only_live_slots() {
        let hub = Hub::new(test_cfg());
        hub.ingest_at("s", &snap_of(&[1.0]), 0);
        hub.ingest_at("s", &snap_of(&[1.0]), 150); // slot 1
        hub.ingest_at("s", &snap_of(&[1000.0]), 250); // slot 2
        // At t=250 the fast window (3 slots) covers slots 0..=2.
        assert_eq!(hub.window_at("s", Window::Fast, 250).count, 3);
        // At t=450 the fast window covers slots 2..=4: only the
        // 1000.0 sample survives.
        let w = hub.window_at("s", Window::Fast, 450);
        assert_eq!(w.count, 1);
        assert!(w.p50 >= 512.0, "p50 {}", w.p50);
        // The slow window (10 slots) still sees everything.
        assert_eq!(hub.window_at("s", Window::Slow, 450).count, 3);
    }

    #[test]
    fn old_samples_age_out_of_every_window() {
        let hub = Hub::new(test_cfg());
        hub.ingest_at("s", &snap_of(&[4.0, 5.0]), 0);
        hub.ingest_counter_at("c", 7, 0);
        assert_eq!(hub.window_at("s", Window::Slow, 0).count, 2);
        assert_eq!(hub.counter_window_at("c", Window::Slow, 0), 7);
        // Beyond the slow window (10 slots × 100 ms), nothing remains.
        let later = 10 * 100 + 250;
        assert_eq!(hub.window_at("s", Window::Fast, later).count, 0);
        assert_eq!(hub.window_at("s", Window::Slow, later).count, 0);
        assert!(hub.window_at("s", Window::Slow, later).p99.is_nan());
        assert_eq!(hub.counter_window_at("c", Window::Slow, later), 0);
    }

    #[test]
    fn ring_wraparound_does_not_resurrect_stale_slots() {
        let hub = Hub::new(test_cfg());
        hub.ingest_at("s", &snap_of(&[1.0]), 0);
        // Two laps later the same ring index is reused; the old slot's
        // epoch mismatch must discard, not merge.
        hub.ingest_at("s", &snap_of(&[2.0, 3.0]), 2 * 10 * 100);
        assert_eq!(hub.window_at("s", Window::Slow, 2 * 10 * 100).count, 2);
    }

    #[test]
    fn delta_subtracts_and_handles_resets() {
        let prev = snap_of(&[1.0, 2.0]);
        let cur = snap_of(&[1.0, 2.0, 700.0, 800.0]);
        let d = delta_snapshot(&cur, &prev);
        assert_eq!(d.count, 2);
        assert!((d.sum - 1500.0).abs() < 1e-9, "sum {}", d.sum);
        assert_eq!(d.buckets[sfn_obs::bucket_index(700.0)], 2);
        assert!(d.min <= 700.0 && d.max >= 800.0, "min {} max {}", d.min, d.max);
        // Reset: current count below previous → current is the delta.
        let after_reset = snap_of(&[5.0]);
        assert_eq!(delta_snapshot(&after_reset, &prev), after_reset);
    }

    #[test]
    fn roster_kernels_and_faults_accumulate() {
        let hub = Hub::new(test_cfg());
        hub.note_model_step("mlp-a", 10);
        hub.note_model_step("mlp-a", 20);
        hub.note_model_quarantined("mlp-a");
        hub.note_kernel("conv2d", 4, 2_000, 8_000.0);
        hub.note_kernel("conv2d", 1, 1_000, 1_000.0);
        hub.note_fault("nan_output");
        let roster = hub.roster();
        assert_eq!(roster[0].0, "mlp-a");
        assert_eq!((roster[0].1.steps, roster[0].1.quarantines, roster[0].1.last_seen_ms), (2, 1, 20));
        let kernels = hub.kernels();
        assert_eq!(kernels[0].1.calls, 5);
        assert!((kernels[0].1.gflops() - 3.0).abs() < 1e-12);
        assert_eq!(hub.faults(), vec![("nan_output".into(), 1)]);
    }
}
