//! Declarative SLOs and multi-window burn rates.
//!
//! Each objective defines a *bad-event fraction* over a window — the
//! share of steps that tripped the divergence guard, the share of
//! step latencies above the target — and a *budget*, the fraction the
//! service is allowed to burn. The burn rate is their ratio:
//!
//! ```text
//! burn(window) = bad_fraction(window) / budget
//! ```
//!
//! `burn == 1` means the error budget is being consumed exactly as
//! fast as it accrues; `burn == 30` means a 1% budget is burning at
//! 30% bad events. An objective is **burning** (degrading `/healthz`)
//! while `fast_burn ≥ fast_factor` **and** `slow_burn ≥ slow_factor`
//! — the classic multi-window rule: the fast window reacts quickly,
//! the slow window keeps one noisy slot from paging, and recovery is
//! driven by the fast window draining. State transitions emit
//! `slo.burn` events.

use crate::hub::{Hub, HubInner};
use sfn_obs::{bucket_index, EventBuilder, Level};

/// How an objective measures its bad-event fraction.
#[derive(Debug, Clone)]
pub enum SloKind {
    /// Fraction of windowed samples of `series` whose log2 bucket lies
    /// strictly above the bucket containing `threshold_secs`. Bucket
    /// granularity slightly under-counts (samples above the threshold
    /// inside its own bucket are not flagged), which biases the alarm
    /// towards quiet — never towards flapping.
    LatencyAbove {
        /// Histogram series name (e.g. `runtime.step_secs`).
        series: String,
        /// Latency target in seconds.
        threshold_secs: f64,
    },
    /// Windowed `numerator / denominator` of two counters (e.g.
    /// quarantines per step). A zero denominator reads as no traffic
    /// and burns nothing.
    RatePer {
        /// Counter counting bad events.
        numerator: String,
        /// Counter counting opportunities.
        denominator: String,
    },
}

/// One declarative objective.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Stable identifier (label value in the exposition).
    pub name: String,
    /// The measured bad-event fraction.
    pub kind: SloKind,
    /// Allowed bad-event fraction (the error budget).
    pub budget: f64,
}

/// The objective set plus the multi-window alarm factors.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Objectives evaluated every collector tick.
    pub objectives: Vec<SloSpec>,
    /// Fast-window burn factor required to start burning.
    pub fast_factor: f64,
    /// Slow-window burn factor required to start burning.
    pub slow_factor: f64,
}

fn env_threshold_secs(var: &str, default_ms: f64) -> f64 {
    match std::env::var(var) {
        Ok(v) if !v.is_empty() => match v.trim().parse::<f64>() {
            Ok(ms) if ms.is_finite() && ms > 0.0 => ms / 1e3,
            _ => {
                sfn_obs::log(
                    Level::Warn,
                    &format!("{var}={v:?} is not a positive millisecond count; keeping {default_ms}"),
                );
                default_ms / 1e3
            }
        },
        _ => default_ms / 1e3,
    }
}

impl Default for SloConfig {
    fn default() -> Self {
        Self::with_thresholds(0.25, 0.5)
    }
}

impl SloConfig {
    /// The four stock objectives with explicit latency targets
    /// (seconds).
    pub fn with_thresholds(step_p99_secs: f64, ckpt_p99_secs: f64) -> Self {
        let objectives = vec![
            SloSpec {
                name: "step-latency".into(),
                kind: SloKind::LatencyAbove {
                    series: "runtime.step_secs".into(),
                    threshold_secs: step_p99_secs,
                },
                budget: 0.01,
            },
            SloSpec {
                name: "divergence-guard-trips".into(),
                kind: SloKind::RatePer {
                    numerator: "runtime.quarantines".into(),
                    denominator: "runtime.steps".into(),
                },
                budget: 0.01,
            },
            SloSpec {
                name: "rollback-rate".into(),
                kind: SloKind::RatePer {
                    numerator: "runtime.rollbacks".into(),
                    denominator: "runtime.steps".into(),
                },
                budget: 0.01,
            },
            SloSpec {
                name: "ckpt-write-latency".into(),
                kind: SloKind::LatencyAbove {
                    series: "ckpt.write_secs".into(),
                    threshold_secs: ckpt_p99_secs,
                },
                budget: 0.05,
            },
        ];
        Self { objectives, fast_factor: 2.0, slow_factor: 1.0 }
    }

    /// Defaults with `SFN_SLO_STEP_P99_MS` / `SFN_SLO_CKPT_P99_MS`
    /// latency targets applied.
    pub fn from_env() -> Self {
        Self::with_thresholds(
            env_threshold_secs("SFN_SLO_STEP_P99_MS", 250.0),
            env_threshold_secs("SFN_SLO_CKPT_P99_MS", 500.0),
        )
    }
}

/// Last evaluation of one objective.
#[derive(Debug, Clone)]
pub struct SloState {
    /// The objective.
    pub spec: SloSpec,
    /// Burn rate over the fast window.
    pub fast_burn: f64,
    /// Burn rate over the slow window.
    pub slow_burn: f64,
    /// True while the multi-window rule holds.
    pub burning: bool,
}

pub(crate) fn initial_state(cfg: &SloConfig) -> Vec<SloState> {
    cfg.objectives
        .iter()
        .map(|spec| SloState { spec: spec.clone(), fast_burn: 0.0, slow_burn: 0.0, burning: false })
        .collect()
}

/// Fraction of a windowed snapshot's finite samples whose bucket lies
/// strictly above the bucket containing `threshold`.
pub fn fraction_above(snap: &sfn_obs::HistogramSnapshot, threshold: f64) -> f64 {
    let finite: u64 = snap.buckets.iter().fold(0u64, |acc, &c| acc.saturating_add(c));
    if finite == 0 {
        return 0.0;
    }
    let cut = bucket_index(threshold);
    let above: u64 = snap.buckets[cut + 1..].iter().fold(0u64, |acc, &c| acc.saturating_add(c));
    above as f64 / finite as f64
}

pub(crate) struct Transitions {
    pub reasons: Vec<String>,
    pub events: Vec<EventBuilder>,
}

fn burn_of(spec: &SloSpec, inner: &mut HubInner, epoch: u64, slots: usize) -> f64 {
    let bad = match &spec.kind {
        SloKind::LatencyAbove { series, threshold_secs } => {
            let snap = Hub::window_of_inner(inner, series, epoch, slots);
            fraction_above(&snap, *threshold_secs)
        }
        SloKind::RatePer { numerator, denominator } => {
            let den = Hub::counter_window_of_inner(inner, denominator, epoch, slots);
            if den == 0 {
                return 0.0;
            }
            let num = Hub::counter_window_of_inner(inner, numerator, epoch, slots);
            num as f64 / den as f64
        }
    };
    bad / spec.budget.max(1e-9)
}

/// One SLO pass over the hub's rings (called under the hub lock by the
/// collector). Returns the degraded reasons and the `slo.burn`
/// transition events to emit *after* the lock is released.
pub(crate) fn evaluate(
    cfg: &SloConfig,
    inner: &mut HubInner,
    epoch: u64,
    (fast_slots, slow_slots): (usize, usize),
) -> Transitions {
    let mut reasons = Vec::new();
    let mut events = Vec::new();
    let mut states = std::mem::take(&mut inner.slo);
    for state in &mut states {
        state.fast_burn = burn_of(&state.spec, inner, epoch, fast_slots);
        state.slow_burn = burn_of(&state.spec, inner, epoch, slow_slots);
        let now_burning =
            state.fast_burn >= cfg.fast_factor && state.slow_burn >= cfg.slow_factor;
        if now_burning != state.burning {
            let level = if now_burning { Level::Warn } else { Level::Info };
            events.push(
                sfn_obs::event(level, "slo.burn")
                    .field_str("objective", &state.spec.name)
                    .field_f64("fast_burn", state.fast_burn)
                    .field_f64("slow_burn", state.slow_burn)
                    .field_str("state", if now_burning { "burning" } else { "recovered" }),
            );
        }
        state.burning = now_burning;
        if now_burning {
            reasons.push(format!(
                "slo {} burning: fast {:.1}x, slow {:.1}x over budget",
                state.spec.name, state.fast_burn, state.slow_burn
            ));
        }
    }
    inner.slo = states;
    Transitions { reasons, events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfn_obs::Histogram;

    #[test]
    fn fraction_above_counts_only_strictly_higher_buckets() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(0.01); // well below
        }
        for _ in 0..10 {
            h.record(1.0); // well above a 0.25 target
        }
        let f = fraction_above(&h.snapshot(), 0.25);
        assert!((f - 0.10).abs() < 1e-9, "fraction {f}");
        // Samples inside the threshold's own bucket do not count.
        let h2 = Histogram::new();
        h2.record(0.3); // same [0.25, 0.5) bucket as the target
        assert_eq!(fraction_above(&h2.snapshot(), 0.25), 0.0);
        assert_eq!(fraction_above(&Histogram::new().snapshot(), 0.25), 0.0);
    }

    #[test]
    fn default_objectives_cover_the_four_slos() {
        let cfg = SloConfig::default();
        let names: Vec<&str> = cfg.objectives.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(
            names,
            ["step-latency", "divergence-guard-trips", "rollback-rate", "ckpt-write-latency"]
        );
        assert!(cfg.fast_factor > cfg.slow_factor);
    }
}
