//! Declared-vs-measured FLOP audit for the solver kernels.
//!
//! Every solver reports an analytic FLOP count in [`SolveStats`] and
//! records the same number into the `sfn_prof` kernel table. This test
//! re-derives the counts from first principles (ops actually executed
//! by the algorithm, counted by hand from the source) and requires the
//! declared model to agree within 5%.
//!
//! Regression context: the PCG iteration model used to charge
//! `2 dots + 3 axpys = 10n` vector flops per iteration while the loop
//! actually performs `2 dots + 2 axpys + 1 norm + 1 xpay = 12n`, and
//! the matrix-free stencil was charged 10n against the plan's exact 9n.
//!
//! Single test function: `sfn_prof` state is process-global and the
//! default harness runs `#[test]`s in parallel threads.

use sfn_grid::{CellFlags, Field2};
use sfn_solver::ic0::MicPreconditioner;
use sfn_solver::pcg::{CgSolver, PcgSolver};
use sfn_solver::{CsrMatrix, PoissonProblem, PoissonSolver};

fn random_rhs(flags: &CellFlags, seed: u64) -> Field2 {
    let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(7);
    Field2::from_fn(flags.nx(), flags.ny(), |i, j| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        if flags.is_fluid(i, j) {
            (state % 2000) as f64 / 1000.0 - 1.0
        } else {
            0.0
        }
    })
}

fn kernel_totals(prefix: &str) -> sfn_prof::KernelTotals {
    let mut sum = sfn_prof::KernelTotals::default();
    for (name, t) in sfn_prof::snapshot() {
        if name.starts_with(prefix) {
            sum.calls += t.calls;
            sum.flops += t.flops;
            sum.bytes_read += t.bytes_read;
            sum.bytes_written += t.bytes_written;
        }
    }
    sum
}

fn assert_within_5pct(declared: u64, actual: u64, what: &str) {
    let diff = declared.abs_diff(actual) as f64;
    assert!(
        diff <= 0.05 * actual as f64,
        "{what}: declared {declared} vs actual {actual} ({:.1}% off)",
        100.0 * diff / actual as f64
    );
}

#[test]
fn declared_flops_match_measured_within_5pct() {
    let mut flags = CellFlags::smoke_box(64, 64);
    flags.add_solid_disc(32.0, 28.0, 7.0);
    let problem = PoissonProblem::new(&flags, 1.0 / 64.0);
    let n = problem.unknowns() as u64;
    let b = random_rhs(&flags, 13);

    // --- CG (identity preconditioner) -------------------------------
    sfn_prof::set_enabled(true);
    sfn_prof::reset();
    let (_, stats) = CgSolver::plain(1e-8, 10_000).solve(&problem, &b);
    let cg = kernel_totals("cg");
    sfn_prof::reset();
    assert!(stats.converged);
    let it = stats.iterations as u64;
    // Profiler sees exactly what the solver declared.
    assert_eq!(cg.flops, stats.flops);
    // Declared model: 4n setup (‖b‖ + initial dot) plus per-iteration
    // 9n stencil + 12n vector ops. Ground truth executes 2n dot + 2n
    // xpay fewer on the converging iteration.
    assert_eq!(stats.flops, 4 * n + it * 21 * n);
    let actual = 4 * n + it * 21 * n - 4 * n;
    assert_within_5pct(stats.flops, actual, "cg solve");

    // --- PCG with MIC(0) --------------------------------------------
    sfn_prof::reset();
    let (_, stats) = PcgSolver::new(MicPreconditioner::default(), 1e-8, 10_000).solve(&problem, &b);
    let pcg = kernel_totals("pcg");
    let mic = kernel_totals("mic0");
    sfn_prof::reset();
    assert!(stats.converged);
    let it = stats.iterations as u64;
    assert_eq!(pcg.flops, stats.flops);
    // MIC(0) apply is 10n; setup adds the initial apply + 4n.
    assert_eq!(stats.flops, 14 * n + it * 31 * n);
    // The converging iteration skips the preconditioner apply, the
    // follow-up dot and the xpay: 14n less than the declared model.
    let actual = 14 * n + it * 31 * n - 14 * n;
    assert_within_5pct(stats.flops, actual, "pcg solve");
    // mic0's own kernel entry: one 14n build plus one 10n apply per
    // performed application (initial + each non-final iteration).
    let applies = it; // 1 initial + (it − 1) in-loop
    assert_eq!(mic.calls, 1 + applies);
    assert_eq!(mic.flops, 14 * n + applies * 10 * n);

    // --- Assembled SpMV ---------------------------------------------
    sfn_prof::reset();
    let a = CsrMatrix::assemble(&problem);
    let x = a.pack(&b);
    let mut y = vec![0.0; a.rows()];
    a.spmv(&x, &mut y);
    let spmv = kernel_totals("spmv");
    sfn_prof::set_enabled(false);
    // Exactly one multiply-add per stored non-zero.
    assert_eq!(spmv.calls, 1);
    assert_eq!(spmv.flops, 2 * a.nnz() as u64);
}
