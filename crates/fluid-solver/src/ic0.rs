//! Modified Incomplete Cholesky level-0 — MICCG(0).
//!
//! This is the exact preconditioner the paper names for mantaflow:
//! "The pre-conditioner applied in mantaflow is the Modified Incomplete
//! Cholesky L0 preconditioner, called MICCG(0)" (§2.1). We follow the
//! standard formulation for the MAC pressure matrix (Bridson, *Fluid
//! Simulation for Computer Graphics*): a lower-triangular factor with
//! the same sparsity as `A`, whose diagonal absorbs a `τ`-weighted
//! share of the dropped fill-in.
//!
//! The factor is built on the *unscaled* stencil (diagonal = neighbour
//! degree, off-diagonal −1); a constant scaling of `M` leaves the PCG
//! iteration unchanged, so the `1/dx²` factor can be ignored.

use crate::laplace::PoissonProblem;
use crate::pcg::{Preconditioner, PreparedPreconditioner};
use sfn_grid::{CellType, Field2};

/// MIC(0) factory. `tau` blends incomplete Cholesky (0.0) with the
/// fully modified variant (1.0); `sigma` is the diagonal safety clamp.
#[derive(Debug, Clone, Copy)]
pub struct MicPreconditioner {
    /// Modification weight τ (0.97 is the literature default).
    pub tau: f64,
    /// Safety threshold σ: if the computed pivot drops below
    /// `σ · A_diag`, fall back to the unmodified diagonal.
    pub sigma: f64,
}

impl Default for MicPreconditioner {
    fn default() -> Self {
        Self {
            tau: 0.97,
            sigma: 0.25,
        }
    }
}

impl Preconditioner for MicPreconditioner {
    type Prepared = MicFactor;

    fn prepare(&self, problem: &PoissonProblem<'_>) -> MicFactor {
        MicFactor::build(problem, self.tau, self.sigma)
    }

    fn name(&self) -> &'static str {
        "mic0"
    }
}

/// The prepared MIC(0) factor: `precon(i,j) = 1/L_diag(i,j)`, plus
/// precomputed substitution coefficients.
///
/// The triangular sweeps used to re-derive each cell's neighbour links
/// from the flags on every application. The link arrays below bake the
/// `a_plus · precon` products in once at build time — zero wherever a
/// link is absent — so both sweeps become straight multiply-subtract
/// chains over a fluid-cell index list with no flag queries. The sweeps
/// run on padded work buffers (offset `nx + 1`) so neighbour indexing
/// needs no bounds checks: out-of-range neighbours land in the zero
/// padding and are multiplied by a zero link.
#[derive(Debug, Clone)]
pub struct MicFactor {
    precon: Field2,
    /// Flat indices of fluid cells in lexicographic order.
    fluid: Vec<usize>,
    /// Forward coefficient on `q(i-1, j)`: `a_plus_i(i-1,j)·precon(i-1,j)`.
    li: Vec<f64>,
    /// Forward coefficient on `q(i, j-1)`: `a_plus_j(i,j-1)·precon(i,j-1)`.
    lj: Vec<f64>,
    /// Backward coefficient on `z(i+1, j)`: `a_plus_i(i,j)·precon(i,j)`.
    ui: Vec<f64>,
    /// Backward coefficient on `z(i, j+1)`: `a_plus_j(i,j)·precon(i,j)`.
    uj: Vec<f64>,
    /// Flattened `precon` (diagonal scaling for both sweeps).
    pc: Vec<f64>,
    nx: usize,
}

impl MicFactor {
    /// Off-diagonal entry linking `(i,j)` to `(i+1,j)` in the unscaled
    /// matrix: −1 when both cells are fluid, else 0.
    #[inline]
    fn a_plus_i(problem: &PoissonProblem<'_>, i: isize, j: isize) -> f64 {
        let here = problem.flags.at_or_solid(i, j);
        let right = problem.flags.at_or_solid(i + 1, j);
        if here == CellType::Fluid && right == CellType::Fluid {
            -1.0
        } else {
            0.0
        }
    }

    /// Off-diagonal entry linking `(i,j)` to `(i,j+1)`.
    #[inline]
    fn a_plus_j(problem: &PoissonProblem<'_>, i: isize, j: isize) -> f64 {
        let here = problem.flags.at_or_solid(i, j);
        let up = problem.flags.at_or_solid(i, j + 1);
        if here == CellType::Fluid && up == CellType::Fluid {
            -1.0
        } else {
            0.0
        }
    }

    /// Builds the factor in one lexicographic sweep.
    pub fn build(problem: &PoissonProblem<'_>, tau: f64, sigma: f64) -> Self {
        let scope = sfn_prof::KernelScope::enter("mic0");
        if scope.active() {
            // One sweep: ~14 flops per fluid cell over the two already
            // computed neighbour pivots (~4 doubles read, 1 written).
            let n = problem.unknowns() as u64;
            scope.record(14 * n, 4 * n * 8, n * 8);
        }
        let (nx, ny) = (problem.nx(), problem.ny());
        let mut precon = Field2::new(nx, ny);
        for j in 0..ny {
            for i in 0..nx {
                if !problem.flags.is_fluid(i, j) {
                    continue;
                }
                let (ii, jj) = (i as isize, j as isize);
                let a_diag = problem.degree(i, j);
                let pl = if i > 0 { precon.at(i - 1, j) } else { 0.0 };
                let pb = if j > 0 { precon.at(i, j - 1) } else { 0.0 };
                let apl = Self::a_plus_i(problem, ii - 1, jj); // link (i-1,j)->(i,j)
                let apb = Self::a_plus_j(problem, ii, jj - 1); // link (i,j-1)->(i,j)
                // Fill-in terms of the modified factorisation.
                let apl_j = Self::a_plus_j(problem, ii - 1, jj);
                let apb_i = Self::a_plus_i(problem, ii, jj - 1);
                let mut e = a_diag
                    - (apl * pl) * (apl * pl)
                    - (apb * pb) * (apb * pb)
                    - tau * (apl * apl_j * pl * pl + apb * apb_i * pb * pb);
                if e < sigma * a_diag {
                    e = a_diag;
                }
                precon.set(i, j, 1.0 / e.sqrt());
            }
        }
        // Bake the substitution coefficients (same `(a_plus · precon)`
        // grouping as the naive sweep, so rounding is unchanged).
        let len = nx * ny;
        let mut fluid = Vec::with_capacity(problem.unknowns());
        let (mut li, mut lj) = (vec![0.0; len], vec![0.0; len]);
        let (mut ui, mut uj) = (vec![0.0; len], vec![0.0; len]);
        for j in 0..ny {
            for i in 0..nx {
                if !problem.flags.is_fluid(i, j) {
                    continue;
                }
                let c = j * nx + i;
                fluid.push(c);
                let (ii, jj) = (i as isize, j as isize);
                if i > 0 {
                    li[c] = Self::a_plus_i(problem, ii - 1, jj) * precon.at(i - 1, j);
                }
                if j > 0 {
                    lj[c] = Self::a_plus_j(problem, ii, jj - 1) * precon.at(i, j - 1);
                }
                ui[c] = Self::a_plus_i(problem, ii, jj) * precon.at(i, j);
                uj[c] = Self::a_plus_j(problem, ii, jj) * precon.at(i, j);
            }
        }
        let pc = precon.data().to_vec();
        Self {
            precon,
            fluid,
            li,
            lj,
            ui,
            uj,
            pc,
            nx,
        }
    }

    /// Read-only access to the diagonal factor (for tests).
    pub fn precon(&self) -> &Field2 {
        &self.precon
    }
}

impl PreparedPreconditioner for MicFactor {
    /// `z = M⁻¹ r` via forward substitution `L q = r` followed by
    /// backward substitution `Lᵀ z = q`, both over the precomputed link
    /// arrays. Each sweep is a loop-carried recurrence (cell `c`
    /// depends on the just-written neighbour), so it stays scalar by
    /// construction; the win over the naive form is dropping the flag
    /// queries and bounds checks from the inner loop.
    fn apply(&self, problem: &PoissonProblem<'_>, r: &Field2, z: &mut Field2) {
        let scope = sfn_prof::KernelScope::enter("mic0");
        if scope.active() {
            // Per fluid cell and sweep: source + diagonal + two links +
            // two neighbour values read, one value written.
            let n = problem.unknowns() as u64;
            scope.record(self.flops(problem), 12 * n * 8, 2 * n * 8);
        }
        let nx = self.nx;
        debug_assert_eq!((r.w(), r.h()), (nx, self.precon.h()));
        let len = self.pc.len();
        // Padded work buffers: logical cell c lives at off + c, so the
        // four neighbour offsets (−1, −nx, +1, +nx) always stay in
        // bounds. Padding is zero and only ever multiplied by zero
        // links.
        let off = nx + 1;
        let mut q = vec![0.0; len + 2 * (nx + 1)];
        let rd = r.data();
        // Forward: L q = r.
        for &c in &self.fluid {
            let t = rd[c] - self.li[c] * q[off + c - 1] - self.lj[c] * q[off + c - nx];
            q[off + c] = t * self.pc[c];
        }
        // Backward: Lᵀ z = q (reverse lexicographic order).
        let mut zb = vec![0.0; len + 2 * (nx + 1)];
        for &c in self.fluid.iter().rev() {
            let t = q[off + c] - self.ui[c] * zb[off + c + 1] - self.uj[c] * zb[off + c + nx];
            zb[off + c] = t * self.pc[c];
        }
        z.fill(0.0);
        let zd = z.data_mut();
        for &c in &self.fluid {
            zd[c] = zb[off + c];
        }
    }

    fn flops(&self, problem: &PoissonProblem<'_>) -> u64 {
        // Two triangular sweeps: 2 multiply-subtract pairs plus the
        // diagonal scale = 5 flops per fluid cell each.
        10 * problem.unknowns() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcg::{CgSolver, PcgSolver};
    use crate::PoissonSolver;
    use sfn_grid::CellFlags;

    fn random_rhs(flags: &CellFlags, seed: u64) -> Field2 {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(3);
        Field2::from_fn(flags.nx(), flags.ny(), |i, j| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if flags.is_fluid(i, j) {
                (state % 2000) as f64 / 1000.0 - 1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn factor_is_positive_on_fluid_cells() {
        let mut flags = CellFlags::smoke_box(16, 16);
        flags.add_solid_disc(8.0, 8.0, 3.0);
        let p = PoissonProblem::new(&flags, 1.0);
        let f = MicFactor::build(&p, 0.97, 0.25);
        for j in 0..16 {
            for i in 0..16 {
                if flags.is_fluid(i, j) {
                    assert!(f.precon().at(i, j) > 0.0);
                } else {
                    assert_eq!(f.precon().at(i, j), 0.0);
                }
            }
        }
    }

    #[test]
    fn preconditioner_application_is_spd() {
        // z = M⁻¹r must satisfy r·z > 0 for r ≠ 0 (M SPD).
        let flags = CellFlags::smoke_box(12, 12);
        let p = PoissonProblem::new(&flags, 1.0);
        let f = MicFactor::build(&p, 0.97, 0.25);
        let mut z = Field2::new(12, 12);
        for seed in 0..10 {
            let r = random_rhs(&flags, seed);
            f.apply(&p, &r, &mut z);
            assert!(p.dot(&r, &z) > 0.0, "seed {seed}");
        }
    }

    #[test]
    fn preconditioner_is_symmetric() {
        // x·(M⁻¹y) == y·(M⁻¹x) for all x, y.
        let flags = CellFlags::smoke_box(10, 10);
        let p = PoissonProblem::new(&flags, 1.0);
        let f = MicFactor::build(&p, 0.97, 0.25);
        let x = random_rhs(&flags, 42);
        let y = random_rhs(&flags, 43);
        let mut mx = Field2::new(10, 10);
        let mut my = Field2::new(10, 10);
        f.apply(&p, &x, &mut mx);
        f.apply(&p, &y, &mut my);
        let a = p.dot(&x, &my);
        let b = p.dot(&y, &mx);
        assert!((a - b).abs() < 1e-9 * a.abs().max(b.abs()).max(1.0));
    }

    #[test]
    fn pcg_converges_faster_than_cg() {
        let mut flags = CellFlags::smoke_box(48, 48);
        flags.add_solid_disc(24.0, 20.0, 6.0);
        let p = PoissonProblem::new(&flags, 1.0);
        let b = random_rhs(&flags, 9);
        let cg = CgSolver::plain(1e-8, 10_000);
        let pcg = PcgSolver::new(MicPreconditioner::default(), 1e-8, 10_000);
        let (_, s1) = cg.solve(&p, &b);
        let (_, s2) = pcg.solve(&p, &b);
        assert!(s1.converged && s2.converged);
        assert!(
            s2.iterations * 2 < s1.iterations,
            "MICCG(0) {} vs CG {} iterations",
            s2.iterations,
            s1.iterations
        );
    }

    #[test]
    fn pcg_solution_matches_cg_solution() {
        let flags = CellFlags::smoke_box(16, 16);
        let p = PoissonProblem::new(&flags, 1.0);
        let b = random_rhs(&flags, 77);
        let cg = CgSolver::plain(1e-11, 10_000);
        let pcg = PcgSolver::new(MicPreconditioner::default(), 1e-11, 10_000);
        let (x1, _) = cg.solve(&p, &b);
        let (x2, _) = pcg.solve(&p, &b);
        for (a, b) in x1.data().iter().zip(x2.data()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn plain_ic0_also_works() {
        // τ=0 is classic IC(0); should still precondition correctly.
        let flags = CellFlags::smoke_box(24, 24);
        let p = PoissonProblem::new(&flags, 1.0);
        let b = random_rhs(&flags, 5);
        let ic = PcgSolver::new(
            MicPreconditioner {
                tau: 0.0,
                sigma: 0.25,
            },
            1e-8,
            5_000,
        );
        let (x, stats) = ic.solve(&p, &b);
        assert!(stats.converged);
        let mut r = Field2::new(24, 24);
        p.residual(&x, &b, &mut r);
        assert!(p.norm(&r) / p.norm(&b) < 1e-7);
    }
}
