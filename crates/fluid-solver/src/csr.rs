//! Assembled sparse-matrix (CSR) backend for the pressure operator.
//!
//! The solvers in this crate apply the 5-point stencil matrix-free,
//! which is what production fluid solvers do. An explicitly assembled
//! CSR (compressed sparse row) matrix is still valuable: it
//! cross-validates the matrix-free operator in tests, exposes the
//! classic SpMV kernel for benchmarking, and is the form an external
//! algebraic solver would consume.

use crate::laplace::PoissonProblem;
use sfn_grid::{CellType, Field2};

/// A CSR matrix over the *fluid cells* of a Poisson problem, together
/// with the mapping between grid cells and row indices.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
    /// ELL (tap-major) mirror of the matrix for the vector SpMV path:
    /// tap `t` of row `r` lives at `t·rows + r`. Rows shorter than
    /// [`ELL_TAPS`] are padded with value 0.0 / column 0, so the padded
    /// taps contribute an exact ±0 and the vector product matches the
    /// CSR scalar product bit-for-bit (modulo the sign of zero).
    ell_values: Vec<f64>,
    /// Tap-major column indices (i32 so four fit an XMM gather index).
    ell_cols: Vec<i32>,
    /// Flat grid index (j·nx + i) of each row's cell.
    cell_of_row: Vec<usize>,
    /// Row of each flat grid index (usize::MAX for non-fluid cells).
    row_of_cell: Vec<usize>,
    nx: usize,
    ny: usize,
}

/// Width of the ELL format: the 5-point stencil has at most 5 entries
/// per row.
pub const ELL_TAPS: usize = 5;

impl CsrMatrix {
    /// Assembles the pressure operator of `problem` (the same matrix
    /// [`PoissonProblem::apply`] applies matrix-free).
    pub fn assemble(problem: &PoissonProblem<'_>) -> Self {
        let (nx, ny) = (problem.nx(), problem.ny());
        let inv_dx2 = 1.0 / (problem.dx * problem.dx);
        let mut row_of_cell = vec![usize::MAX; nx * ny];
        let mut cell_of_row = Vec::new();
        for j in 0..ny {
            for i in 0..nx {
                if problem.flags.is_fluid(i, j) {
                    row_of_cell[j * nx + i] = cell_of_row.len();
                    cell_of_row.push(j * nx + i);
                }
            }
        }
        let n = cell_of_row.len();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for &cell in &cell_of_row {
            let (i, j) = (cell % nx, cell / nx);
            // Diagonal first, then neighbours in deterministic order.
            col_idx.push(row_of_cell[cell]);
            values.push(problem.degree(i, j) * inv_dx2);
            for (di, dj) in [(1isize, 0isize), (-1, 0), (0, 1), (0, -1)] {
                let (ni, nj) = (i as isize + di, j as isize + dj);
                if problem.flags.at_or_solid(ni, nj) == CellType::Fluid {
                    let ncell = nj as usize * nx + ni as usize;
                    col_idx.push(row_of_cell[ncell]);
                    values.push(-inv_dx2);
                }
            }
            row_ptr.push(col_idx.len());
        }
        // ELL mirror, tap-major. Tap t of row r is the row's t-th CSR
        // entry (so the vector path accumulates in the same order).
        let mut ell_values = vec![0.0; ELL_TAPS * n];
        let mut ell_cols = vec![0i32; ELL_TAPS * n];
        for r in 0..n {
            for (t, k) in (row_ptr[r]..row_ptr[r + 1]).enumerate() {
                ell_values[t * n + r] = values[k];
                ell_cols[t * n + r] = col_idx[k] as i32;
            }
        }
        Self {
            row_ptr,
            col_idx,
            values,
            ell_values,
            ell_cols,
            cell_of_row,
            row_of_cell,
            nx,
            ny,
        }
    }

    /// Number of rows (= fluid cells).
    pub fn rows(&self) -> usize {
        self.cell_of_row.len()
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Sparse matrix-vector product `y = A x` on packed fluid vectors.
    ///
    /// Dispatches between the scalar CSR reference and a gathered
    /// tap-major ELL kernel (AVX2); the two accumulate each row's taps
    /// in the same order and agree bit-for-bit (modulo the sign of
    /// zero, from padded taps).
    ///
    /// # Panics
    /// Panics if the vector lengths differ from [`CsrMatrix::rows`].
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        let n = self.rows();
        assert_eq!(x.len(), n, "x length");
        assert_eq!(y.len(), n, "y length");
        #[cfg(target_arch = "x86_64")]
        let use_ell = sfn_par::simd::level() == sfn_par::simd::SimdLevel::Avx2;
        #[cfg(not(target_arch = "x86_64"))]
        let use_ell = false;
        let scope =
            sfn_prof::KernelScope::enter(if use_ell { "spmv.ell.avx2" } else { "spmv.csr" });
        if scope.active() {
            // Useful FLOPs are per stored non-zero on both paths.
            let nnz = self.nnz() as u64;
            let read = if use_ell {
                // ELL: 5 taps/row of value (8 B) + column (4 B) +
                // gathered x element (8 B).
                (ELL_TAPS * n) as u64 * 20
            } else {
                // CSR: value + column + gathered x per non-zero, two
                // row pointers per row.
                nnz * 24 + n as u64 * 16
            };
            scope.record(2 * nnz, read, n as u64 * 8);
        }
        if use_ell {
            #[cfg(target_arch = "x86_64")]
            unsafe {
                self.spmv_ell_avx2(x, y)
            }
        } else {
            self.spmv_csr(x, y);
        }
    }

    /// Scalar CSR reference — the differential oracle for the ELL path.
    fn spmv_csr(&self, x: &[f64], y: &mut [f64]) {
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *out = acc;
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn spmv_ell_avx2(&self, x: &[f64], y: &mut [f64]) {
        use std::arch::x86_64::*;
        let n = self.rows();
        let xp = x.as_ptr();
        let vp = self.ell_values.as_ptr();
        let cp = self.ell_cols.as_ptr();
        let mut r = 0;
        while r + 4 <= n {
            let mut acc = _mm256_setzero_pd();
            for t in 0..ELL_TAPS {
                let vals = _mm256_loadu_pd(vp.add(t * n + r));
                let cols = _mm_loadu_si128(cp.add(t * n + r) as *const __m128i);
                let xs = _mm256_i32gather_pd::<8>(xp, cols);
                acc = _mm256_add_pd(acc, _mm256_mul_pd(vals, xs));
            }
            _mm256_storeu_pd(y.as_mut_ptr().add(r), acc);
            r += 4;
        }
        // Tail rows: same tap-major accumulation, scalar.
        for row in r..n {
            let mut acc = 0.0;
            for t in 0..ELL_TAPS {
                acc += self.ell_values[t * n + row] * x[self.ell_cols[t * n + row] as usize];
            }
            y[row] = acc;
        }
    }

    /// Packs a grid field into a fluid-cell vector.
    pub fn pack(&self, field: &Field2) -> Vec<f64> {
        assert_eq!((field.w(), field.h()), (self.nx, self.ny), "shape");
        self.cell_of_row
            .iter()
            .map(|&cell| field.data()[cell])
            .collect()
    }

    /// Unpacks a fluid-cell vector into a grid field (zeros elsewhere).
    pub fn unpack(&self, x: &[f64]) -> Field2 {
        assert_eq!(x.len(), self.rows(), "vector length");
        let mut out = Field2::new(self.nx, self.ny);
        for (&cell, &v) in self.cell_of_row.iter().zip(x) {
            out.data_mut()[cell] = v;
        }
        out
    }

    /// Row index of grid cell `(i, j)`, if it is a fluid cell.
    pub fn row_of(&self, i: usize, j: usize) -> Option<usize> {
        let r = self.row_of_cell[j * self.nx + i];
        (r != usize::MAX).then_some(r)
    }

    /// Verifies structural invariants (sorted row_ptr, in-range columns,
    /// symmetric pattern+values). Used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.rows();
        if self.row_ptr.len() != n + 1 {
            return Err("row_ptr length".into());
        }
        if self.row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err("row_ptr not monotone".into());
        }
        if self.col_idx.iter().any(|&c| c >= n) {
            return Err("column out of range".into());
        }
        // Symmetry: A[r][c] == A[c][r].
        let entry = |r: usize, c: usize| -> f64 {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                if self.col_idx[k] == c {
                    return self.values[k];
                }
            }
            0.0
        };
        for r in 0..n {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                if (self.values[k] - entry(c, r)).abs() > 1e-12 {
                    return Err(format!("asymmetric at ({r},{c})"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfn_grid::CellFlags;

    fn problem_flags() -> CellFlags {
        let mut flags = CellFlags::smoke_box(12, 10);
        flags.add_solid_disc(6.0, 5.0, 2.0);
        flags
    }

    #[test]
    fn assembly_matches_matrix_free_operator() {
        let flags = problem_flags();
        let p = PoissonProblem::new(&flags, 0.5);
        let a = CsrMatrix::assemble(&p);
        a.validate().expect("valid CSR");
        // Random-ish field -> compare A·x both ways.
        let x = Field2::from_fn(12, 10, |i, j| {
            if flags.is_fluid(i, j) {
                ((i * 13 + j * 7) % 9) as f64 / 4.0 - 1.0
            } else {
                0.0
            }
        });
        let mut free = Field2::new(12, 10);
        p.apply(&x, &mut free);
        let packed = a.pack(&x);
        let mut y = vec![0.0; a.rows()];
        a.spmv(&packed, &mut y);
        let grid_y = a.unpack(&y);
        for j in 0..10 {
            for i in 0..12 {
                assert!(
                    (grid_y.at(i, j) - free.at(i, j)).abs() < 1e-12,
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn ell_vector_path_matches_csr_scalar_bitwise() {
        use sfn_par::simd::{with_level, SimdLevel};
        let flags = problem_flags();
        let p = PoissonProblem::new(&flags, 0.5);
        let a = CsrMatrix::assemble(&p);
        let x: Vec<f64> = (0..a.rows()).map(|r| ((r * 17) % 29) as f64 / 3.0 - 4.0).collect();
        let mut scalar = vec![0.0; a.rows()];
        let mut auto = vec![0.0; a.rows()];
        with_level(SimdLevel::Scalar, || a.spmv(&x, &mut scalar));
        a.spmv(&x, &mut auto);
        for (s, v) in scalar.iter().zip(&auto) {
            // ±0 from padded taps is the only tolerated divergence.
            assert!(s.to_bits() == v.to_bits() || (*s == 0.0 && *v == 0.0), "{s} vs {v}");
        }
    }

    #[test]
    fn dimensions_and_sparsity() {
        let flags = problem_flags();
        let p = PoissonProblem::new(&flags, 1.0);
        let a = CsrMatrix::assemble(&p);
        assert_eq!(a.rows(), flags.fluid_count());
        // 5-point stencil: at most 5 entries per row.
        assert!(a.nnz() <= 5 * a.rows());
        assert!(a.nnz() > a.rows(), "off-diagonals missing");
    }

    #[test]
    fn pack_unpack_round_trip() {
        let flags = problem_flags();
        let p = PoissonProblem::new(&flags, 1.0);
        let a = CsrMatrix::assemble(&p);
        let f = Field2::from_fn(12, 10, |i, j| {
            if flags.is_fluid(i, j) {
                (i + 100 * j) as f64
            } else {
                0.0
            }
        });
        let v = a.pack(&f);
        let back = a.unpack(&v);
        assert_eq!(f, back);
    }

    #[test]
    fn row_lookup() {
        let flags = problem_flags();
        let p = PoissonProblem::new(&flags, 1.0);
        let a = CsrMatrix::assemble(&p);
        assert!(a.row_of(0, 0).is_none(), "wall cell has no row");
        assert!(a.row_of(2, 2).is_some());
    }
}
