//! Assembled sparse-matrix (CSR) backend for the pressure operator.
//!
//! The solvers in this crate apply the 5-point stencil matrix-free,
//! which is what production fluid solvers do. An explicitly assembled
//! CSR (compressed sparse row) matrix is still valuable: it
//! cross-validates the matrix-free operator in tests, exposes the
//! classic SpMV kernel for benchmarking, and is the form an external
//! algebraic solver would consume.

use crate::laplace::PoissonProblem;
use sfn_grid::{CellType, Field2};

/// A CSR matrix over the *fluid cells* of a Poisson problem, together
/// with the mapping between grid cells and row indices.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
    /// Flat grid index (j·nx + i) of each row's cell.
    cell_of_row: Vec<usize>,
    /// Row of each flat grid index (usize::MAX for non-fluid cells).
    row_of_cell: Vec<usize>,
    nx: usize,
    ny: usize,
}

impl CsrMatrix {
    /// Assembles the pressure operator of `problem` (the same matrix
    /// [`PoissonProblem::apply`] applies matrix-free).
    pub fn assemble(problem: &PoissonProblem<'_>) -> Self {
        let (nx, ny) = (problem.nx(), problem.ny());
        let inv_dx2 = 1.0 / (problem.dx * problem.dx);
        let mut row_of_cell = vec![usize::MAX; nx * ny];
        let mut cell_of_row = Vec::new();
        for j in 0..ny {
            for i in 0..nx {
                if problem.flags.is_fluid(i, j) {
                    row_of_cell[j * nx + i] = cell_of_row.len();
                    cell_of_row.push(j * nx + i);
                }
            }
        }
        let n = cell_of_row.len();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for &cell in &cell_of_row {
            let (i, j) = (cell % nx, cell / nx);
            // Diagonal first, then neighbours in deterministic order.
            col_idx.push(row_of_cell[cell]);
            values.push(problem.degree(i, j) * inv_dx2);
            for (di, dj) in [(1isize, 0isize), (-1, 0), (0, 1), (0, -1)] {
                let (ni, nj) = (i as isize + di, j as isize + dj);
                if problem.flags.at_or_solid(ni, nj) == CellType::Fluid {
                    let ncell = nj as usize * nx + ni as usize;
                    col_idx.push(row_of_cell[ncell]);
                    values.push(-inv_dx2);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Self {
            row_ptr,
            col_idx,
            values,
            cell_of_row,
            row_of_cell,
            nx,
            ny,
        }
    }

    /// Number of rows (= fluid cells).
    pub fn rows(&self) -> usize {
        self.cell_of_row.len()
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Sparse matrix-vector product `y = A x` on packed fluid vectors.
    ///
    /// # Panics
    /// Panics if the vector lengths differ from [`CsrMatrix::rows`].
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        let n = self.rows();
        assert_eq!(x.len(), n, "x length");
        assert_eq!(y.len(), n, "y length");
        let scope = sfn_prof::KernelScope::enter("spmv");
        if scope.active() {
            // Per non-zero: value + column index + gathered x element
            // (24 bytes); per row: two row pointers and one y write.
            let nnz = self.nnz() as u64;
            scope.record(2 * nnz, nnz * 24 + n as u64 * 16, n as u64 * 8);
        }
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *out = acc;
        }
    }

    /// Packs a grid field into a fluid-cell vector.
    pub fn pack(&self, field: &Field2) -> Vec<f64> {
        assert_eq!((field.w(), field.h()), (self.nx, self.ny), "shape");
        self.cell_of_row
            .iter()
            .map(|&cell| field.data()[cell])
            .collect()
    }

    /// Unpacks a fluid-cell vector into a grid field (zeros elsewhere).
    pub fn unpack(&self, x: &[f64]) -> Field2 {
        assert_eq!(x.len(), self.rows(), "vector length");
        let mut out = Field2::new(self.nx, self.ny);
        for (&cell, &v) in self.cell_of_row.iter().zip(x) {
            out.data_mut()[cell] = v;
        }
        out
    }

    /// Row index of grid cell `(i, j)`, if it is a fluid cell.
    pub fn row_of(&self, i: usize, j: usize) -> Option<usize> {
        let r = self.row_of_cell[j * self.nx + i];
        (r != usize::MAX).then_some(r)
    }

    /// Verifies structural invariants (sorted row_ptr, in-range columns,
    /// symmetric pattern+values). Used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.rows();
        if self.row_ptr.len() != n + 1 {
            return Err("row_ptr length".into());
        }
        if self.row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err("row_ptr not monotone".into());
        }
        if self.col_idx.iter().any(|&c| c >= n) {
            return Err("column out of range".into());
        }
        // Symmetry: A[r][c] == A[c][r].
        let entry = |r: usize, c: usize| -> f64 {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                if self.col_idx[k] == c {
                    return self.values[k];
                }
            }
            0.0
        };
        for r in 0..n {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                if (self.values[k] - entry(c, r)).abs() > 1e-12 {
                    return Err(format!("asymmetric at ({r},{c})"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfn_grid::CellFlags;

    fn problem_flags() -> CellFlags {
        let mut flags = CellFlags::smoke_box(12, 10);
        flags.add_solid_disc(6.0, 5.0, 2.0);
        flags
    }

    #[test]
    fn assembly_matches_matrix_free_operator() {
        let flags = problem_flags();
        let p = PoissonProblem::new(&flags, 0.5);
        let a = CsrMatrix::assemble(&p);
        a.validate().expect("valid CSR");
        // Random-ish field -> compare A·x both ways.
        let x = Field2::from_fn(12, 10, |i, j| {
            if flags.is_fluid(i, j) {
                ((i * 13 + j * 7) % 9) as f64 / 4.0 - 1.0
            } else {
                0.0
            }
        });
        let mut free = Field2::new(12, 10);
        p.apply(&x, &mut free);
        let packed = a.pack(&x);
        let mut y = vec![0.0; a.rows()];
        a.spmv(&packed, &mut y);
        let grid_y = a.unpack(&y);
        for j in 0..10 {
            for i in 0..12 {
                assert!(
                    (grid_y.at(i, j) - free.at(i, j)).abs() < 1e-12,
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn dimensions_and_sparsity() {
        let flags = problem_flags();
        let p = PoissonProblem::new(&flags, 1.0);
        let a = CsrMatrix::assemble(&p);
        assert_eq!(a.rows(), flags.fluid_count());
        // 5-point stencil: at most 5 entries per row.
        assert!(a.nnz() <= 5 * a.rows());
        assert!(a.nnz() > a.rows(), "off-diagonals missing");
    }

    #[test]
    fn pack_unpack_round_trip() {
        let flags = problem_flags();
        let p = PoissonProblem::new(&flags, 1.0);
        let a = CsrMatrix::assemble(&p);
        let f = Field2::from_fn(12, 10, |i, j| {
            if flags.is_fluid(i, j) {
                (i + 100 * j) as f64
            } else {
                0.0
            }
        });
        let v = a.pack(&f);
        let back = a.unpack(&v);
        assert_eq!(f, back);
    }

    #[test]
    fn row_lookup() {
        let flags = problem_flags();
        let p = PoissonProblem::new(&flags, 1.0);
        let a = CsrMatrix::assemble(&p);
        assert!(a.row_of(0, 0).is_none(), "wall cell has no row");
        assert!(a.row_of(2, 2).is_some());
    }
}
