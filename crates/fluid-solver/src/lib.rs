//! Poisson solvers for the pressure-projection step (Algorithm 1,
//! lines 7–17 of the paper).
//!
//! The projection solves `−∇²p = b` on the fluid cells of a MAC grid,
//! with Neumann conditions at solid cells and Dirichlet `p = 0` at
//! empty (open-air) cells. The discrete operator is the standard
//! 5-point stencil, assembled matrix-free in [`laplace`].
//!
//! Solvers provided:
//!
//! * [`jacobi::JacobiSolver`] — damped Jacobi iteration (baseline and
//!   multigrid smoother);
//! * [`sor::SorSolver`] — red-black Gauss-Seidel / SOR;
//! * [`pcg::PcgSolver`] — (preconditioned) conjugate gradients. With
//!   [`ic0::MicPreconditioner`] this is the paper's reference method:
//!   "the pre-conditioner applied in mantaflow is the Modified
//!   Incomplete Cholesky L0 preconditioner, called MICCG(0)";
//! * [`multigrid::MultigridSolver`] — geometric V-cycle, standalone or
//!   as a PCG preconditioner (mantaflow "uses a multi-grid approach as
//!   a preprocessing step of the PCG method").
//!
//! Every solver reports [`SolveStats`] including an analytic FLOP count
//! used by the Table 4 resource-usage reproduction.

#![warn(missing_docs)]

pub mod csr;
pub mod ic0;
pub mod jacobi;
pub mod laplace;
pub mod multigrid;
pub mod pcg;
pub mod sor;

use sfn_grid::{CellFlags, Field2};

pub use csr::CsrMatrix;
pub use ic0::MicPreconditioner;
pub use jacobi::JacobiSolver;
pub use laplace::PoissonProblem;
pub use multigrid::MultigridSolver;
pub use pcg::{CgSolver, PcgSolver, Preconditioner};
pub use sor::SorSolver;

/// Convergence statistics returned by every solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final relative residual `‖b − Ax‖₂ / ‖b‖₂` (1.0 if `‖b‖ = 0`
    /// conventionally treated as already converged with 0 iterations).
    pub rel_residual: f64,
    /// Whether the tolerance was met within the iteration budget.
    pub converged: bool,
    /// Analytic floating-point-operation count for the whole solve.
    pub flops: u64,
}

impl SolveStats {
    /// Stats for a trivially converged solve (zero right-hand side).
    pub fn trivial() -> Self {
        Self {
            iterations: 0,
            rel_residual: 0.0,
            converged: true,
            flops: 0,
        }
    }
}

/// A pressure-Poisson solver: given the problem geometry and right-hand
/// side, produce the pressure field.
///
/// Implementations must return `p = 0` on non-fluid cells.
pub trait PoissonSolver {
    /// Solves `A p = b` for the pressure `p`.
    fn solve(&self, problem: &PoissonProblem<'_>, b: &Field2) -> (Field2, SolveStats);

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Records one Poisson solve into the shared observability layer:
/// per-solver iteration and residual metrics (counters + histograms)
/// plus a `solver.solve` trace event — the raw material of the
/// per-stage cost tables (Tables 3/4 of the paper).
///
/// Every [`PoissonSolver`] implementation calls this once per `solve`.
/// With observability disabled (the default) the cost is two relaxed
/// atomic loads.
pub fn observe_solve(solver: &str, stats: &SolveStats) {
    if sfn_obs::metrics_enabled() {
        sfn_obs::counter_add(&format!("solver.{solver}.solves"), 1);
        sfn_obs::counter_add(&format!("solver.{solver}.iterations"), stats.iterations as u64);
        sfn_obs::histogram_record(
            &format!("solver.{solver}.iterations"),
            stats.iterations as f64,
        );
        sfn_obs::histogram_record(
            &format!("solver.{solver}.rel_residual"),
            stats.rel_residual,
        );
    }
    sfn_obs::event(sfn_obs::Level::Trace, "solver.solve")
        .field_str("solver", solver)
        .field_u64("iterations", stats.iterations as u64)
        .field_f64("rel_residual", stats.rel_residual)
        .field_bool("converged", stats.converged)
        .field_u64("flops", stats.flops)
        .emit();
}

/// Builds the canonical right-hand side of the pressure equation from a
/// velocity divergence: `b = −(1/Δt) ∇·u*` (Algorithm 1 line 7,
/// rearranged for the positive-definite operator; see [`laplace`]).
pub fn divergence_rhs(divergence: &Field2, flags: &CellFlags, dt: f64) -> Field2 {
    assert!(dt > 0.0, "dt must be positive");
    Field2::from_fn(divergence.w(), divergence.h(), |i, j| {
        if flags.is_fluid(i, j) {
            -divergence.at(i, j) / dt
        } else {
            0.0
        }
    })
}
