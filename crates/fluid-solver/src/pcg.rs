//! (Preconditioned) conjugate-gradient solvers (Algorithm 1 lines 8–17).
//!
//! The PCG loop follows the paper's pseudo-code: initial guess 0,
//! residual `r = b`, search direction `s = M⁻¹ r`, and the classic
//! α/β updates until the residual meets the convergence criterion.
//!
//! Preconditioners are split into a cheap *factory* ([`Preconditioner`])
//! and a per-problem *factorisation* ([`PreparedPreconditioner`]) so
//! that setup work (e.g. the MIC(0) incomplete Cholesky factor) is done
//! once per solve rather than once per iteration.

use crate::laplace::PoissonProblem;
use crate::{PoissonSolver, SolveStats};
use sfn_grid::Field2;

/// Factory for a preconditioner `M ≈ A`.
pub trait Preconditioner {
    /// The prepared (factorised) form.
    type Prepared: PreparedPreconditioner;

    /// Factorises the preconditioner for a concrete problem.
    fn prepare(&self, problem: &PoissonProblem<'_>) -> Self::Prepared;

    /// Name for reports.
    fn name(&self) -> &'static str;
}

/// A factorised preconditioner, applied as `z = M⁻¹ r`.
pub trait PreparedPreconditioner {
    /// Applies the preconditioner to `r`, writing `z`.
    fn apply(&self, problem: &PoissonProblem<'_>, r: &Field2, z: &mut Field2);

    /// Approximate FLOPs per application.
    fn flops(&self, problem: &PoissonProblem<'_>) -> u64;
}

/// The identity preconditioner: PCG degenerates to plain CG.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPreconditioner;

impl Preconditioner for IdentityPreconditioner {
    type Prepared = IdentityPreconditioner;

    fn prepare(&self, _problem: &PoissonProblem<'_>) -> Self {
        *self
    }

    fn name(&self) -> &'static str {
        "identity"
    }
}

impl PreparedPreconditioner for IdentityPreconditioner {
    fn apply(&self, _problem: &PoissonProblem<'_>, r: &Field2, z: &mut Field2) {
        z.clone_from(r);
    }

    fn flops(&self, _problem: &PoissonProblem<'_>) -> u64 {
        0
    }
}

/// Conjugate gradients with a pluggable preconditioner.
///
/// Tolerance is on the *relative* ℓ₂ residual `‖r‖/‖b‖`. The solver is
/// robust to the semi-definite closed-box case: a compatible `b` keeps
/// the Krylov space orthogonal to the null-space.
#[derive(Debug, Clone)]
pub struct PcgSolver<M> {
    /// Preconditioner factory.
    pub preconditioner: M,
    /// Relative residual tolerance.
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
}

impl<M: Preconditioner> PcgSolver<M> {
    /// Creates a solver with the given preconditioner, tolerance and
    /// iteration budget.
    pub fn new(preconditioner: M, tolerance: f64, max_iterations: usize) -> Self {
        assert!(tolerance > 0.0, "tolerance must be positive");
        assert!(max_iterations > 0, "need at least one iteration");
        Self {
            preconditioner,
            tolerance,
            max_iterations,
        }
    }
}

/// Plain CG: `PcgSolver` with the identity preconditioner.
pub type CgSolver = PcgSolver<IdentityPreconditioner>;

impl CgSolver {
    /// Plain conjugate gradients with the given tolerance/budget.
    pub fn plain(tolerance: f64, max_iterations: usize) -> Self {
        PcgSolver::new(IdentityPreconditioner, tolerance, max_iterations)
    }
}

impl<M: Preconditioner> PcgSolver<M> {
    fn solve_inner(&self, problem: &PoissonProblem<'_>, b: &Field2) -> (Field2, SolveStats) {
        let (nx, ny) = (problem.nx(), problem.ny());
        assert_eq!((b.w(), b.h()), (nx, ny), "rhs shape");
        let mut x = Field2::new(nx, ny);

        // All CG vectors are kept zero on non-fluid cells (the residual
        // is masked once up front; the stencil plan and preconditioners
        // preserve the property). Whole-slice SIMD dots/norms then equal
        // their fluid-masked counterparts exactly — zeros contribute
        // nothing — so the loop below never touches cell flags.
        let plan = crate::laplace::StencilPlan::new(problem);
        let mut r = b.clone();
        plan.project(&mut r);
        let b_norm = sfn_grid::simd::norm_sq(r.data()).sqrt();
        if b_norm == 0.0 {
            return (x, SolveStats::trivial());
        }

        let prepared = self.preconditioner.prepare(problem);
        let n = problem.unknowns() as u64;
        let pre_flops = prepared.flops(problem);
        // Per iteration: 1 A·s (9n), 1 M⁻¹r, and six 2n-flop vector ops
        // (2 dots, 2 axpys, 1 norm, 1 xpay) = 12n.
        let iter_flops = plan.flops() + pre_flops + 12 * n;
        // Setup: initial M⁻¹ apply, ‖b‖ and one dot.
        let mut flops = pre_flops + 4 * n;

        let mut z = Field2::new(nx, ny);
        prepared.apply(problem, &r, &mut z);
        let mut s = z.clone();
        let mut rz = sfn_grid::simd::dot(r.data(), z.data());
        let mut as_ = Field2::new(nx, ny);

        let mut rel = 1.0;
        for it in 1..=self.max_iterations {
            plan.apply(&s, &mut as_);
            let s_as = sfn_grid::simd::dot(s.data(), as_.data());
            if s_as <= 0.0 || !s_as.is_finite() {
                // Hit the null-space or a numerical breakdown; stop with
                // the current iterate.
                return (
                    x,
                    SolveStats {
                        iterations: it - 1,
                        rel_residual: rel,
                        converged: rel <= self.tolerance,
                        flops,
                    },
                );
            }
            let alpha = rz / s_as;
            sfn_grid::simd::axpy(x.data_mut(), s.data(), alpha);
            // Fused: r += −α·(A s) and ‖r‖² in one pass.
            let r2 = sfn_grid::simd::axpy_norm_sq(r.data_mut(), as_.data(), -alpha);
            flops += iter_flops;
            rel = r2.sqrt() / b_norm;
            if rel <= self.tolerance {
                return (
                    x,
                    SolveStats {
                        iterations: it,
                        rel_residual: rel,
                        converged: true,
                        flops,
                    },
                );
            }
            prepared.apply(problem, &r, &mut z);
            let rz_new = sfn_grid::simd::dot(r.data(), z.data());
            let beta = rz_new / rz;
            rz = rz_new;
            sfn_grid::simd::xpay(s.data_mut(), z.data(), beta);
        }
        (
            x,
            SolveStats {
                iterations: self.max_iterations,
                rel_residual: rel,
                converged: false,
                flops,
            },
        )
    }
}

impl<M: Preconditioner> PoissonSolver for PcgSolver<M> {
    fn solve(&self, problem: &PoissonProblem<'_>, b: &Field2) -> (Field2, SolveStats) {
        let scope = sfn_prof::KernelScope::enter(self.name());
        let (x, stats) = self.solve_inner(problem, b);
        if scope.active() {
            // Analytic traffic model, 8-byte doubles: per iteration one
            // stencil apply (~6n read, n written), one preconditioner
            // apply (~10n/2n), two dots (4n) and three axpys (6n/3n),
            // plus the initial pass over b.
            let n = problem.unknowns() as u64;
            let it = stats.iterations as u64;
            scope.record(stats.flops, (n + it * 26 * n) * 8, it * 6 * n * 8);
        }
        crate::observe_solve(self.name(), &stats);
        (x, stats)
    }

    fn name(&self) -> &'static str {
        if self.preconditioner.name() == "identity" {
            "cg"
        } else {
            "pcg"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfn_grid::CellFlags;

    pub(crate) fn random_rhs(flags: &CellFlags, seed: u64) -> Field2 {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(7);
        Field2::from_fn(flags.nx(), flags.ny(), |i, j| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if flags.is_fluid(i, j) {
                (state % 2000) as f64 / 1000.0 - 1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn cg_solves_open_box() {
        let flags = CellFlags::smoke_box(16, 16);
        let problem = PoissonProblem::new(&flags, 1.0);
        let b = random_rhs(&flags, 3);
        let solver = CgSolver::plain(1e-8, 2000);
        let (x, stats) = solver.solve(&problem, &b);
        assert!(stats.converged, "stats: {stats:?}");
        let mut r = Field2::new(16, 16);
        problem.residual(&x, &b, &mut r);
        assert!(problem.norm(&r) / problem.norm(&b) < 1e-7);
    }

    #[test]
    fn cg_handles_compatible_singular_system() {
        // Closed box: A is semi-definite; make b compatible by removing
        // the mean over fluid cells.
        let flags = CellFlags::closed_box(12, 12);
        let problem = PoissonProblem::new(&flags, 1.0);
        let mut b = random_rhs(&flags, 11);
        let nf = flags.fluid_count() as f64;
        let mut mean = 0.0;
        for j in 0..12 {
            for i in 0..12 {
                if flags.is_fluid(i, j) {
                    mean += b.at(i, j);
                }
            }
        }
        mean /= nf;
        for j in 0..12 {
            for i in 0..12 {
                if flags.is_fluid(i, j) {
                    let v = b.at(i, j) - mean;
                    b.set(i, j, v);
                }
            }
        }
        let solver = CgSolver::plain(1e-7, 4000);
        let (x, stats) = solver.solve(&problem, &b);
        assert!(stats.converged, "stats: {stats:?}");
        let mut r = Field2::new(12, 12);
        problem.residual(&x, &b, &mut r);
        assert!(problem.norm(&r) / problem.norm(&b) < 1e-6);
    }

    #[test]
    fn zero_rhs_is_trivial() {
        let flags = CellFlags::smoke_box(8, 8);
        let problem = PoissonProblem::new(&flags, 1.0);
        let b = Field2::new(8, 8);
        let solver = CgSolver::plain(1e-8, 100);
        let (x, stats) = solver.solve(&problem, &b);
        assert_eq!(stats.iterations, 0);
        assert!(stats.converged);
        assert_eq!(x.max_abs(), 0.0);
    }

    #[test]
    fn solution_zero_on_non_fluid_cells() {
        let mut flags = CellFlags::smoke_box(10, 10);
        flags.add_solid_disc(5.0, 5.0, 2.0);
        let problem = PoissonProblem::new(&flags, 1.0);
        let b = random_rhs(&flags, 5);
        let solver = CgSolver::plain(1e-8, 2000);
        let (x, _) = solver.solve(&problem, &b);
        for j in 0..10 {
            for i in 0..10 {
                if !flags.is_fluid(i, j) {
                    assert_eq!(x.at(i, j), 0.0);
                }
            }
        }
    }

    #[test]
    fn iteration_budget_respected() {
        let flags = CellFlags::smoke_box(32, 32);
        let problem = PoissonProblem::new(&flags, 1.0);
        let b = random_rhs(&flags, 17);
        let solver = CgSolver::plain(1e-14, 3);
        let (_, stats) = solver.solve(&problem, &b);
        assert_eq!(stats.iterations, 3);
        assert!(!stats.converged);
        assert!(stats.flops > 0);
    }

    #[test]
    fn respects_dx_scaling() {
        // Solving with dx=0.5 scales A by 4; solution scales by 1/4
        // relative to dx=1 for the same rhs.
        let flags = CellFlags::smoke_box(8, 8);
        let b = random_rhs(&flags, 23);
        let p1 = PoissonProblem::new(&flags, 1.0);
        let p2 = PoissonProblem::new(&flags, 0.5);
        let solver = CgSolver::plain(1e-10, 2000);
        let (x1, _) = solver.solve(&p1, &b);
        let (x2, _) = solver.solve(&p2, &b);
        for (a, b) in x1.data().iter().zip(x2.data()) {
            assert!((a * 0.25 - b).abs() < 1e-7, "{a} vs {b}");
        }
    }
}
