//! Damped Jacobi iteration — a cheap baseline solver and the smoother
//! used inside the multigrid V-cycle.

use crate::laplace::PoissonProblem;
use crate::{PoissonSolver, SolveStats};
use sfn_grid::{CellType, Field2};

/// Damped Jacobi: `x ← x + ω D⁻¹ (b − A x)`.
#[derive(Debug, Clone, Copy)]
pub struct JacobiSolver {
    /// Damping factor ω (2/3 is optimal for high-frequency smoothing).
    pub omega: f64,
    /// Relative residual tolerance.
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
}

impl JacobiSolver {
    /// Creates a solver with damping `omega`.
    pub fn new(omega: f64, tolerance: f64, max_iterations: usize) -> Self {
        assert!(omega > 0.0 && omega <= 1.0, "omega in (0, 1]");
        assert!(tolerance > 0.0, "tolerance must be positive");
        Self {
            omega,
            tolerance,
            max_iterations,
        }
    }

    /// One damped-Jacobi sweep in place. Exposed for the multigrid
    /// smoother. `scratch` must have the grid shape.
    pub fn sweep(problem: &PoissonProblem<'_>, x: &mut Field2, b: &Field2, omega: f64, scratch: &mut Field2) {
        let (nx, ny) = (problem.nx(), problem.ny());
        let inv_dx2 = 1.0 / (problem.dx * problem.dx);
        for j in 0..ny {
            for i in 0..nx {
                if !problem.flags.is_fluid(i, j) {
                    scratch.set(i, j, 0.0);
                    continue;
                }
                let deg = problem.degree(i, j);
                if deg == 0.0 {
                    // Isolated fluid cell fully enclosed by solids: the
                    // pressure is indeterminate, keep it at zero.
                    scratch.set(i, j, 0.0);
                    continue;
                }
                let mut nb = 0.0;
                for (di, dj) in [(1isize, 0isize), (-1, 0), (0, 1), (0, -1)] {
                    let (ni, nj) = (i as isize + di, j as isize + dj);
                    if problem.flags.at_or_solid(ni, nj) == CellType::Fluid {
                        nb += x.at(ni as usize, nj as usize);
                    }
                }
                // Solve row: deg·x − Σnb = b·dx² (after unscaling).
                let x_new = (b.at(i, j) / inv_dx2 + nb) / deg;
                scratch.set(i, j, (1.0 - omega) * x.at(i, j) + omega * x_new);
            }
        }
        std::mem::swap(x, scratch);
    }
}

impl Default for JacobiSolver {
    fn default() -> Self {
        Self::new(2.0 / 3.0, 1e-5, 10_000)
    }
}

impl JacobiSolver {
    fn solve_inner(&self, problem: &PoissonProblem<'_>, b: &Field2) -> (Field2, SolveStats) {
        let (nx, ny) = (problem.nx(), problem.ny());
        assert_eq!((b.w(), b.h()), (nx, ny), "rhs shape");
        let mut x = Field2::new(nx, ny);
        let b_norm = problem.norm(b);
        if b_norm == 0.0 {
            return (x, SolveStats::trivial());
        }
        let mut scratch = Field2::new(nx, ny);
        let mut r = Field2::new(nx, ny);
        let sweep_flops = 9 * problem.unknowns() as u64;
        let mut flops = 0u64;
        let mut rel = 1.0;
        for it in 1..=self.max_iterations {
            JacobiSolver::sweep(problem, &mut x, b, self.omega, &mut scratch);
            flops += sweep_flops;
            // Check the residual every 8 sweeps (it costs a stencil).
            if it % 8 == 0 || it == self.max_iterations {
                problem.residual(&x, b, &mut r);
                flops += problem.apply_flops();
                rel = problem.norm(&r) / b_norm;
                if rel <= self.tolerance {
                    return (
                        x,
                        SolveStats {
                            iterations: it,
                            rel_residual: rel,
                            converged: true,
                            flops,
                        },
                    );
                }
            }
        }
        (
            x,
            SolveStats {
                iterations: self.max_iterations,
                rel_residual: rel,
                converged: false,
                flops,
            },
        )
    }
}

impl PoissonSolver for JacobiSolver {
    fn solve(&self, problem: &PoissonProblem<'_>, b: &Field2) -> (Field2, SolveStats) {
        let scope = sfn_prof::KernelScope::enter(self.name());
        let (x, stats) = self.solve_inner(problem, b);
        if scope.active() {
            // Per sweep: read the 5-point neighbourhood of x plus b
            // (~6n doubles), write the n scratch cells.
            let n = problem.unknowns() as u64;
            let it = stats.iterations as u64;
            scope.record(stats.flops, (n + it * 6 * n) * 8, it * n * 8);
        }
        crate::observe_solve(self.name(), &stats);
        (x, stats)
    }

    fn name(&self) -> &'static str {
        "jacobi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfn_grid::CellFlags;

    #[test]
    fn converges_on_small_problem() {
        let flags = CellFlags::smoke_box(12, 12);
        let p = PoissonProblem::new(&flags, 1.0);
        let mut b = Field2::new(12, 12);
        b.set(6, 6, 1.0);
        let s = JacobiSolver::new(2.0 / 3.0, 1e-7, 50_000);
        let (x, stats) = s.solve(&p, &b);
        assert!(stats.converged, "{stats:?}");
        let mut r = Field2::new(12, 12);
        p.residual(&x, &b, &mut r);
        assert!(p.norm(&r) < 1e-6);
    }

    #[test]
    fn needs_many_more_iterations_than_cg() {
        use crate::pcg::CgSolver;
        let flags = CellFlags::smoke_box(24, 24);
        let p = PoissonProblem::new(&flags, 1.0);
        let mut b = Field2::new(24, 24);
        b.set(10, 12, 1.0);
        b.set(15, 4, -0.5);
        let j = JacobiSolver::new(2.0 / 3.0, 1e-6, 200_000);
        let c = CgSolver::plain(1e-6, 10_000);
        let (_, sj) = j.solve(&p, &b);
        let (_, sc) = c.solve(&p, &b);
        assert!(sj.converged && sc.converged);
        assert!(sj.iterations > 4 * sc.iterations);
    }

    #[test]
    fn isolated_fluid_cell_does_not_nan() {
        // A 3x3 solid ring with one fluid cell inside.
        let mut flags = CellFlags::all_fluid(5, 5);
        for (i, j) in [(1, 1), (2, 1), (3, 1), (1, 2), (3, 2), (1, 3), (2, 3), (3, 3)] {
            flags.set(i, j, sfn_grid::CellType::Solid);
        }
        let p = PoissonProblem::new(&flags, 1.0);
        let mut b = Field2::new(5, 5);
        b.set(2, 2, 1.0);
        let s = JacobiSolver::default();
        let (x, _) = s.solve(&p, &b);
        assert!(x.all_finite());
        assert_eq!(x.at(2, 2), 0.0);
    }
}
