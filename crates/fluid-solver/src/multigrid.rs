//! Geometric multigrid V-cycle.
//!
//! Mantaflow "uses a multi-grid approach as a preprocessing step of the
//! PCG method" (§2.1); we provide the V-cycle both as a standalone
//! solver and as a PCG preconditioner. The hierarchy coarsens the cell
//! flags 2×2 → 1 (a coarse cell is fluid if any child is fluid, empty
//! if any child is empty, else solid), restricts residuals by
//! full-weighting over fluid children, prolongates corrections by
//! injection, and smooths with damped Jacobi.

use crate::jacobi::JacobiSolver;
use crate::laplace::PoissonProblem;
use crate::pcg::{CgSolver, Preconditioner, PreparedPreconditioner};
use crate::{PoissonSolver, SolveStats};
use sfn_grid::{CellFlags, CellType, Field2};

/// One level of the multigrid hierarchy: owned flags plus spacing.
#[derive(Debug, Clone)]
struct Level {
    flags: CellFlags,
    dx: f64,
}

/// The prepared hierarchy (level 0 = finest).
#[derive(Debug, Clone)]
pub struct MgHierarchy {
    levels: Vec<Level>,
    pre_smooth: usize,
    post_smooth: usize,
}

/// Coarsens flags 2×2 → 1.
fn coarsen_flags(fine: &CellFlags) -> CellFlags {
    let cnx = fine.nx().div_ceil(2);
    let cny = fine.ny().div_ceil(2);
    let mut coarse = CellFlags::all_fluid(cnx, cny);
    for cj in 0..cny {
        for ci in 0..cnx {
            let mut any_fluid = false;
            let mut any_empty = false;
            for dj in 0..2 {
                for di in 0..2 {
                    let (fi, fj) = (2 * ci + di, 2 * cj + dj);
                    if fi < fine.nx() && fj < fine.ny() {
                        match fine.at(fi, fj) {
                            CellType::Fluid => any_fluid = true,
                            CellType::Empty => any_empty = true,
                            CellType::Solid => {}
                        }
                    }
                }
            }
            // Empty (Dirichlet) children win so that the coarse system
            // keeps the pressure anchor of the fine one; otherwise a
            // fluid/empty mix would coarsen into an all-Neumann
            // (singular) level.
            let t = if any_empty {
                CellType::Empty
            } else if any_fluid {
                CellType::Fluid
            } else {
                CellType::Solid
            };
            coarse.set(ci, cj, t);
        }
    }
    coarse
}

impl MgHierarchy {
    /// Builds the hierarchy down to a coarsest level of ~4 cells/side.
    pub fn build(flags: &CellFlags, dx: f64, pre_smooth: usize, post_smooth: usize) -> Self {
        let mut levels = vec![Level {
            flags: flags.clone(),
            dx,
        }];
        loop {
            let last = levels.last().expect("non-empty");
            if last.flags.nx() <= 4 || last.flags.ny() <= 4 {
                break;
            }
            let coarse = coarsen_flags(&last.flags);
            let cdx = last.dx * 2.0;
            levels.push(Level {
                flags: coarse,
                dx: cdx,
            });
        }
        Self {
            levels,
            pre_smooth,
            post_smooth,
        }
    }

    /// Number of levels (≥ 1).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Restriction: coarse cell = (1/4) Σ fluid children.
    ///
    /// The weight is a *fixed* 1/4 (not 1/#children) so that the
    /// restriction is exactly `(1/4)·Pᵀ` of the injection prolongation
    /// everywhere, keeping the V-cycle symmetric — a requirement for
    /// use as a CG preconditioner.
    fn restrict(fine_flags: &CellFlags, fine: &Field2, coarse_flags: &CellFlags) -> Field2 {
        Field2::from_fn(coarse_flags.nx(), coarse_flags.ny(), |ci, cj| {
            if !coarse_flags.is_fluid(ci, cj) {
                return 0.0;
            }
            let mut sum = 0.0;
            for dj in 0..2 {
                for di in 0..2 {
                    let (fi, fj) = (2 * ci + di, 2 * cj + dj);
                    if fi < fine_flags.nx() && fj < fine_flags.ny() && fine_flags.is_fluid(fi, fj)
                    {
                        sum += fine.at(fi, fj);
                    }
                }
            }
            sum * 0.25
        })
    }

    /// Prolongation by injection: each fine fluid cell inherits its
    /// coarse parent's correction.
    fn prolong_add(fine_flags: &CellFlags, fine: &mut Field2, coarse: &Field2) {
        for j in 0..fine_flags.ny() {
            for i in 0..fine_flags.nx() {
                if fine_flags.is_fluid(i, j) {
                    let v = fine.at(i, j) + coarse.at(i / 2, j / 2);
                    fine.set(i, j, v);
                }
            }
        }
    }

    /// One V-cycle starting from `x` on level `lvl` for `A x = b`.
    fn vcycle(&self, lvl: usize, x: &mut Field2, b: &Field2) {
        let level = &self.levels[lvl];
        let problem = PoissonProblem::new(&level.flags, level.dx);
        let (nx, ny) = (problem.nx(), problem.ny());
        let mut scratch = Field2::new(nx, ny);
        if lvl + 1 == self.levels.len() {
            // Coarsest level: solve (almost) exactly with CG. On a
            // singular (all-Neumann) level, project the right-hand side
            // onto the compatible subspace first.
            let mut bc = b.clone();
            if !problem.is_definite() {
                let nf = problem.unknowns();
                if nf > 0 {
                    let mut mean = 0.0;
                    for j in 0..ny {
                        for i in 0..nx {
                            if problem.flags.is_fluid(i, j) {
                                mean += bc.at(i, j);
                            }
                        }
                    }
                    mean /= nf as f64;
                    for j in 0..ny {
                        for i in 0..nx {
                            if problem.flags.is_fluid(i, j) {
                                let v = bc.at(i, j) - mean;
                                bc.set(i, j, v);
                            }
                        }
                    }
                }
            }
            let solver = CgSolver::plain(1e-10, 4 * nx * ny + 16);
            let (sol, _) = solver.solve(&problem, &bc);
            *x = sol;
            return;
        }
        for _ in 0..self.pre_smooth {
            JacobiSolver::sweep(&problem, x, b, 2.0 / 3.0, &mut scratch);
        }
        let mut r = Field2::new(nx, ny);
        problem.residual(x, b, &mut r);
        let coarse_flags = &self.levels[lvl + 1].flags;
        let rc = Self::restrict(&level.flags, &r, coarse_flags);
        let mut ec = Field2::new(coarse_flags.nx(), coarse_flags.ny());
        self.vcycle(lvl + 1, &mut ec, &rc);
        Self::prolong_add(&level.flags, x, &ec);
        for _ in 0..self.post_smooth {
            JacobiSolver::sweep(&problem, x, b, 2.0 / 3.0, &mut scratch);
        }
    }

    /// FLOPs of a single V-cycle (geometric series over levels).
    fn vcycle_flops(&self) -> u64 {
        let mut total = 0u64;
        for level in &self.levels {
            let n = level.flags.fluid_count() as u64;
            total += (self.pre_smooth + self.post_smooth) as u64 * 9 * n + 12 * n;
        }
        total
    }
}

/// Standalone multigrid solver: V-cycles until the tolerance is met.
#[derive(Debug, Clone, Copy)]
pub struct MultigridSolver {
    /// Pre-smoothing sweeps per level.
    pub pre_smooth: usize,
    /// Post-smoothing sweeps per level.
    pub post_smooth: usize,
    /// Relative residual tolerance.
    pub tolerance: f64,
    /// Maximum number of V-cycles.
    pub max_cycles: usize,
}

impl Default for MultigridSolver {
    fn default() -> Self {
        Self {
            pre_smooth: 2,
            post_smooth: 2,
            tolerance: 1e-5,
            max_cycles: 200,
        }
    }
}

impl MultigridSolver {
    fn solve_inner(&self, problem: &PoissonProblem<'_>, b: &Field2) -> (Field2, SolveStats) {
        let (nx, ny) = (problem.nx(), problem.ny());
        assert_eq!((b.w(), b.h()), (nx, ny), "rhs shape");
        let mut x = Field2::new(nx, ny);
        let b_norm = problem.norm(b);
        if b_norm == 0.0 {
            return (x, SolveStats::trivial());
        }
        let hierarchy = MgHierarchy::build(problem.flags, problem.dx, self.pre_smooth, self.post_smooth);
        let cycle_flops = hierarchy.vcycle_flops();
        let mut flops = 0u64;
        let mut r = Field2::new(nx, ny);
        let mut rel = 1.0;
        for it in 1..=self.max_cycles {
            hierarchy.vcycle(0, &mut x, b);
            flops += cycle_flops;
            problem.residual(&x, b, &mut r);
            flops += problem.apply_flops();
            rel = problem.norm(&r) / b_norm;
            if rel <= self.tolerance {
                return (
                    x,
                    SolveStats {
                        iterations: it,
                        rel_residual: rel,
                        converged: true,
                        flops,
                    },
                );
            }
        }
        (
            x,
            SolveStats {
                iterations: self.max_cycles,
                rel_residual: rel,
                converged: false,
                flops,
            },
        )
    }
}

impl PoissonSolver for MultigridSolver {
    fn solve(&self, problem: &PoissonProblem<'_>, b: &Field2) -> (Field2, SolveStats) {
        let scope = sfn_prof::KernelScope::enter(self.name());
        let (x, stats) = self.solve_inner(problem, b);
        if scope.active() {
            // The V-cycle is smoother-dominated: ~9 flops per cell
            // update over ~6 doubles read and one written, so derive
            // the traffic from the analytic flop count.
            let updates = stats.flops / 9;
            scope.record(stats.flops, updates * 6 * 8, updates * 8);
        }
        crate::observe_solve(self.name(), &stats);
        (x, stats)
    }

    fn name(&self) -> &'static str {
        "multigrid"
    }
}

/// Multigrid as a PCG preconditioner: one V-cycle per application
/// ("multi-grid as a preprocessing step of the PCG method").
#[derive(Debug, Clone, Copy)]
pub struct MgPreconditioner {
    /// Pre-smoothing sweeps per level.
    pub pre_smooth: usize,
    /// Post-smoothing sweeps per level.
    pub post_smooth: usize,
}

impl Default for MgPreconditioner {
    fn default() -> Self {
        Self {
            pre_smooth: 1,
            post_smooth: 1,
        }
    }
}

impl Preconditioner for MgPreconditioner {
    type Prepared = MgHierarchy;

    fn prepare(&self, problem: &PoissonProblem<'_>) -> MgHierarchy {
        MgHierarchy::build(problem.flags, problem.dx, self.pre_smooth, self.post_smooth)
    }

    fn name(&self) -> &'static str {
        "multigrid"
    }
}

impl PreparedPreconditioner for MgHierarchy {
    fn apply(&self, problem: &PoissonProblem<'_>, r: &Field2, z: &mut Field2) {
        let mut x = Field2::new(problem.nx(), problem.ny());
        self.vcycle(0, &mut x, r);
        *z = x;
    }

    fn flops(&self, _problem: &PoissonProblem<'_>) -> u64 {
        self.vcycle_flops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcg::PcgSolver;

    fn random_rhs(flags: &CellFlags, seed: u64) -> Field2 {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Field2::from_fn(flags.nx(), flags.ny(), |i, j| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if flags.is_fluid(i, j) {
                (state % 2000) as f64 / 1000.0 - 1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn flag_coarsening_rules() {
        let mut fine = CellFlags::all_fluid(4, 4);
        // Make one 2x2 block all solid, another mixed solid/empty.
        for (i, j) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
            fine.set(i, j, CellType::Solid);
        }
        fine.set(2, 0, CellType::Solid);
        fine.set(3, 0, CellType::Empty);
        fine.set(2, 1, CellType::Solid);
        fine.set(3, 1, CellType::Solid);
        let coarse = coarsen_flags(&fine);
        assert_eq!(coarse.nx(), 2);
        assert_eq!(coarse.at(0, 0), CellType::Solid);
        assert_eq!(coarse.at(1, 0), CellType::Empty);
        assert_eq!(coarse.at(0, 1), CellType::Fluid);
    }

    #[test]
    fn hierarchy_depth() {
        let flags = CellFlags::smoke_box(64, 64);
        let h = MgHierarchy::build(&flags, 1.0, 2, 2);
        // 64 -> 32 -> 16 -> 8 -> 4 : five levels.
        assert_eq!(h.depth(), 5);
    }

    #[test]
    fn vcycle_contracts_residual() {
        let flags = CellFlags::smoke_box(32, 32);
        let problem = PoissonProblem::new(&flags, 1.0);
        let b = random_rhs(&flags, 5);
        let h = MgHierarchy::build(&flags, 1.0, 2, 2);
        let mut x = Field2::new(32, 32);
        let mut r = Field2::new(32, 32);
        problem.residual(&x, &b, &mut r);
        let r0 = problem.norm(&r);
        h.vcycle(0, &mut x, &b);
        problem.residual(&x, &b, &mut r);
        let r1 = problem.norm(&r);
        assert!(
            r1 < 0.5 * r0,
            "V-cycle should halve the residual: {r0} -> {r1}"
        );
    }

    #[test]
    fn multigrid_solver_converges() {
        let mut flags = CellFlags::smoke_box(48, 48);
        flags.add_solid_disc(20.0, 24.0, 5.0);
        let problem = PoissonProblem::new(&flags, 1.0);
        let b = random_rhs(&flags, 7);
        let mg = MultigridSolver::default();
        let (x, stats) = mg.solve(&problem, &b);
        assert!(stats.converged, "{stats:?}");
        assert!(stats.iterations < 60, "V-cycle count {}", stats.iterations);
        let mut r = Field2::new(48, 48);
        problem.residual(&x, &b, &mut r);
        assert!(problem.norm(&r) / problem.norm(&b) < 1e-4);
    }

    #[test]
    fn mg_preconditioned_pcg_converges_fast() {
        let flags = CellFlags::smoke_box(64, 64);
        let problem = PoissonProblem::new(&flags, 1.0);
        let b = random_rhs(&flags, 13);
        let solver = PcgSolver::new(MgPreconditioner::default(), 1e-8, 500);
        let (x, stats) = solver.solve(&problem, &b);
        assert!(stats.converged, "{stats:?}");
        assert!(stats.iterations < 60, "{} iterations", stats.iterations);
        let mut r = Field2::new(64, 64);
        problem.residual(&x, &b, &mut r);
        assert!(problem.norm(&r) / problem.norm(&b) < 1e-7);
    }

    #[test]
    fn solution_matches_cg_reference() {
        let flags = CellFlags::smoke_box(24, 24);
        let problem = PoissonProblem::new(&flags, 1.0);
        let b = random_rhs(&flags, 21);
        let mg = MultigridSolver {
            tolerance: 1e-10,
            max_cycles: 500,
            ..Default::default()
        };
        let cg = CgSolver::plain(1e-12, 20_000);
        let (xm, sm) = mg.solve(&problem, &b);
        let (xc, _) = cg.solve(&problem, &b);
        assert!(sm.converged);
        for (a, c) in xm.data().iter().zip(xc.data()) {
            assert!((a - c).abs() < 1e-6, "{a} vs {c}");
        }
    }
}
