//! Red-black Gauss-Seidel with successive over-relaxation (SOR).
//!
//! A classic mid-tier baseline between Jacobi and PCG. The red-black
//! colouring makes each half-sweep embarrassingly parallel (even though
//! this implementation stays sequential, matching the sequential MICCG
//! baseline it is compared against).

use crate::laplace::PoissonProblem;
use crate::{PoissonSolver, SolveStats};
use sfn_grid::{CellType, Field2};

/// Red-black SOR: `x_ij ← (1−ω)·x_ij + ω·(b·dx² + Σ x_n)/deg`.
#[derive(Debug, Clone, Copy)]
pub struct SorSolver {
    /// Over-relaxation factor ω ∈ (0, 2); 1.0 is plain Gauss-Seidel.
    pub omega: f64,
    /// Relative residual tolerance.
    pub tolerance: f64,
    /// Iteration budget (full red+black sweeps).
    pub max_iterations: usize,
}

impl SorSolver {
    /// Creates a solver; panics unless `omega ∈ (0, 2)`.
    pub fn new(omega: f64, tolerance: f64, max_iterations: usize) -> Self {
        assert!(omega > 0.0 && omega < 2.0, "omega in (0, 2)");
        assert!(tolerance > 0.0, "tolerance must be positive");
        Self {
            omega,
            tolerance,
            max_iterations,
        }
    }

    fn half_sweep(&self, problem: &PoissonProblem<'_>, x: &mut Field2, b: &Field2, colour: usize) {
        let (nx, ny) = (problem.nx(), problem.ny());
        let dx2 = problem.dx * problem.dx;
        for j in 0..ny {
            for i in 0..nx {
                if (i + j) % 2 != colour || !problem.flags.is_fluid(i, j) {
                    continue;
                }
                let deg = problem.degree(i, j);
                if deg == 0.0 {
                    continue;
                }
                let mut nb = 0.0;
                for (di, dj) in [(1isize, 0isize), (-1, 0), (0, 1), (0, -1)] {
                    let (ni, nj) = (i as isize + di, j as isize + dj);
                    if problem.flags.at_or_solid(ni, nj) == CellType::Fluid {
                        nb += x.at(ni as usize, nj as usize);
                    }
                }
                let gs = (b.at(i, j) * dx2 + nb) / deg;
                let v = (1.0 - self.omega) * x.at(i, j) + self.omega * gs;
                x.set(i, j, v);
            }
        }
    }
}

impl Default for SorSolver {
    fn default() -> Self {
        Self::new(1.7, 1e-5, 20_000)
    }
}

impl SorSolver {
    fn solve_inner(&self, problem: &PoissonProblem<'_>, b: &Field2) -> (Field2, SolveStats) {
        let (nx, ny) = (problem.nx(), problem.ny());
        assert_eq!((b.w(), b.h()), (nx, ny), "rhs shape");
        let mut x = Field2::new(nx, ny);
        let b_norm = problem.norm(b);
        if b_norm == 0.0 {
            return (x, SolveStats::trivial());
        }
        let mut r = Field2::new(nx, ny);
        let sweep_flops = 9 * problem.unknowns() as u64;
        let mut flops = 0u64;
        let mut rel = 1.0;
        for it in 1..=self.max_iterations {
            self.half_sweep(problem, &mut x, b, 0);
            self.half_sweep(problem, &mut x, b, 1);
            flops += sweep_flops;
            if it % 4 == 0 || it == self.max_iterations {
                problem.residual(&x, b, &mut r);
                flops += problem.apply_flops();
                rel = problem.norm(&r) / b_norm;
                if rel <= self.tolerance {
                    return (
                        x,
                        SolveStats {
                            iterations: it,
                            rel_residual: rel,
                            converged: true,
                            flops,
                        },
                    );
                }
            }
        }
        (
            x,
            SolveStats {
                iterations: self.max_iterations,
                rel_residual: rel,
                converged: false,
                flops,
            },
        )
    }
}

impl PoissonSolver for SorSolver {
    fn solve(&self, problem: &PoissonProblem<'_>, b: &Field2) -> (Field2, SolveStats) {
        let scope = sfn_prof::KernelScope::enter(self.name());
        let (x, stats) = self.solve_inner(problem, b);
        if scope.active() {
            // A red-black sweep touches the same traffic as Jacobi
            // (~6n doubles read, n written) but updates in place.
            let n = problem.unknowns() as u64;
            let it = stats.iterations as u64;
            scope.record(stats.flops, (n + it * 6 * n) * 8, it * n * 8);
        }
        crate::observe_solve(self.name(), &stats);
        (x, stats)
    }

    fn name(&self) -> &'static str {
        "sor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::JacobiSolver;
    use sfn_grid::CellFlags;

    #[test]
    fn converges_and_matches_reference() {
        use crate::pcg::CgSolver;
        let flags = CellFlags::smoke_box(16, 16);
        let p = PoissonProblem::new(&flags, 1.0);
        let mut b = Field2::new(16, 16);
        b.set(8, 8, 1.0);
        b.set(3, 12, -2.0);
        let sor = SorSolver::new(1.7, 1e-9, 50_000);
        let cg = CgSolver::plain(1e-11, 10_000);
        let (xs, st) = sor.solve(&p, &b);
        let (xc, _) = cg.solve(&p, &b);
        assert!(st.converged);
        for (a, c) in xs.data().iter().zip(xc.data()) {
            assert!((a - c).abs() < 1e-6, "{a} vs {c}");
        }
    }

    #[test]
    fn sor_beats_jacobi() {
        let flags = CellFlags::smoke_box(24, 24);
        let p = PoissonProblem::new(&flags, 1.0);
        let mut b = Field2::new(24, 24);
        b.set(12, 12, 1.0);
        let sor = SorSolver::new(1.7, 1e-6, 100_000);
        let jac = JacobiSolver::new(2.0 / 3.0, 1e-6, 500_000);
        let (_, ss) = sor.solve(&p, &b);
        let (_, sj) = jac.solve(&p, &b);
        assert!(ss.converged && sj.converged);
        assert!(
            ss.iterations * 4 < sj.iterations,
            "SOR {} vs Jacobi {}",
            ss.iterations,
            sj.iterations
        );
    }

    #[test]
    fn omega_one_is_gauss_seidel() {
        let flags = CellFlags::smoke_box(10, 10);
        let p = PoissonProblem::new(&flags, 1.0);
        let mut b = Field2::new(10, 10);
        b.set(5, 5, 1.0);
        let gs = SorSolver::new(1.0, 1e-8, 50_000);
        let (x, stats) = gs.solve(&p, &b);
        assert!(stats.converged);
        assert!(x.all_finite());
    }

    #[test]
    #[should_panic(expected = "omega in (0, 2)")]
    fn rejects_unstable_omega() {
        let _ = SorSolver::new(2.0, 1e-5, 10);
    }
}
