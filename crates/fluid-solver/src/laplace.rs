//! The discrete pressure-Poisson operator (matrix-free 5-point stencil).
//!
//! For a fluid cell `(i, j)` the operator is
//!
//! ```text
//! (A p)_ij = [ deg·p_ij − Σ_{fluid n} p_n ] / dx²
//! ```
//!
//! where `deg` counts non-solid neighbours. Solid neighbours drop out
//! (homogeneous Neumann: ∂p/∂n = 0), empty neighbours contribute to the
//! diagonal but not the off-diagonal (Dirichlet: ghost pressure 0).
//! `A` is symmetric positive (semi-)definite; it is strictly definite
//! whenever at least one fluid cell touches an empty cell, and positive
//! semi-definite with the constant null-space on fully closed domains —
//! CG handles the latter as long as the right-hand side is compatible
//! (which discrete divergence of a wall-bounded field always is).

use sfn_grid::{CellFlags, CellType, Field2};

/// The pressure-Poisson problem geometry: cell flags plus grid spacing.
#[derive(Debug, Clone, Copy)]
pub struct PoissonProblem<'a> {
    /// Cell classification (fluid/solid/empty).
    pub flags: &'a CellFlags,
    /// Grid spacing.
    pub dx: f64,
}

impl<'a> PoissonProblem<'a> {
    /// Creates a problem over the given flags with spacing `dx`.
    pub fn new(flags: &'a CellFlags, dx: f64) -> Self {
        assert!(dx > 0.0 && dx.is_finite(), "dx must be positive");
        Self { flags, dx }
    }

    /// Grid width in cells.
    #[inline]
    pub fn nx(&self) -> usize {
        self.flags.nx()
    }

    /// Grid height in cells.
    #[inline]
    pub fn ny(&self) -> usize {
        self.flags.ny()
    }

    /// Diagonal coefficient of the (unscaled by 1/dx²) matrix row for
    /// cell `(i, j)`: the number of non-solid neighbours.
    pub fn degree(&self, i: usize, j: usize) -> f64 {
        let mut deg = 0.0;
        for (di, dj) in [(1isize, 0isize), (-1, 0), (0, 1), (0, -1)] {
            if self.flags.at_or_solid(i as isize + di, j as isize + dj) != CellType::Solid {
                deg += 1.0;
            }
        }
        deg
    }

    /// Applies the operator: `out = A x`. Non-fluid cells of `out` are
    /// set to zero, and non-fluid entries of `x` are treated as zero.
    pub fn apply(&self, x: &Field2, out: &mut Field2) {
        let (nx, ny) = (self.nx(), self.ny());
        assert_eq!((x.w(), x.h()), (nx, ny), "x shape");
        assert_eq!((out.w(), out.h()), (nx, ny), "out shape");
        let inv_dx2 = 1.0 / (self.dx * self.dx);
        for j in 0..ny {
            for i in 0..nx {
                if !self.flags.is_fluid(i, j) {
                    out.set(i, j, 0.0);
                    continue;
                }
                let mut acc = self.degree(i, j) * x.at(i, j);
                for (di, dj) in [(1isize, 0isize), (-1, 0), (0, 1), (0, -1)] {
                    let (ni, nj) = (i as isize + di, j as isize + dj);
                    if self.flags.at_or_solid(ni, nj) == CellType::Fluid {
                        acc -= x.at(ni as usize, nj as usize);
                    }
                    // Empty neighbour: ghost pressure 0 contributes
                    // nothing off-diagonal; solid neighbour: dropped.
                }
                out.set(i, j, acc * inv_dx2);
            }
        }
    }

    /// Residual `r = b − A x` restricted to fluid cells.
    pub fn residual(&self, x: &Field2, b: &Field2, r: &mut Field2) {
        self.apply(x, r);
        for j in 0..self.ny() {
            for i in 0..self.nx() {
                if self.flags.is_fluid(i, j) {
                    let v = b.at(i, j) - r.at(i, j);
                    r.set(i, j, v);
                } else {
                    r.set(i, j, 0.0);
                }
            }
        }
    }

    /// ℓ₂ norm over fluid cells.
    pub fn norm(&self, x: &Field2) -> f64 {
        let mut s = 0.0;
        for j in 0..self.ny() {
            for i in 0..self.nx() {
                if self.flags.is_fluid(i, j) {
                    let v = x.at(i, j);
                    s += v * v;
                }
            }
        }
        s.sqrt()
    }

    /// Inner product over fluid cells.
    pub fn dot(&self, a: &Field2, b: &Field2) -> f64 {
        let mut s = 0.0;
        for j in 0..self.ny() {
            for i in 0..self.nx() {
                if self.flags.is_fluid(i, j) {
                    s += a.at(i, j) * b.at(i, j);
                }
            }
        }
        s
    }

    /// Number of fluid cells (system size).
    pub fn unknowns(&self) -> usize {
        self.flags.fluid_count()
    }

    /// Approximate FLOPs for one operator application
    /// (stencil: ~10 flops per fluid cell).
    pub fn apply_flops(&self) -> u64 {
        10 * self.unknowns() as u64
    }

    /// True if the system is strictly positive definite (some fluid
    /// cell has an empty neighbour, anchoring the pressure level).
    pub fn is_definite(&self) -> bool {
        let (nx, ny) = (self.nx(), self.ny());
        for j in 0..ny {
            for i in 0..nx {
                if self.flags.is_fluid(i, j) {
                    for (di, dj) in [(1isize, 0isize), (-1, 0), (0, 1), (0, -1)] {
                        if self.flags.at_or_solid(i as isize + di, j as isize + dj)
                            == CellType::Empty
                        {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfn_grid::CellFlags;

    #[allow(clippy::needless_range_loop)]
    fn dense_matrix(p: &PoissonProblem<'_>) -> Vec<Vec<f64>> {
        // Build A column by column via apply on unit vectors.
        let (nx, ny) = (p.nx(), p.ny());
        let n = nx * ny;
        let mut cols = vec![vec![0.0; n]; n];
        let mut e = Field2::new(nx, ny);
        let mut out = Field2::new(nx, ny);
        for c in 0..n {
            e.fill(0.0);
            e.data_mut()[c] = 1.0;
            p.apply(&e, &mut out);
            for r in 0..n {
                cols[c][r] = out.data()[r];
            }
        }
        cols
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn operator_is_symmetric() {
        let mut flags = CellFlags::smoke_box(8, 8);
        flags.add_solid_disc(4.0, 4.0, 1.5);
        let p = PoissonProblem::new(&flags, 1.0);
        let a = dense_matrix(&p);
        let n = a.len();
        for c in 0..n {
            for r in 0..n {
                assert!(
                    (a[c][r] - a[r][c]).abs() < 1e-12,
                    "A[{r}][{c}] asymmetric: {} vs {}",
                    a[c][r],
                    a[r][c]
                );
            }
        }
    }

    #[test]
    fn operator_is_positive_semidefinite_on_random_vectors() {
        let flags = CellFlags::closed_box(6, 6);
        let p = PoissonProblem::new(&flags, 1.0);
        let mut out = Field2::new(6, 6);
        let mut state = 12345u64;
        for _ in 0..20 {
            let x = Field2::from_fn(6, 6, |_, _| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 500.0 - 1.0
            });
            p.apply(&x, &mut out);
            let q = p.dot(&x, &out);
            assert!(q >= -1e-9, "x'Ax = {q} < 0");
        }
    }

    #[test]
    fn constant_vector_in_nullspace_of_closed_domain() {
        let flags = CellFlags::closed_box(6, 6);
        let p = PoissonProblem::new(&flags, 1.0);
        let x = Field2::from_fn(6, 6, |_, _| 1.0);
        let mut out = Field2::new(6, 6);
        p.apply(&x, &mut out);
        assert!(out.max_abs() < 1e-12, "closed domain must annihilate constants");
        assert!(!p.is_definite());
    }

    #[test]
    fn open_domain_is_definite() {
        let flags = CellFlags::smoke_box(6, 6);
        let p = PoissonProblem::new(&flags, 1.0);
        assert!(p.is_definite());
        // Constants are NOT in the nullspace: top fluid row sees empty.
        let x = Field2::from_fn(6, 6, |_, _| 1.0);
        let mut out = Field2::new(6, 6);
        p.apply(&x, &mut out);
        assert!(out.max_abs() > 0.0);
    }

    #[test]
    fn interior_row_is_standard_five_point() {
        let flags = CellFlags::all_fluid(5, 5);
        let p = PoissonProblem::new(&flags, 0.5);
        let mut x = Field2::new(5, 5);
        x.set(2, 2, 1.0);
        let mut out = Field2::new(5, 5);
        p.apply(&x, &mut out);
        let inv_dx2 = 4.0;
        assert_eq!(out.at(2, 2), 4.0 * inv_dx2);
        assert_eq!(out.at(1, 2), -inv_dx2);
        assert_eq!(out.at(3, 2), -inv_dx2);
        assert_eq!(out.at(2, 1), -inv_dx2);
        assert_eq!(out.at(2, 3), -inv_dx2);
        assert_eq!(out.at(0, 0), 3.0 * 0.0); // untouched corner
    }

    #[test]
    fn solid_neighbour_reduces_degree() {
        let mut flags = CellFlags::all_fluid(3, 3);
        flags.set(0, 1, sfn_grid::CellType::Solid);
        let p = PoissonProblem::new(&flags, 1.0);
        // Cell (1,1): neighbours (0,1) solid, rest fluid -> degree 3.
        assert_eq!(p.degree(1, 1), 3.0);
        // Cell (1,0): bottom edge -> outside is solid -> degree 3.
        assert_eq!(p.degree(1, 0), 3.0);
    }

    #[test]
    fn empty_neighbour_keeps_degree_but_no_coupling() {
        let mut flags = CellFlags::all_fluid(3, 3);
        flags.set(1, 2, sfn_grid::CellType::Empty);
        let p = PoissonProblem::new(&flags, 1.0);
        assert_eq!(p.degree(1, 1), 4.0);
        let mut x = Field2::new(3, 3);
        x.set(1, 2, 5.0); // value in an empty cell must be ignored
        let mut out = Field2::new(3, 3);
        p.apply(&x, &mut out);
        assert_eq!(out.at(1, 1), 0.0);
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let flags = CellFlags::smoke_box(6, 6);
        let p = PoissonProblem::new(&flags, 1.0);
        let x = Field2::from_fn(6, 6, |i, j| ((i * 3 + j * 7) % 5) as f64 * 0.1);
        let mut b = Field2::new(6, 6);
        p.apply(&x, &mut b);
        let mut r = Field2::new(6, 6);
        p.residual(&x, &b, &mut r);
        assert!(p.norm(&r) < 1e-12);
    }
}
