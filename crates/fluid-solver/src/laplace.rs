//! The discrete pressure-Poisson operator (matrix-free 5-point stencil).
//!
//! For a fluid cell `(i, j)` the operator is
//!
//! ```text
//! (A p)_ij = [ deg·p_ij − Σ_{fluid n} p_n ] / dx²
//! ```
//!
//! where `deg` counts non-solid neighbours. Solid neighbours drop out
//! (homogeneous Neumann: ∂p/∂n = 0), empty neighbours contribute to the
//! diagonal but not the off-diagonal (Dirichlet: ghost pressure 0).
//! `A` is symmetric positive (semi-)definite; it is strictly definite
//! whenever at least one fluid cell touches an empty cell, and positive
//! semi-definite with the constant null-space on fully closed domains —
//! CG handles the latter as long as the right-hand side is compatible
//! (which discrete divergence of a wall-bounded field always is).

use sfn_grid::{CellFlags, CellType, Field2};

/// The pressure-Poisson problem geometry: cell flags plus grid spacing.
#[derive(Debug, Clone, Copy)]
pub struct PoissonProblem<'a> {
    /// Cell classification (fluid/solid/empty).
    pub flags: &'a CellFlags,
    /// Grid spacing.
    pub dx: f64,
}

impl<'a> PoissonProblem<'a> {
    /// Creates a problem over the given flags with spacing `dx`.
    pub fn new(flags: &'a CellFlags, dx: f64) -> Self {
        assert!(dx > 0.0 && dx.is_finite(), "dx must be positive");
        Self { flags, dx }
    }

    /// Grid width in cells.
    #[inline]
    pub fn nx(&self) -> usize {
        self.flags.nx()
    }

    /// Grid height in cells.
    #[inline]
    pub fn ny(&self) -> usize {
        self.flags.ny()
    }

    /// Diagonal coefficient of the (unscaled by 1/dx²) matrix row for
    /// cell `(i, j)`: the number of non-solid neighbours.
    pub fn degree(&self, i: usize, j: usize) -> f64 {
        let mut deg = 0.0;
        for (di, dj) in [(1isize, 0isize), (-1, 0), (0, 1), (0, -1)] {
            if self.flags.at_or_solid(i as isize + di, j as isize + dj) != CellType::Solid {
                deg += 1.0;
            }
        }
        deg
    }

    /// Applies the operator: `out = A x`. Non-fluid cells of `out` are
    /// set to zero, and non-fluid entries of `x` are treated as zero.
    pub fn apply(&self, x: &Field2, out: &mut Field2) {
        let (nx, ny) = (self.nx(), self.ny());
        assert_eq!((x.w(), x.h()), (nx, ny), "x shape");
        assert_eq!((out.w(), out.h()), (nx, ny), "out shape");
        let inv_dx2 = 1.0 / (self.dx * self.dx);
        for j in 0..ny {
            for i in 0..nx {
                if !self.flags.is_fluid(i, j) {
                    out.set(i, j, 0.0);
                    continue;
                }
                let mut acc = self.degree(i, j) * x.at(i, j);
                for (di, dj) in [(1isize, 0isize), (-1, 0), (0, 1), (0, -1)] {
                    let (ni, nj) = (i as isize + di, j as isize + dj);
                    if self.flags.at_or_solid(ni, nj) == CellType::Fluid {
                        acc -= x.at(ni as usize, nj as usize);
                    }
                    // Empty neighbour: ghost pressure 0 contributes
                    // nothing off-diagonal; solid neighbour: dropped.
                }
                out.set(i, j, acc * inv_dx2);
            }
        }
    }

    /// Residual `r = b − A x` restricted to fluid cells.
    pub fn residual(&self, x: &Field2, b: &Field2, r: &mut Field2) {
        self.apply(x, r);
        for j in 0..self.ny() {
            for i in 0..self.nx() {
                if self.flags.is_fluid(i, j) {
                    let v = b.at(i, j) - r.at(i, j);
                    r.set(i, j, v);
                } else {
                    r.set(i, j, 0.0);
                }
            }
        }
    }

    /// ℓ₂ norm over fluid cells.
    pub fn norm(&self, x: &Field2) -> f64 {
        let mut s = 0.0;
        for j in 0..self.ny() {
            for i in 0..self.nx() {
                if self.flags.is_fluid(i, j) {
                    let v = x.at(i, j);
                    s += v * v;
                }
            }
        }
        s.sqrt()
    }

    /// Inner product over fluid cells.
    pub fn dot(&self, a: &Field2, b: &Field2) -> f64 {
        let mut s = 0.0;
        for j in 0..self.ny() {
            for i in 0..self.nx() {
                if self.flags.is_fluid(i, j) {
                    s += a.at(i, j) * b.at(i, j);
                }
            }
        }
        s
    }

    /// Number of fluid cells (system size).
    pub fn unknowns(&self) -> usize {
        self.flags.fluid_count()
    }

    /// Approximate FLOPs for one operator application
    /// (stencil: ~10 flops per fluid cell).
    pub fn apply_flops(&self) -> u64 {
        10 * self.unknowns() as u64
    }

    /// True if the system is strictly positive definite (some fluid
    /// cell has an empty neighbour, anchoring the pressure level).
    pub fn is_definite(&self) -> bool {
        let (nx, ny) = (self.nx(), self.ny());
        for j in 0..ny {
            for i in 0..nx {
                if self.flags.is_fluid(i, j) {
                    for (di, dj) in [(1isize, 0isize), (-1, 0), (0, 1), (0, -1)] {
                        if self.flags.at_or_solid(i as isize + di, j as isize + dj)
                            == CellType::Empty
                        {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }
}

/// Branch-free form of the pressure stencil: per-cell masked
/// coefficient arrays.
///
/// [`PoissonProblem::apply`] re-derives the cell classification
/// (degree, fluid-neighbour tests) on every application. The plan
/// precomputes one diagonal and four off-diagonal coefficient arrays —
/// zero wherever the stencil has no coupling — so `apply` becomes a
/// straight 5-term multiply-add over every cell with no flag queries
/// and no halo branches in the interior rows (first and last grid rows
/// run the guarded scalar form to keep neighbour indices in bounds).
///
/// The AVX2 path performs the same mul/add sequence 4 cells at a time,
/// so vector and scalar applications are bit-identical. Note the
/// coefficients double as the oracle for zero coupling: a zero
/// coefficient multiplies whatever (finite) value sits out-of-stencil,
/// contributing an exact ±0.
#[derive(Debug, Clone)]
pub struct StencilPlan {
    nx: usize,
    ny: usize,
    /// Diagonal coefficient (`degree/dx²` on fluid cells, else 0).
    diag: Vec<f64>,
    /// Coupling to `(i+1, j)`.
    cxp: Vec<f64>,
    /// Coupling to `(i-1, j)`.
    cxm: Vec<f64>,
    /// Coupling to `(i, j+1)`.
    cyp: Vec<f64>,
    /// Coupling to `(i, j-1)`.
    cym: Vec<f64>,
    /// 1.0 on fluid cells, 0.0 elsewhere.
    mask: Vec<f64>,
    unknowns: usize,
}

impl StencilPlan {
    /// Precomputes the masked coefficients for `problem`.
    pub fn new(problem: &PoissonProblem<'_>) -> Self {
        let (nx, ny) = (problem.nx(), problem.ny());
        let len = nx * ny;
        let inv_dx2 = 1.0 / (problem.dx * problem.dx);
        let mut plan = Self {
            nx,
            ny,
            diag: vec![0.0; len],
            cxp: vec![0.0; len],
            cxm: vec![0.0; len],
            cyp: vec![0.0; len],
            cym: vec![0.0; len],
            mask: vec![0.0; len],
            unknowns: problem.unknowns(),
        };
        for j in 0..ny {
            for i in 0..nx {
                if !problem.flags.is_fluid(i, j) {
                    continue;
                }
                let c = j * nx + i;
                plan.mask[c] = 1.0;
                plan.diag[c] = problem.degree(i, j) * inv_dx2;
                let fluid = |di: isize, dj: isize| {
                    problem.flags.at_or_solid(i as isize + di, j as isize + dj)
                        == CellType::Fluid
                };
                if fluid(1, 0) {
                    plan.cxp[c] = -inv_dx2;
                }
                if fluid(-1, 0) {
                    plan.cxm[c] = -inv_dx2;
                }
                if fluid(0, 1) {
                    plan.cyp[c] = -inv_dx2;
                }
                if fluid(0, -1) {
                    plan.cym[c] = -inv_dx2;
                }
            }
        }
        plan
    }

    /// System size (fluid cells).
    #[inline]
    pub fn unknowns(&self) -> usize {
        self.unknowns
    }

    /// FLOPs per application: the 5-term stencil is 5 multiplies and
    /// 4 adds per fluid cell.
    pub fn flops(&self) -> u64 {
        9 * self.unknowns as u64
    }

    /// Zeroes every non-fluid entry of `x` in place, so that
    /// whole-slice dot products and norms equal their fluid-masked
    /// counterparts exactly.
    pub fn project(&self, x: &mut Field2) {
        for (v, &m) in x.data_mut().iter_mut().zip(&self.mask) {
            if m == 0.0 {
                *v = 0.0;
            }
        }
    }

    /// One guarded (bounds-checked) cell — used for the first and last
    /// grid rows.
    #[inline]
    fn cell_guarded(&self, x: &[f64], c: usize) -> f64 {
        let len = x.len();
        let xp = if c + 1 < len { x[c + 1] } else { 0.0 };
        let xm = if c >= 1 { x[c - 1] } else { 0.0 };
        let yp = if c + self.nx < len { x[c + self.nx] } else { 0.0 };
        let ym = if c >= self.nx { x[c - self.nx] } else { 0.0 };
        self.diag[c] * x[c]
            + self.cxp[c] * xp
            + self.cxm[c] * xm
            + self.cyp[c] * yp
            + self.cym[c] * ym
    }

    /// Applies the operator: `out = A x` (same semantics as
    /// [`PoissonProblem::apply`], bit-for-bit across dispatch levels).
    pub fn apply(&self, x: &Field2, out: &mut Field2) {
        assert_eq!((x.w(), x.h()), (self.nx, self.ny), "x shape");
        assert_eq!((out.w(), out.h()), (self.nx, self.ny), "out shape");
        let nx = self.nx;
        let len = nx * self.ny;
        // Guarded edges: the first and last grid rows may index
        // out-of-bounds neighbours.
        let interior = nx.min(len)..len.saturating_sub(nx);
        {
            let xs = x.data();
            let o = out.data_mut();
            for (c, oc) in o.iter_mut().enumerate().take(interior.start) {
                *oc = self.cell_guarded(xs, c);
            }
            for (c, oc) in o.iter_mut().enumerate().take(len).skip(interior.end) {
                *oc = self.cell_guarded(xs, c);
            }
        }
        if interior.is_empty() {
            return;
        }
        match sfn_par::simd::level() {
            #[cfg(target_arch = "x86_64")]
            sfn_par::simd::SimdLevel::Avx2 => unsafe {
                self.apply_interior_avx2(x.data(), out.data_mut(), interior)
            },
            _ => self.apply_interior_scalar(x.data(), out.data_mut(), interior),
        }
    }

    /// Scalar reference for the branch-free interior.
    fn apply_interior_scalar(&self, x: &[f64], out: &mut [f64], span: std::ops::Range<usize>) {
        let nx = self.nx;
        for c in span {
            out[c] = self.diag[c] * x[c]
                + self.cxp[c] * x[c + 1]
                + self.cxm[c] * x[c - 1]
                + self.cyp[c] * x[c + nx]
                + self.cym[c] * x[c - nx];
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn apply_interior_avx2(&self, x: &[f64], out: &mut [f64], span: std::ops::Range<usize>) {
        use std::arch::x86_64::*;
        let nx = self.nx;
        let xp = x.as_ptr();
        let op = out.as_mut_ptr();
        let (dg, cxp, cxm, cyp, cym) = (
            self.diag.as_ptr(),
            self.cxp.as_ptr(),
            self.cxm.as_ptr(),
            self.cyp.as_ptr(),
            self.cym.as_ptr(),
        );
        let mut c = span.start;
        // Same mul/add sequence as the scalar loop — bit-identical.
        while c + 4 <= span.end {
            let mut acc = _mm256_mul_pd(_mm256_loadu_pd(dg.add(c)), _mm256_loadu_pd(xp.add(c)));
            acc = _mm256_add_pd(
                acc,
                _mm256_mul_pd(_mm256_loadu_pd(cxp.add(c)), _mm256_loadu_pd(xp.add(c + 1))),
            );
            acc = _mm256_add_pd(
                acc,
                _mm256_mul_pd(_mm256_loadu_pd(cxm.add(c)), _mm256_loadu_pd(xp.add(c - 1))),
            );
            acc = _mm256_add_pd(
                acc,
                _mm256_mul_pd(_mm256_loadu_pd(cyp.add(c)), _mm256_loadu_pd(xp.add(c + nx))),
            );
            acc = _mm256_add_pd(
                acc,
                _mm256_mul_pd(_mm256_loadu_pd(cym.add(c)), _mm256_loadu_pd(xp.add(c - nx))),
            );
            _mm256_storeu_pd(op.add(c), acc);
            c += 4;
        }
        if c < span.end {
            self.apply_interior_scalar(x, out, c..span.end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfn_grid::CellFlags;

    #[allow(clippy::needless_range_loop)]
    fn dense_matrix(p: &PoissonProblem<'_>) -> Vec<Vec<f64>> {
        // Build A column by column via apply on unit vectors.
        let (nx, ny) = (p.nx(), p.ny());
        let n = nx * ny;
        let mut cols = vec![vec![0.0; n]; n];
        let mut e = Field2::new(nx, ny);
        let mut out = Field2::new(nx, ny);
        for c in 0..n {
            e.fill(0.0);
            e.data_mut()[c] = 1.0;
            p.apply(&e, &mut out);
            for r in 0..n {
                cols[c][r] = out.data()[r];
            }
        }
        cols
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn operator_is_symmetric() {
        let mut flags = CellFlags::smoke_box(8, 8);
        flags.add_solid_disc(4.0, 4.0, 1.5);
        let p = PoissonProblem::new(&flags, 1.0);
        let a = dense_matrix(&p);
        let n = a.len();
        for c in 0..n {
            for r in 0..n {
                assert!(
                    (a[c][r] - a[r][c]).abs() < 1e-12,
                    "A[{r}][{c}] asymmetric: {} vs {}",
                    a[c][r],
                    a[r][c]
                );
            }
        }
    }

    #[test]
    fn operator_is_positive_semidefinite_on_random_vectors() {
        let flags = CellFlags::closed_box(6, 6);
        let p = PoissonProblem::new(&flags, 1.0);
        let mut out = Field2::new(6, 6);
        let mut state = 12345u64;
        for _ in 0..20 {
            let x = Field2::from_fn(6, 6, |_, _| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 500.0 - 1.0
            });
            p.apply(&x, &mut out);
            let q = p.dot(&x, &out);
            assert!(q >= -1e-9, "x'Ax = {q} < 0");
        }
    }

    #[test]
    fn constant_vector_in_nullspace_of_closed_domain() {
        let flags = CellFlags::closed_box(6, 6);
        let p = PoissonProblem::new(&flags, 1.0);
        let x = Field2::from_fn(6, 6, |_, _| 1.0);
        let mut out = Field2::new(6, 6);
        p.apply(&x, &mut out);
        assert!(out.max_abs() < 1e-12, "closed domain must annihilate constants");
        assert!(!p.is_definite());
    }

    #[test]
    fn open_domain_is_definite() {
        let flags = CellFlags::smoke_box(6, 6);
        let p = PoissonProblem::new(&flags, 1.0);
        assert!(p.is_definite());
        // Constants are NOT in the nullspace: top fluid row sees empty.
        let x = Field2::from_fn(6, 6, |_, _| 1.0);
        let mut out = Field2::new(6, 6);
        p.apply(&x, &mut out);
        assert!(out.max_abs() > 0.0);
    }

    #[test]
    fn interior_row_is_standard_five_point() {
        let flags = CellFlags::all_fluid(5, 5);
        let p = PoissonProblem::new(&flags, 0.5);
        let mut x = Field2::new(5, 5);
        x.set(2, 2, 1.0);
        let mut out = Field2::new(5, 5);
        p.apply(&x, &mut out);
        let inv_dx2 = 4.0;
        assert_eq!(out.at(2, 2), 4.0 * inv_dx2);
        assert_eq!(out.at(1, 2), -inv_dx2);
        assert_eq!(out.at(3, 2), -inv_dx2);
        assert_eq!(out.at(2, 1), -inv_dx2);
        assert_eq!(out.at(2, 3), -inv_dx2);
        assert_eq!(out.at(0, 0), 3.0 * 0.0); // untouched corner
    }

    #[test]
    fn solid_neighbour_reduces_degree() {
        let mut flags = CellFlags::all_fluid(3, 3);
        flags.set(0, 1, sfn_grid::CellType::Solid);
        let p = PoissonProblem::new(&flags, 1.0);
        // Cell (1,1): neighbours (0,1) solid, rest fluid -> degree 3.
        assert_eq!(p.degree(1, 1), 3.0);
        // Cell (1,0): bottom edge -> outside is solid -> degree 3.
        assert_eq!(p.degree(1, 0), 3.0);
    }

    #[test]
    fn empty_neighbour_keeps_degree_but_no_coupling() {
        let mut flags = CellFlags::all_fluid(3, 3);
        flags.set(1, 2, sfn_grid::CellType::Empty);
        let p = PoissonProblem::new(&flags, 1.0);
        assert_eq!(p.degree(1, 1), 4.0);
        let mut x = Field2::new(3, 3);
        x.set(1, 2, 5.0); // value in an empty cell must be ignored
        let mut out = Field2::new(3, 3);
        p.apply(&x, &mut out);
        assert_eq!(out.at(1, 1), 0.0);
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let flags = CellFlags::smoke_box(6, 6);
        let p = PoissonProblem::new(&flags, 1.0);
        let x = Field2::from_fn(6, 6, |i, j| ((i * 3 + j * 7) % 5) as f64 * 0.1);
        let mut b = Field2::new(6, 6);
        p.apply(&x, &mut b);
        let mut r = Field2::new(6, 6);
        p.residual(&x, &b, &mut r);
        assert!(p.norm(&r) < 1e-12);
    }

    fn mixed_flags(nx: usize, ny: usize) -> CellFlags {
        let mut flags = CellFlags::smoke_box(nx, ny);
        flags.set(nx / 2, ny / 2, sfn_grid::CellType::Solid);
        flags.set(1, ny - 2, sfn_grid::CellType::Empty);
        flags
    }

    #[test]
    fn stencil_plan_matches_matrix_free_apply() {
        for (nx, ny) in [(3, 3), (7, 5), (17, 13)] {
            let flags = mixed_flags(nx, ny);
            let p = PoissonProblem::new(&flags, 0.5);
            let plan = StencilPlan::new(&p);
            assert_eq!(plan.unknowns(), p.unknowns());
            let mut x = Field2::from_fn(nx, ny, |i, j| ((i * 5 + j * 11) % 9) as f64 * 0.25 - 1.0);
            // Non-fluid entries of x are ignored by the matrix-free
            // apply; the plan multiplies them by zero coefficients.
            // Plant garbage there to prove it.
            x.set(nx / 2, ny / 2, 1e9);
            let mut want = Field2::new(nx, ny);
            let mut got = Field2::new(nx, ny);
            p.apply(&x, &mut want);
            plan.apply(&x, &mut got);
            for (a, b) in want.data().iter().zip(got.data()) {
                assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn stencil_plan_vector_path_is_bit_identical_to_scalar() {
        use sfn_par::simd::{with_level, SimdLevel};
        let flags = mixed_flags(19, 11);
        let p = PoissonProblem::new(&flags, 0.25);
        let plan = StencilPlan::new(&p);
        let x = Field2::from_fn(19, 11, |i, j| ((i * 13 + j * 7) % 23) as f64 / 3.0 - 2.0);
        let mut scalar = Field2::new(19, 11);
        let mut auto = Field2::new(19, 11);
        with_level(SimdLevel::Scalar, || plan.apply(&x, &mut scalar));
        plan.apply(&x, &mut auto);
        for (a, b) in scalar.data().iter().zip(auto.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn stencil_plan_project_masks_non_fluid() {
        let flags = mixed_flags(6, 6);
        let p = PoissonProblem::new(&flags, 1.0);
        let plan = StencilPlan::new(&p);
        let mut x = Field2::from_fn(6, 6, |_, _| 3.5);
        plan.project(&mut x);
        for j in 0..6 {
            for i in 0..6 {
                let want = if flags.is_fluid(i, j) { 3.5 } else { 0.0 };
                assert_eq!(x.at(i, j), want);
            }
        }
        assert_eq!(plan.flops(), 9 * p.unknowns() as u64);
    }
}
