//! Weight inheritance across model transformations (network morphism).
//!
//! Auto-Keras — the system §4 extends — is built on *network morphisms*:
//! architecture edits that carry the parent's weights over so the child
//! starts near the parent's function instead of from scratch. The four
//! Smart-fluidnet operations map onto weight transfers naturally:
//!
//! * `narrow`: keep the strongest output channels (by L1 norm) and the
//!   matching input slices of the next layer;
//! * `shallow`: drop the deleted layer's weights, splicing the
//!   neighbours (input slices re-matched by channel count);
//! * `pooling` / `dropout`: purely structural — every conv keeps its
//!   weights verbatim.
//!
//! [`inherit_weights`] implements a general structural matcher: convs
//! are aligned greedily in order, kernels are centre-cropped/padded
//! when sizes differ, and channels are selected by parent strength.
//! Anything unmatched keeps its fresh initialisation. The result is a
//! warm start, not an exact morphism — a short fine-tune recovers the
//! rest, which is exactly how the family training uses it.

use sfn_nn::network::SavedModel;
use sfn_nn::{LayerSpec, Network, NetworkSpec};

/// Describes one conv layer's weight tensors inside a flat
/// `SavedModel.weights` list.
#[derive(Debug, Clone, Copy)]
struct ConvSlot {
    /// Index of the weight tensor in `weights` (bias follows at +1).
    tensor: usize,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
}

/// Collects the conv slots of a spec, in layer order, assuming the
/// `Network::params` layout (each parameterised layer contributes
/// weights then bias).
fn conv_slots(spec: &NetworkSpec) -> Vec<ConvSlot> {
    let mut slots = Vec::new();
    let mut tensor = 0usize;
    for layer in &spec.layers {
        match *layer {
            LayerSpec::Conv2d {
                in_ch,
                out_ch,
                kernel,
                ..
            } => {
                slots.push(ConvSlot {
                    tensor,
                    in_ch,
                    out_ch,
                    kernel,
                });
                tensor += 2;
            }
            LayerSpec::Dense { .. } => {
                tensor += 2;
            }
            _ => {}
        }
    }
    slots
}

/// Ranks the parent's output channels by L1 weight norm, strongest
/// first — the channels `narrow` should keep.
fn channel_ranking(weight: &[f32], in_ch: usize, kernel: usize, out_ch: usize) -> Vec<usize> {
    let per_oc = in_ch * kernel * kernel;
    let mut scores: Vec<(usize, f32)> = (0..out_ch)
        .map(|oc| {
            let s: f32 = weight[oc * per_oc..(oc + 1) * per_oc]
                .iter()
                .map(|v| v.abs())
                .sum();
            (oc, s)
        })
        .collect();
    scores.sort_by(|a, b| b.1.total_cmp(&a.1));
    scores.into_iter().map(|(oc, _)| oc).collect()
}

/// Copies parent conv weights into a child conv, selecting the given
/// parent output channels and input channels, centre-aligning kernels.
#[allow(clippy::too_many_arguments)]
fn transfer_conv(
    parent_w: &[f32],
    parent: ConvSlot,
    child_w: &mut [f32],
    child: ConvSlot,
    out_map: &[usize],
    in_map: &[usize],
) {
    let pk = parent.kernel;
    let ck = child.kernel;
    // Centre offset when kernel sizes differ (3x3 into 5x5 etc.).
    let off = if ck >= pk { (ck - pk) / 2 } else { 0 };
    let poff = if pk > ck { (pk - ck) / 2 } else { 0 };
    let copy_k = pk.min(ck);
    for (c_oc, &p_oc) in out_map.iter().enumerate().take(child.out_ch) {
        for (c_ic, &p_ic) in in_map.iter().enumerate().take(child.in_ch) {
            if p_oc >= parent.out_ch || p_ic >= parent.in_ch {
                continue;
            }
            for ky in 0..copy_k {
                for kx in 0..copy_k {
                    let p_idx =
                        ((p_oc * parent.in_ch + p_ic) * pk + (ky + poff)) * pk + (kx + poff);
                    let c_idx = ((c_oc * child.in_ch + c_ic) * ck + (ky + off)) * ck + (kx + off);
                    child_w[c_idx] = parent_w[p_idx];
                }
            }
        }
    }
}

/// Warm-starts `child_spec` from a trained parent.
///
/// Returns a network whose conv layers carry the parent's weights where
/// the architectures align (greedy in-order matching; extra child
/// layers keep their fresh seed-`seed` initialisation). The caller
/// fine-tunes the result.
pub fn inherit_weights(parent: &SavedModel, child_spec: &NetworkSpec, seed: u64) -> Network {
    let mut child = Network::from_spec(child_spec, seed).expect("valid child spec");
    let parent_slots = conv_slots(&parent.spec);
    let child_slots = conv_slots(child_spec);
    if parent_slots.is_empty() || child_slots.is_empty() {
        return child;
    }

    // Greedy alignment: first conv to first conv, last (head) to last,
    // interior in order.
    let pairs: Vec<(ConvSlot, ConvSlot)> = {
        let n = child_slots.len().min(parent_slots.len());
        let mut pairs = Vec::with_capacity(n);
        for i in 0..n {
            let c = child_slots[if i + 1 == n {
                child_slots.len() - 1
            } else {
                i
            }];
            let p = parent_slots[if i + 1 == n {
                parent_slots.len() - 1
            } else {
                i
            }];
            pairs.push((p, c));
        }
        pairs
    };

    // Track the child->parent channel map flowing between layers so a
    // narrowed layer's survivors feed the next layer's input slices.
    let mut in_map: Vec<usize> = (0..child_slots[0].in_ch).collect();
    let mut views = child.params();
    for (p, c) in pairs {
        let parent_w = &parent.weights[p.tensor];
        let parent_b = &parent.weights[p.tensor + 1];
        // Identity map when widths match (keeps residual skips exact);
        // strongest-channels selection only when actually narrowing.
        let out_map: Vec<usize> = if c.out_ch >= p.out_ch {
            (0..p.out_ch).collect()
        } else {
            channel_ranking(parent_w, p.in_ch, p.kernel, p.out_ch)
                .into_iter()
                .take(c.out_ch)
                .collect()
        };
        // Pad the map if the child is wider than the parent.
        let mut out_map_full = out_map.clone();
        while out_map_full.len() < c.out_ch {
            out_map_full.push(usize::MAX); // stays fresh
        }
        {
            let w = &mut views[c.tensor];
            transfer_conv(parent_w, p, w.values, c, &out_map_full, &in_map);
        }
        {
            let b = &mut views[c.tensor + 1];
            for (c_oc, &p_oc) in out_map_full.iter().enumerate().take(c.out_ch) {
                if p_oc < parent_b.len() {
                    b.values[c_oc] = parent_b[p_oc];
                }
            }
        }
        in_map = out_map_full;
    }
    drop(views);
    child
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{dropout, narrow, pooling, shallow};
    use sfn_nn::Tensor;
    use sfn_surrogate::tompson_spec;

    fn trained_parent() -> SavedModel {
        // A deterministic "trained" parent: weights with recognisable
        // structure (not random) so transfer effects are observable.
        let spec = tompson_spec(8);
        let mut net = Network::from_spec(&spec, 3).unwrap();
        for (k, view) in net.params().into_iter().enumerate() {
            for (i, v) in view.values.iter_mut().enumerate() {
                *v = ((k * 131 + i * 17) % 23) as f32 / 23.0 - 0.5;
            }
        }
        net.save()
    }

    fn output_of(net: &mut Network) -> Tensor {
        let x = Tensor::from_fn(1, 2, 16, 16, |_, c, h, w| {
            ((c * 29 + h * 5 + w * 11) % 19) as f32 / 19.0 - 0.5
        });
        net.predict(&x)
    }

    #[test]
    fn structural_ops_preserve_function_exactly() {
        // Dropout insertion is a pure morphism in eval mode: identical
        // outputs.
        let parent = trained_parent();
        let child_spec = dropout(&parent.spec, 1, 0.1).unwrap();
        let mut child = inherit_weights(&parent, &child_spec, 9);
        let mut orig = Network::load(&parent, 0).unwrap();
        let a = output_of(&mut orig);
        let b = output_of(&mut child);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn narrow_child_is_closer_than_fresh_init() {
        let parent = trained_parent();
        let child_spec = narrow(&parent.spec, 1, 0.25).unwrap();
        let mut orig = Network::load(&parent, 0).unwrap();
        let target = output_of(&mut orig);

        let mut warm = inherit_weights(&parent, &child_spec, 9);
        let mut cold = Network::from_spec(&child_spec, 9).unwrap();
        let dist = |net: &mut Network| -> f32 {
            let y = output_of(net);
            y.data()
                .iter()
                .zip(target.data())
                .map(|(a, b)| (a - b) * (a - b))
                .sum()
        };
        let dw = dist(&mut warm);
        let dc = dist(&mut cold);
        assert!(
            dw < dc,
            "warm start ({dw}) should be closer to the parent than fresh init ({dc})"
        );
    }

    #[test]
    fn shallow_child_loads_and_runs() {
        let parent = trained_parent();
        let child_spec = shallow(&parent.spec, 0).unwrap();
        let mut child = inherit_weights(&parent, &child_spec, 5);
        let y = output_of(&mut child);
        assert!(y.all_finite());
        assert_eq!(y.shape(), (1, 1, 16, 16));
    }

    #[test]
    fn pooling_child_loads_and_runs() {
        let parent = trained_parent();
        let child_spec = pooling(&parent.spec, 1, false).unwrap();
        let mut child = inherit_weights(&parent, &child_spec, 5);
        let y = output_of(&mut child);
        assert!(y.all_finite());
        assert_eq!(y.shape(), (1, 1, 16, 16));
    }

    #[test]
    fn kernel_resize_centre_aligns() {
        // Parent 3x3 identity-ish kernel into a 5x5 child: the centre
        // 3x3 must carry over.
        let parent_spec = NetworkSpec::new(vec![LayerSpec::Conv2d {
            in_ch: 1,
            out_ch: 1,
            kernel: 3,
            residual: false,
        }]);
        let mut pnet = Network::from_spec(&parent_spec, 1).unwrap();
        {
            let mut views = pnet.params();
            views[0].values.copy_from_slice(&[1., 2., 3., 4., 5., 6., 7., 8., 9.]);
            views[1].values[0] = 0.25;
        }
        let parent = pnet.save();
        let child_spec = NetworkSpec::new(vec![LayerSpec::Conv2d {
            in_ch: 1,
            out_ch: 1,
            kernel: 5,
            residual: false,
        }]);
        let mut child = inherit_weights(&parent, &child_spec, 7);
        let views = child.params();
        let w = &views[0].values;
        // Centre 3x3 of the 5x5 kernel equals the parent.
        let centre: Vec<f32> = (1..4)
            .flat_map(|y| (1..4).map(move |x| w[y * 5 + x]))
            .collect();
        assert_eq!(centre, vec![1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        assert_eq!(views[1].values[0], 0.25);
    }

    #[test]
    fn mismatched_depths_still_transfer_head() {
        let parent = trained_parent();
        // Chain several ops: much shorter child.
        let s = shallow(&parent.spec, 0).unwrap();
        let s = shallow(&s, 0).unwrap_or(s);
        let mut child = inherit_weights(&parent, &s, 5);
        assert!(output_of(&mut child).all_finite());
    }
}
