//! The Auto-Keras substitute: a seeded random architecture search.
//!
//! The paper extends Auto-Keras (Bayesian network-morphism search) to
//! produce "five models with the better accuracy". Reproducing
//! Auto-Keras itself is out of scope (and immaterial — the paper only
//! consumes its output); this module explores the same axes the
//! morphism operators walk (depth, width, kernel size, residual
//! links), trains every candidate briefly on the shared dataset and
//! returns the most accurate ones.

use sfn_nn::{LayerSpec, NetworkSpec};
use sfn_obs::json::{obj, FromJson, JsonError, ToJson, Value};
use sfn_rng::rngs::StdRng;
use sfn_rng::{RngExt, SeedableRng};
use sfn_surrogate::train::evaluate_divnorm;
use sfn_surrogate::{train_projection_model, ProjectionDataset, TrainConfig};

/// Search budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchConfig {
    /// Number of random candidates to generate and score.
    pub candidates: usize,
    /// Training epochs per candidate (successive-halving style short
    /// budget — ranking, not convergence).
    pub train_epochs: usize,
    /// Learning rate for candidate training.
    pub learning_rate: f64,
    /// Seed.
    pub seed: u64,
}

impl ToJson for SearchConfig {
    fn to_json_value(&self) -> Value {
        obj([
            ("candidates", self.candidates.to_json_value()),
            ("train_epochs", self.train_epochs.to_json_value()),
            ("learning_rate", self.learning_rate.to_json_value()),
            ("seed", self.seed.to_json_value()),
        ])
    }
}

impl FromJson for SearchConfig {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        Ok(SearchConfig {
            candidates: v.field("candidates")?,
            train_epochs: v.field("train_epochs")?,
            learning_rate: v.field("learning_rate")?,
            seed: v.field("seed")?,
        })
    }
}

impl SearchConfig {
    /// A deliberately tiny budget for unit tests.
    pub fn fast() -> Self {
        Self {
            candidates: 3,
            train_epochs: 8,
            learning_rate: 1e-2,
            seed: 0x5EA7C4,
        }
    }
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            candidates: 12,
            train_epochs: 30,
            learning_rate: 1e-2,
            seed: 0x5EA7C4,
        }
    }
}

/// Samples one random architecture around the base: width multiplier,
/// per-layer kernel choice, optional extra trunk stage, optional
/// residual links.
fn sample_candidate(base_width: usize, rng: &mut StdRng) -> NetworkSpec {
    let width = match rng.random_range(0..4u32) {
        0 => base_width,
        1 => base_width + base_width / 2,
        2 => base_width * 2,
        _ => (base_width * 3) / 4,
    }
    .max(4);
    let stages = rng.random_range(4..=6usize);
    let mut layers = Vec::new();
    let mut ch = 2usize;
    for s in 0..stages {
        let out = if s + 1 == stages { width / 2 } else { width }.max(2);
        let kernel = if rng.random_range(0..3u32) == 0 { 5 } else { 3 };
        let residual = ch == out && rng.random_range(0..2u32) == 1;
        layers.push(LayerSpec::Conv2d {
            in_ch: ch,
            out_ch: out,
            kernel,
            residual,
        });
        layers.push(LayerSpec::ReLU);
        ch = out;
    }
    layers.push(LayerSpec::Conv2d {
        in_ch: ch,
        out_ch: 1,
        kernel: 1,
        residual: false,
    });
    NetworkSpec::new(layers)
}

/// Runs the search, returning `count` specs sorted from most to least
/// accurate (by DivNorm on `dataset` after the short training budget).
pub fn architecture_search(
    base: &NetworkSpec,
    dataset: &ProjectionDataset,
    count: usize,
    cfg: &SearchConfig,
) -> Vec<NetworkSpec> {
    assert!(count > 0, "must request at least one model");
    let base_width = base
        .layers
        .iter()
        .filter_map(|l| match l {
            LayerSpec::Conv2d { out_ch, .. } => Some(*out_ch),
            _ => None,
        })
        .max()
        .unwrap_or(16);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut scored: Vec<(f64, NetworkSpec)> = Vec::new();
    // The base itself competes (network-morphism searches start there).
    let mut pool = vec![base.clone()];
    for _ in 0..cfg.candidates {
        pool.push(sample_candidate(base_width, &mut rng));
    }
    for (i, spec) in pool.into_iter().enumerate() {
        if spec.validate((2, 16, 16)).is_err() {
            continue;
        }
        let train_cfg = TrainConfig {
            epochs: cfg.train_epochs,
            batch_size: 8,
            learning_rate: cfg.learning_rate,
            seed: cfg.seed.wrapping_add(i as u64),
            supervised_weight: 0.0,
        };
        let (mut net, _) = train_projection_model(&spec, dataset, &train_cfg);
        let loss = evaluate_divnorm(&mut net, dataset);
        if loss.is_finite() {
            scored.push((loss, spec));
        }
    }
    scored.sort_by(|a, b| a.0.total_cmp(&b.0));
    scored.into_iter().take(count).map(|(_, s)| s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfn_surrogate::tompson_spec;
    use sfn_workload::ProblemSet;

    fn dataset() -> ProjectionDataset {
        ProjectionDataset::generate(&ProblemSet::training(16, 1), 4, 2)
    }

    #[test]
    fn returns_requested_count_of_valid_specs() {
        let ds = dataset();
        let out = architecture_search(&tompson_spec(8), &ds, 2, &SearchConfig::fast());
        assert_eq!(out.len(), 2);
        for spec in &out {
            assert_eq!(spec.output_shape((2, 32, 32)).unwrap(), (1, 32, 32));
        }
    }

    #[test]
    fn search_is_deterministic() {
        let ds = dataset();
        let a = architecture_search(&tompson_spec(8), &ds, 2, &SearchConfig::fast());
        let b = architecture_search(&tompson_spec(8), &ds, 2, &SearchConfig::fast());
        assert_eq!(a, b);
    }

    #[test]
    fn candidates_vary_in_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let specs: Vec<NetworkSpec> = (0..8).map(|_| sample_candidate(16, &mut rng)).collect();
        let distinct: std::collections::HashSet<String> =
            specs.iter().map(|s| s.render()).collect();
        assert!(distinct.len() >= 4, "search space too narrow: {distinct:?}");
    }
}
