//! The §4 model-generation schedule: 5 → 55 → 110 → 128 (+5 search).

use crate::search::{architecture_search, SearchConfig};
use crate::transform::{dropout, narrow, pooling, shallow};
use sfn_nn::NetworkSpec;
use sfn_obs::json::{obj, FromJson, JsonError, ToJson, Value};
use sfn_rng::rngs::StdRng;
use sfn_rng::{RngExt, SeedableRng};
use sfn_surrogate::ProjectionDataset;

/// How a model was derived from the base network.
#[derive(Debug, Clone, PartialEq)]
pub enum Origin {
    /// The unmodified input network.
    Base,
    /// Produced by the Auto-Keras-substitute search (§4: "five models
    /// with the better accuracy").
    Search,
    /// Operation 1 applied to the base.
    Shallow {
        /// Which intermediate conv was removed.
        which: usize,
    },
    /// Operation 2 applied to a shallow variant.
    Narrow {
        /// Parent model index within the family.
        parent: usize,
        /// Which conv was narrowed.
        which: usize,
    },
    /// Operation 3 applied to a narrow/shallow variant.
    Pooling {
        /// Parent model index within the family.
        parent: usize,
        /// Whether average pooling was used (else max pooling).
        average: bool,
    },
    /// Operation 4 applied to a randomly chosen model.
    Dropout {
        /// Parent model index within the family.
        parent: usize,
        /// Drop probability.
        p: f64,
    },
}

/// One generated (untrained) model.
#[derive(Debug, Clone)]
pub struct GeneratedModel {
    /// Index within the family.
    pub id: usize,
    /// Display name (`M<id>` style in bench output).
    pub name: String,
    /// Provenance.
    pub origin: Origin,
    /// Architecture.
    pub spec: NetworkSpec,
}

/// Parameters of the generation schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FamilyConfig {
    /// Shallow variants of the base (paper: 5).
    pub shallow_variants: usize,
    /// Narrow variants per shallow model (paper: 10).
    pub narrow_per_model: usize,
    /// Neuron fraction removed by each narrow (paper: `|L|/10`).
    pub narrow_fraction: f64,
    /// Dropout variants (paper: 18, chosen from the 110).
    pub dropout_variants: usize,
    /// Dropout probability (paper's sensitivity study settles on 10%).
    pub dropout_p: f64,
    /// Search models to include (paper: 5 accurate Auto-Keras models).
    pub search_models: usize,
    /// Seed for the random choices in the schedule.
    pub seed: u64,
}

impl ToJson for Origin {
    fn to_json_value(&self) -> Value {
        match *self {
            Origin::Base => Value::Str("Base".to_string()),
            Origin::Search => Value::Str("Search".to_string()),
            Origin::Shallow { which } => {
                obj([("Shallow", obj([("which", which.to_json_value())]))])
            }
            Origin::Narrow { parent, which } => obj([(
                "Narrow",
                obj([
                    ("parent", parent.to_json_value()),
                    ("which", which.to_json_value()),
                ]),
            )]),
            Origin::Pooling { parent, average } => obj([(
                "Pooling",
                obj([
                    ("parent", parent.to_json_value()),
                    ("average", average.to_json_value()),
                ]),
            )]),
            Origin::Dropout { parent, p } => obj([(
                "Dropout",
                obj([("parent", parent.to_json_value()), ("p", p.to_json_value())]),
            )]),
        }
    }
}

impl FromJson for Origin {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        if let Some(name) = v.as_str() {
            return match name {
                "Base" => Ok(Origin::Base),
                "Search" => Ok(Origin::Search),
                other => Err(JsonError {
                    at: 0,
                    message: format!("unknown Origin variant `{other}`"),
                }),
            };
        }
        let fields = v.as_obj().ok_or_else(|| JsonError {
            at: 0,
            message: "expected Origin variant string or object".to_string(),
        })?;
        let [(tag, body)] = fields else {
            return Err(JsonError {
                at: 0,
                message: format!("expected single-variant object, got {} keys", fields.len()),
            });
        };
        match tag.as_str() {
            "Shallow" => Ok(Origin::Shallow { which: body.field("which")? }),
            "Narrow" => Ok(Origin::Narrow {
                parent: body.field("parent")?,
                which: body.field("which")?,
            }),
            "Pooling" => Ok(Origin::Pooling {
                parent: body.field("parent")?,
                average: body.field("average")?,
            }),
            "Dropout" => Ok(Origin::Dropout {
                parent: body.field("parent")?,
                p: body.field("p")?,
            }),
            other => Err(JsonError {
                at: 0,
                message: format!("unknown Origin variant `{other}`"),
            }),
        }
    }
}

impl ToJson for GeneratedModel {
    fn to_json_value(&self) -> Value {
        obj([
            ("id", self.id.to_json_value()),
            ("name", self.name.to_json_value()),
            ("origin", self.origin.to_json_value()),
            ("spec", self.spec.to_json_value()),
        ])
    }
}

impl FromJson for GeneratedModel {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        Ok(GeneratedModel {
            id: v.field("id")?,
            name: v.field("name")?,
            origin: v.field("origin")?,
            spec: v.field("spec")?,
        })
    }
}

impl ToJson for FamilyConfig {
    fn to_json_value(&self) -> Value {
        obj([
            ("shallow_variants", self.shallow_variants.to_json_value()),
            ("narrow_per_model", self.narrow_per_model.to_json_value()),
            ("narrow_fraction", self.narrow_fraction.to_json_value()),
            ("dropout_variants", self.dropout_variants.to_json_value()),
            ("dropout_p", self.dropout_p.to_json_value()),
            ("search_models", self.search_models.to_json_value()),
            ("seed", self.seed.to_json_value()),
        ])
    }
}

impl FromJson for FamilyConfig {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        Ok(FamilyConfig {
            shallow_variants: v.field("shallow_variants")?,
            narrow_per_model: v.field("narrow_per_model")?,
            narrow_fraction: v.field("narrow_fraction")?,
            dropout_variants: v.field("dropout_variants")?,
            dropout_p: v.field("dropout_p")?,
            search_models: v.field("search_models")?,
            seed: v.field("seed")?,
        })
    }
}

impl Default for FamilyConfig {
    fn default() -> Self {
        Self {
            shallow_variants: 5,
            narrow_per_model: 10,
            narrow_fraction: 0.1,
            dropout_variants: 18,
            dropout_p: 0.1,
            search_models: 5,
            seed: 0xFA1117,
        }
    }
}

impl FamilyConfig {
    /// A reduced schedule for tests and quick runs (≈ 20 models).
    pub fn reduced() -> Self {
        Self {
            shallow_variants: 2,
            narrow_per_model: 3,
            dropout_variants: 4,
            search_models: 2,
            ..Default::default()
        }
    }

    /// Expected family size: base + shallow·(1 + narrow) doubled by
    /// pooling, plus dropout and search models.
    pub fn expected_size(&self) -> usize {
        let after_narrow = self.shallow_variants * (1 + self.narrow_per_model);
        1 + 2 * after_narrow + self.dropout_variants + self.search_models
    }
}

/// Runs the §4 schedule. `dataset` is only used by the architecture
/// search (to rank candidates); pass a small one for quick runs.
///
/// The returned family always contains the base model at index 0.
pub fn generate_family(
    base: &NetworkSpec,
    dataset: &ProjectionDataset,
    search_cfg: &SearchConfig,
    cfg: &FamilyConfig,
) -> Vec<GeneratedModel> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut family: Vec<GeneratedModel> = Vec::with_capacity(cfg.expected_size());
    let push = |family: &mut Vec<GeneratedModel>, origin: Origin, spec: NetworkSpec| {
        let id = family.len();
        family.push(GeneratedModel {
            id,
            name: format!("M{id}"),
            origin,
            spec,
        });
    };

    push(&mut family, Origin::Base, base.clone());

    // Operation 1: shallow variants of the base.
    let mut shallow_ids = Vec::new();
    for which in 0..cfg.shallow_variants {
        if let Some(spec) = shallow(base, which) {
            shallow_ids.push(family.len());
            push(&mut family, Origin::Shallow { which }, spec);
        }
    }

    // Operation 2: narrow each shallow variant several times, each a
    // fresh random conv choice (paper: "randomly choose r neurons …
    // ten times, each of which generates a new model").
    let mut stage2_ids = shallow_ids.clone();
    for &parent in &shallow_ids {
        let parent_spec = family[parent].spec.clone();
        for _ in 0..cfg.narrow_per_model {
            let which = rng.random_range(0..16usize);
            if let Some(spec) = narrow(&parent_spec, which, cfg.narrow_fraction) {
                stage2_ids.push(family.len());
                push(&mut family, Origin::Narrow { parent, which }, spec);
            }
        }
    }

    // Operation 3: one pooling variant of every stage-2 model.
    let mut stage3_ids = stage2_ids.clone();
    for &parent in &stage2_ids {
        let parent_spec = family[parent].spec.clone();
        let average = rng.random_range(0..2u32) == 1;
        let at = rng.random_range(0..8usize);
        if let Some(spec) = pooling(&parent_spec, at, average) {
            stage3_ids.push(family.len());
            push(&mut family, Origin::Pooling { parent, average }, spec);
        }
    }

    // Operation 4: dropout on randomly selected models.
    for _ in 0..cfg.dropout_variants {
        let parent = stage3_ids[rng.random_range(0..stage3_ids.len())];
        let parent_spec = family[parent].spec.clone();
        let which = rng.random_range(0..8usize);
        if let Some(spec) = dropout(&parent_spec, which, cfg.dropout_p) {
            push(
                &mut family,
                Origin::Dropout {
                    parent,
                    p: cfg.dropout_p,
                },
                spec,
            );
        }
    }

    // Accurate models from the architecture search.
    if cfg.search_models > 0 {
        for spec in architecture_search(base, dataset, cfg.search_models, search_cfg) {
            push(&mut family, Origin::Search, spec);
        }
    }

    family
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfn_surrogate::tompson_spec;
    use sfn_workload::ProblemSet;

    fn dataset() -> ProjectionDataset {
        ProjectionDataset::generate(&ProblemSet::training(16, 1), 4, 2)
    }

    #[test]
    fn paper_schedule_yields_133_models() {
        let cfg = FamilyConfig {
            search_models: 0, // search is tested separately (slow)
            ..Default::default()
        };
        let ds = dataset();
        let family = generate_family(&tompson_spec(16), &ds, &SearchConfig::fast(), &cfg);
        // 1 base + 5 shallow + 50 narrow + 55 pooling + 18 dropout = 129;
        // with the 5 search models the paper's 133 plus the explicit base
        // (the paper counts the base inside its 133).
        assert_eq!(family.len(), 129);
        assert_eq!(cfg.expected_size(), 129);
    }

    #[test]
    fn every_family_member_is_a_valid_surrogate() {
        let cfg = FamilyConfig {
            search_models: 0,
            ..FamilyConfig::reduced()
        };
        let ds = dataset();
        let family = generate_family(&tompson_spec(8), &ds, &SearchConfig::fast(), &cfg);
        for m in &family {
            let out = m
                .spec
                .output_shape((2, 32, 32))
                .unwrap_or_else(|e| panic!("{} invalid: {e}", m.name));
            assert_eq!(out, (1, 32, 32), "{}", m.name);
        }
    }

    #[test]
    fn family_is_deterministic() {
        let cfg = FamilyConfig {
            search_models: 0,
            ..FamilyConfig::reduced()
        };
        let ds = dataset();
        let a = generate_family(&tompson_spec(8), &ds, &SearchConfig::fast(), &cfg);
        let b = generate_family(&tompson_spec(8), &ds, &SearchConfig::fast(), &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.origin, y.origin);
        }
    }

    #[test]
    fn family_spans_a_cost_range() {
        use sfn_nn::flops::spec_flops;
        let cfg = FamilyConfig {
            search_models: 0,
            ..FamilyConfig::reduced()
        };
        let ds = dataset();
        let family = generate_family(&tompson_spec(16), &ds, &SearchConfig::fast(), &cfg);
        let costs: Vec<u64> = family
            .iter()
            .map(|m| spec_flops(&m.spec, (2, 32, 32)).unwrap())
            .collect();
        let min = *costs.iter().min().unwrap();
        let max = *costs.iter().max().unwrap();
        assert!(
            max as f64 / min as f64 > 3.0,
            "cost spread too small: {min}..{max}"
        );
    }

    #[test]
    fn ids_and_names_are_consistent() {
        let cfg = FamilyConfig {
            search_models: 0,
            ..FamilyConfig::reduced()
        };
        let ds = dataset();
        let family = generate_family(&tompson_spec(8), &ds, &SearchConfig::fast(), &cfg);
        for (i, m) in family.iter().enumerate() {
            assert_eq!(m.id, i);
            assert_eq!(m.name, format!("M{i}"));
        }
        assert_eq!(family[0].origin, Origin::Base);
    }
}
