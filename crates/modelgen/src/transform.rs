//! The four §4 model-transformation operations on [`NetworkSpec`]s.
//!
//! All operations preserve the surrogate contract: 2 input channels,
//! 1 output channel, spatial shape preserved (pool/unpool inserted in
//! matched pairs). After structural edits the channel chain is
//! repaired by [`fix_channels`], and residual flags that became
//! invalid are cleared.

use sfn_nn::{LayerSpec, NetworkSpec};

/// Repairs the conv/dense channel chain for the given input channel
/// count: every conv's `in_ch` is set to the running channel count,
/// residual flags are dropped where `in_ch != out_ch`, and the final
/// conv is forced to a single output channel.
pub fn fix_channels(spec: &mut NetworkSpec, input_ch: usize) {
    let mut ch = input_ch;
    let last_conv = spec
        .layers
        .iter()
        .rposition(|l| matches!(l, LayerSpec::Conv2d { .. }));
    for (idx, layer) in spec.layers.iter_mut().enumerate() {
        match layer {
            LayerSpec::Conv2d {
                in_ch,
                out_ch,
                residual,
                ..
            } => {
                *in_ch = ch;
                if Some(idx) == last_conv {
                    *out_ch = 1;
                }
                if *in_ch != *out_ch {
                    *residual = false;
                }
                ch = *out_ch;
            }
            LayerSpec::Dense { inputs: _, outputs } => {
                // Dense layers do not appear in the conv surrogates, but
                // keep the walk total for robustness.
                ch = *outputs;
            }
            _ => {}
        }
    }
}

/// Operation 1 — `shallow(G, L)`: deletes the `which`-th *intermediate*
/// convolution (never the first or the output head) together with its
/// following activation, then repairs the chain.
///
/// Returns `None` when the spec has no removable intermediate conv.
pub fn shallow(spec: &NetworkSpec, which: usize) -> Option<NetworkSpec> {
    let conv_positions: Vec<usize> = spec
        .layers
        .iter()
        .enumerate()
        .filter_map(|(i, l)| matches!(l, LayerSpec::Conv2d { .. }).then_some(i))
        .collect();
    // Intermediate convs: exclude the first (input adapter) and last (head).
    if conv_positions.len() < 3 {
        return None;
    }
    let removable = &conv_positions[1..conv_positions.len() - 1];
    if removable.is_empty() {
        return None;
    }
    let target = removable[which % removable.len()];
    let mut layers = spec.layers.clone();
    // Remove the conv and, if present, the directly following activation.
    let remove_next = matches!(
        layers.get(target + 1),
        Some(LayerSpec::ReLU) | Some(LayerSpec::Sigmoid) | Some(LayerSpec::Tanh)
    );
    if remove_next {
        layers.remove(target + 1);
    }
    layers.remove(target);
    let mut out = NetworkSpec::new(layers);
    fix_channels(&mut out, 2);
    Some(out)
}

/// Operation 2 — `narrow(G, L, r)`: reduces the output channels of the
/// `which`-th intermediate conv by `fraction` (the paper uses
/// `r = |L| / 10`), keeping at least 2 channels.
///
/// Returns `None` if no intermediate conv exists.
pub fn narrow(spec: &NetworkSpec, which: usize, fraction: f64) -> Option<NetworkSpec> {
    assert!((0.0..1.0).contains(&fraction), "fraction in [0, 1)");
    let conv_positions: Vec<usize> = spec
        .layers
        .iter()
        .enumerate()
        .filter_map(|(i, l)| matches!(l, LayerSpec::Conv2d { .. }).then_some(i))
        .collect();
    if conv_positions.len() < 2 {
        return None;
    }
    // Any conv but the head can be narrowed.
    let narrowable = &conv_positions[..conv_positions.len() - 1];
    let target = narrowable[which % narrowable.len()];
    let mut layers = spec.layers.clone();
    if let LayerSpec::Conv2d { out_ch, .. } = &mut layers[target] {
        let r = ((*out_ch as f64 * fraction).ceil() as usize).max(1);
        *out_ch = out_ch.saturating_sub(r).max(2);
    }
    let mut out = NetworkSpec::new(layers);
    fix_channels(&mut out, 2);
    Some(out)
}

/// Operation 3 — `pooling(G, L, m)`: inserts a matched
/// `MaxPool{2}` / `Upsample{2}` pair so that the layers between
/// `after` and the output head run at half resolution (discarding 75%
/// of the neurons in those layers, the paper's "special case of m").
///
/// The pool is inserted after the `after`-th intermediate position and
/// the upsample right before the head conv. Returns `None` when the
/// spec is too short to host the pair.
pub fn pooling(spec: &NetworkSpec, after: usize, average: bool) -> Option<NetworkSpec> {
    let conv_positions: Vec<usize> = spec
        .layers
        .iter()
        .enumerate()
        .filter_map(|(i, l)| matches!(l, LayerSpec::Conv2d { .. }).then_some(i))
        .collect();
    if conv_positions.len() < 2 {
        return None;
    }
    let head = *conv_positions.last().expect("non-empty");
    // Insert the pool after one of the non-head convs' activation.
    let insertable = &conv_positions[..conv_positions.len() - 1];
    let conv_at = insertable[after % insertable.len()];
    // Skip past the activation that follows the conv, if any.
    let mut pool_pos = conv_at + 1;
    if matches!(
        spec.layers.get(pool_pos),
        Some(LayerSpec::ReLU) | Some(LayerSpec::Sigmoid) | Some(LayerSpec::Tanh)
    ) {
        pool_pos += 1;
    }
    if pool_pos > head {
        return None;
    }
    let mut layers = spec.layers.clone();
    let pool = if average {
        LayerSpec::AvgPool { size: 2 }
    } else {
        LayerSpec::MaxPool { size: 2 }
    };
    layers.insert(pool_pos, pool);
    // The head moved one slot right; upsample goes right before it.
    layers.insert(head + 1, LayerSpec::Upsample { factor: 2 });
    let mut out = NetworkSpec::new(layers);
    fix_channels(&mut out, 2);
    Some(out)
}

/// Operation 4 — `dropout(G, L, p)`: inserts a dropout layer after the
/// `which`-th intermediate conv's activation.
pub fn dropout(spec: &NetworkSpec, which: usize, p: f64) -> Option<NetworkSpec> {
    assert!((0.0..1.0).contains(&p), "p in [0, 1)");
    let conv_positions: Vec<usize> = spec
        .layers
        .iter()
        .enumerate()
        .filter_map(|(i, l)| matches!(l, LayerSpec::Conv2d { .. }).then_some(i))
        .collect();
    if conv_positions.len() < 2 {
        return None;
    }
    let insertable = &conv_positions[..conv_positions.len() - 1];
    let conv_at = insertable[which % insertable.len()];
    let mut pos = conv_at + 1;
    if matches!(
        spec.layers.get(pos),
        Some(LayerSpec::ReLU) | Some(LayerSpec::Sigmoid) | Some(LayerSpec::Tanh)
    ) {
        pos += 1;
    }
    let mut layers = spec.layers.clone();
    layers.insert(pos, LayerSpec::Dropout { p });
    let mut out = NetworkSpec::new(layers);
    fix_channels(&mut out, 2);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfn_nn::flops::spec_flops;
    use sfn_surrogate::tompson_spec;

    const IN: (usize, usize, usize) = (2, 32, 32);

    fn assert_valid_surrogate(spec: &NetworkSpec) {
        let out = spec.output_shape(IN).expect("spec must validate");
        assert_eq!(out, (1, 32, 32), "surrogate must preserve grid shape");
    }

    #[test]
    fn shallow_removes_one_conv() {
        let base = tompson_spec(8);
        let base_convs = base
            .layers
            .iter()
            .filter(|l| matches!(l, LayerSpec::Conv2d { .. }))
            .count();
        for which in 0..5 {
            let s = shallow(&base, which).expect("shallow variant");
            let convs = s
                .layers
                .iter()
                .filter(|l| matches!(l, LayerSpec::Conv2d { .. }))
                .count();
            assert_eq!(convs, base_convs - 1);
            assert_valid_surrogate(&s);
            assert!(
                spec_flops(&s, IN).unwrap() < spec_flops(&base, IN).unwrap(),
                "shallow must reduce cost"
            );
        }
    }

    #[test]
    fn narrow_reduces_channels_and_cost() {
        let base = tompson_spec(16);
        for which in 0..5 {
            let s = narrow(&base, which, 0.1).expect("narrow variant");
            assert_valid_surrogate(&s);
            assert!(spec_flops(&s, IN).unwrap() < spec_flops(&base, IN).unwrap());
        }
    }

    #[test]
    fn narrow_never_below_two_channels() {
        let mut spec = tompson_spec(8);
        for _ in 0..20 {
            spec = narrow(&spec, 1, 0.5).expect("narrow");
            assert_valid_surrogate(&spec);
        }
        for l in &spec.layers {
            if let LayerSpec::Conv2d { out_ch, .. } = l {
                assert!(*out_ch >= 1);
            }
        }
    }

    #[test]
    fn pooling_halves_interior_resolution() {
        let base = tompson_spec(8);
        let s = pooling(&base, 0, false).expect("pooling variant");
        assert_valid_surrogate(&s);
        assert!(
            spec_flops(&s, IN).unwrap() < spec_flops(&base, IN).unwrap() / 2,
            "pooling should cut cost by more than half"
        );
        // Pool and upsample appear exactly once each, in order.
        let pool_idx = s
            .layers
            .iter()
            .position(|l| matches!(l, LayerSpec::MaxPool { .. }))
            .expect("has pool");
        let up_idx = s
            .layers
            .iter()
            .position(|l| matches!(l, LayerSpec::Upsample { .. }))
            .expect("has upsample");
        assert!(pool_idx < up_idx);
    }

    #[test]
    fn pooling_average_variant() {
        let base = tompson_spec(8);
        let s = pooling(&base, 1, true).expect("avg pooling variant");
        assert!(s
            .layers
            .iter()
            .any(|l| matches!(l, LayerSpec::AvgPool { .. })));
        assert_valid_surrogate(&s);
    }

    #[test]
    fn dropout_inserts_layer_without_shape_change() {
        let base = tompson_spec(8);
        let s = dropout(&base, 2, 0.1).expect("dropout variant");
        assert_valid_surrogate(&s);
        assert_eq!(s.layers.len(), base.layers.len() + 1);
        assert!(s.layers.iter().any(|l| matches!(l, LayerSpec::Dropout { p } if (*p - 0.1).abs() < 1e-12)));
    }

    #[test]
    fn transforms_compose() {
        // shallow ∘ narrow ∘ pooling ∘ dropout stays a valid surrogate.
        let base = tompson_spec(16);
        let s = shallow(&base, 1).unwrap();
        let s = narrow(&s, 0, 0.1).unwrap();
        let s = pooling(&s, 1, false).unwrap();
        let s = dropout(&s, 0, 0.1).unwrap();
        assert_valid_surrogate(&s);
    }

    #[test]
    fn fix_channels_clears_invalid_residuals() {
        let mut spec = NetworkSpec::new(vec![
            LayerSpec::Conv2d { in_ch: 2, out_ch: 8, kernel: 3, residual: false },
            LayerSpec::Conv2d { in_ch: 8, out_ch: 8, kernel: 3, residual: true },
            LayerSpec::Conv2d { in_ch: 8, out_ch: 1, kernel: 3, residual: false },
        ]);
        // Narrow the first conv by hand, breaking the residual's match.
        if let LayerSpec::Conv2d { out_ch, .. } = &mut spec.layers[0] {
            *out_ch = 4;
        }
        fix_channels(&mut spec, 2);
        assert!(spec.validate((2, 16, 16)).is_ok());
        if let LayerSpec::Conv2d { in_ch, residual, .. } = spec.layers[1] {
            assert_eq!(in_ch, 4);
            assert!(!residual, "mismatched residual must be cleared");
        } else {
            panic!("expected conv");
        }
    }

    #[test]
    fn too_small_specs_return_none() {
        let tiny = NetworkSpec::new(vec![LayerSpec::Conv2d {
            in_ch: 2,
            out_ch: 1,
            kernel: 3,
            residual: false,
        }]);
        assert!(shallow(&tiny, 0).is_none());
        assert!(narrow(&tiny, 0, 0.1).is_none());
        assert!(pooling(&tiny, 0, false).is_none());
        assert!(dropout(&tiny, 0, 0.1).is_none());
    }
}
