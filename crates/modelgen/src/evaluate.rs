//! Measuring generated models: (time cost, quality loss) per model —
//! the data behind Figure 3's scatter plot.
//!
//! Quality loss is Eq. 3 (mean absolute smoke-density difference
//! against the PCG reference run); time cost is the measured wall time
//! of the model's pressure inferences over a full simulation, which is
//! how the paper collects "the quality loss and execution time for
//! each model … during the model construction".

use crate::family::GeneratedModel;
use sfn_grid::Field2;
use sfn_nn::network::SavedModel;
use sfn_nn::Network;
use sfn_sim::{quality_loss, ExactProjector, PressureProjector};
use sfn_solver::{MicPreconditioner, PcgSolver};
use sfn_surrogate::{train_network, NeuralProjector, ProjectionDataset, TrainConfig};
use sfn_workload::{InputProblem, ProblemSet};

/// One model's measured behaviour.
#[derive(Debug, Clone)]
pub struct ModelMeasurement {
    /// Family index of the model.
    pub id: usize,
    /// Family name (`M<id>`).
    pub name: String,
    /// Mean projection wall time per simulation (seconds).
    pub time_cost: f64,
    /// Mean quality loss (Eq. 3) against the PCG reference.
    pub quality_loss: f64,
    /// Analytic FLOPs per projection at the evaluation grid size.
    pub flops_per_step: u64,
    /// Trained weights.
    pub saved: SavedModel,
    /// Per-problem `(quality loss, projection seconds)` — the §5.1
    /// execution records.
    pub per_problem: Vec<(f64, f64)>,
}

impl sfn_obs::json::ToJson for ModelMeasurement {
    fn to_json_value(&self) -> sfn_obs::json::Value {
        sfn_obs::json::obj([
            ("id", self.id.to_json_value()),
            ("name", self.name.to_json_value()),
            ("time_cost", self.time_cost.to_json_value()),
            ("quality_loss", self.quality_loss.to_json_value()),
            ("flops_per_step", self.flops_per_step.to_json_value()),
            ("saved", self.saved.to_json_value()),
            ("per_problem", self.per_problem.to_json_value()),
        ])
    }
}

impl sfn_obs::json::FromJson for ModelMeasurement {
    fn from_json_value(
        v: &sfn_obs::json::Value,
    ) -> Result<Self, sfn_obs::json::JsonError> {
        Ok(ModelMeasurement {
            id: v.field("id")?,
            name: v.field("name")?,
            time_cost: v.field("time_cost")?,
            quality_loss: v.field("quality_loss")?,
            flops_per_step: v.field("flops_per_step")?,
            saved: v.field("saved")?,
            per_problem: v.field("per_problem")?,
        })
    }
}

/// Shared evaluation state: problems plus their PCG reference runs.
pub struct EvalContext {
    problems: Vec<InputProblem>,
    reference_densities: Vec<Field2>,
    reference_times: Vec<f64>,
    /// Time steps per simulation.
    pub steps: usize,
}

impl EvalContext {
    /// Runs the PCG reference simulation for every problem in `set`.
    pub fn new(set: &ProblemSet, steps: usize) -> Self {
        let problems: Vec<InputProblem> = set.iter().collect();
        let reference: Vec<(Field2, f64)> = sfn_par::map(&problems, |p| {
                let mut sim = p.simulation();
                let mut proj = ExactProjector::labelled(
                    PcgSolver::new(MicPreconditioner::default(), 1e-7, 100_000),
                    "pcg",
                );
                let stats = sim.run(steps, &mut proj);
                let secs: f64 = stats.iter().map(|s| s.projection_time.as_secs_f64()).sum();
                (sim.density().clone(), secs)
        });
        let (reference_densities, reference_times) = reference.into_iter().unzip();
        Self {
            problems,
            reference_densities,
            reference_times,
            steps,
        }
    }

    /// Mean PCG projection time per simulation — the `T′` fallback time
    /// of Eq. 8.
    pub fn reference_time_mean(&self) -> f64 {
        if self.reference_times.is_empty() {
            return 0.0;
        }
        self.reference_times.iter().sum::<f64>() / self.reference_times.len() as f64
    }

    /// PCG projection seconds of problem `i`'s reference run.
    pub fn reference_time(&self, i: usize) -> f64 {
        self.reference_times[i]
    }

    /// Number of evaluation problems.
    pub fn len(&self) -> usize {
        self.problems.len()
    }

    /// True when the context holds no problems.
    pub fn is_empty(&self) -> bool {
        self.problems.is_empty()
    }

    /// The evaluation problems.
    pub fn problems(&self) -> &[InputProblem] {
        &self.problems
    }

    /// Reference (PCG) final density of problem `i`.
    pub fn reference_density(&self, i: usize) -> &Field2 {
        &self.reference_densities[i]
    }

    /// Runs `projector` on every problem; returns per-problem
    /// `(quality loss, projection seconds)`.
    pub fn run_projector(
        &self,
        mut make_projector: impl FnMut() -> Box<dyn PressureProjector>,
    ) -> Vec<(f64, f64)> {
        self.problems
            .iter()
            .zip(&self.reference_densities)
            .map(|(p, reference)| {
                let mut sim = p.simulation();
                let mut proj = make_projector();
                let stats = sim.run(self.steps, proj.as_mut());
                let secs: f64 = stats.iter().map(|s| s.projection_time.as_secs_f64()).sum();
                let q = if sim.is_healthy() {
                    quality_loss(sim.density(), reference)
                } else {
                    // A diverged simulation is maximally wrong.
                    f64::INFINITY
                };
                (q, secs)
            })
            .collect()
    }

    /// Measures one trained network.
    pub fn measure(&self, model: &GeneratedModel, mut network: Network) -> ModelMeasurement {
        assert!(!self.is_empty(), "evaluation context has no problems");
        let grid = self.problems[0].config.nx;
        let flops_per_step = network.flops((2, grid, grid));
        let saved = network.save();
        let results = self.run_projector(|| {
            let net = Network::load(&saved, 0).expect("reloading own snapshot");
            Box::new(NeuralProjector::new(net, model.name.clone()))
        });
        let n = results.len() as f64;
        let quality = results.iter().map(|r| r.0).sum::<f64>() / n;
        let time = results.iter().map(|r| r.1).sum::<f64>() / n;
        ModelMeasurement {
            id: model.id,
            name: model.name.clone(),
            time_cost: time,
            quality_loss: quality,
            flops_per_step,
            saved,
            per_problem: results,
        }
    }
}

/// Trains every family member on `dataset` and measures it on `ctx`.
/// Models are processed in parallel, each from a fresh initialisation.
pub fn train_and_measure_family(
    family: &[GeneratedModel],
    dataset: &ProjectionDataset,
    ctx: &EvalContext,
    train_cfg: &TrainConfig,
) -> Vec<ModelMeasurement> {
    sfn_par::map(family, |model| {
            let cfg = TrainConfig {
                seed: train_cfg.seed.wrapping_add(model.id as u64),
                ..*train_cfg
            };
            let mut net = Network::from_spec(&model.spec, cfg.seed).expect("valid family spec");
            sfn_surrogate::damp_output_layer(&mut net, 0.02);
            train_network(&mut net, dataset, &cfg);
        ctx.measure(model, net)
    })
}

/// Like [`train_and_measure_family`], but children are *warm-started*
/// from their trained parents (network morphism, the Auto-Keras way)
/// and fine-tuned with `child_epochs` instead of the full budget.
/// Roots (base / search models) get the full budget from scratch.
///
/// Training proceeds in dependency waves: a model trains only after its
/// parent's weights exist; each wave runs in parallel.
pub fn train_and_measure_family_inherited(
    family: &[GeneratedModel],
    dataset: &ProjectionDataset,
    ctx: &EvalContext,
    train_cfg: &TrainConfig,
    child_epochs: usize,
) -> Vec<ModelMeasurement> {
    use crate::family::Origin;
    use crate::inherit::inherit_weights;
    use std::collections::HashMap;

    let parent_of = |m: &GeneratedModel| -> Option<usize> {
        match m.origin {
            Origin::Base | Origin::Search => None,
            Origin::Shallow { .. } => Some(0),
            Origin::Narrow { parent, .. }
            | Origin::Pooling { parent, .. }
            | Origin::Dropout { parent, .. } => Some(parent),
        }
    };

    let mut measurements: HashMap<usize, ModelMeasurement> = HashMap::new();
    loop {
        // Next wave: untrained models whose parent (if any) is trained.
        let wave: Vec<&GeneratedModel> = family
            .iter()
            .filter(|m| !measurements.contains_key(&m.id))
            .filter(|m| parent_of(m).is_none_or(|p| measurements.contains_key(&p)))
            .collect();
        if wave.is_empty() {
            break;
        }
        let results: Vec<ModelMeasurement> =
            sfn_par::map(&wave, |model| {
                let seed = train_cfg.seed.wrapping_add(model.id as u64);
                let (mut net, epochs) = match parent_of(model) {
                    Some(p) => (
                        inherit_weights(&measurements[&p].saved, &model.spec, seed),
                        child_epochs.max(1),
                    ),
                    None => {
                        let mut net =
                            Network::from_spec(&model.spec, seed).expect("valid family spec");
                        sfn_surrogate::damp_output_layer(&mut net, 0.02);
                        (net, train_cfg.epochs)
                    }
                };
                let cfg = TrainConfig {
                    seed,
                    epochs,
                    ..*train_cfg
                };
                train_network(&mut net, dataset, &cfg);
                ctx.measure(model, net)
            });
        for m in results {
            measurements.insert(m.id, m);
        }
    }
    let mut out: Vec<ModelMeasurement> = family
        .iter()
        .map(|m| measurements.remove(&m.id).expect("trained"))
        .collect();
    out.sort_by_key(|m| m.id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::Origin;
    use sfn_surrogate::{tompson_spec, yang_spec};

    fn tiny_ctx() -> EvalContext {
        EvalContext::new(&ProblemSet::evaluation(16, 2), 6)
    }

    fn tiny_dataset() -> ProjectionDataset {
        ProjectionDataset::generate(&ProblemSet::training(16, 2), 6, 2)
    }

    fn model(id: usize, spec: sfn_nn::NetworkSpec) -> GeneratedModel {
        GeneratedModel {
            id,
            name: format!("M{id}"),
            origin: Origin::Base,
            spec,
        }
    }

    #[test]
    fn exact_projection_scores_zero_quality_loss() {
        let ctx = tiny_ctx();
        let results = ctx.run_projector(|| {
            Box::new(ExactProjector::labelled(
                PcgSolver::new(MicPreconditioner::default(), 1e-7, 100_000),
                "pcg",
            ))
        });
        for (q, _) in results {
            assert!(q < 1e-9, "PCG vs PCG quality loss {q}");
        }
    }

    #[test]
    fn trained_model_measures_finite_quality() {
        let ctx = tiny_ctx();
        let ds = tiny_dataset();
        let m = model(0, yang_spec(4));
        let out = train_and_measure_family(
            &[m],
            &ds,
            &ctx,
            &TrainConfig {
                epochs: 60,
                ..Default::default()
            },
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].quality_loss.is_finite());
        assert!(out[0].quality_loss > 0.0);
        assert!(out[0].time_cost > 0.0);
        assert!(out[0].flops_per_step > 0);
    }

    #[test]
    fn inherited_training_measures_whole_family() {
        use crate::family::{generate_family, FamilyConfig};
        use crate::search::SearchConfig;
        let ctx = tiny_ctx();
        let ds = tiny_dataset();
        let cfg = FamilyConfig {
            shallow_variants: 1,
            narrow_per_model: 1,
            dropout_variants: 1,
            search_models: 0,
            ..FamilyConfig::reduced()
        };
        let family = generate_family(&tompson_spec(8), &ds, &SearchConfig::fast(), &cfg);
        let out = train_and_measure_family_inherited(
            &family,
            &ds,
            &ctx,
            &TrainConfig {
                epochs: 20,
                ..Default::default()
            },
            5,
        );
        assert_eq!(out.len(), family.len());
        for (i, m) in out.iter().enumerate() {
            assert_eq!(m.id, i, "order preserved");
            assert!(m.quality_loss.is_finite(), "{} diverged", m.name);
        }
    }

    #[test]
    fn cheaper_model_reports_fewer_flops() {
        let ctx = tiny_ctx();
        let ds = tiny_dataset();
        let family = vec![model(0, tompson_spec(8)), model(1, yang_spec(4))];
        let out = train_and_measure_family(
            &family,
            &ds,
            &ctx,
            &TrainConfig {
                epochs: 4,
                ..Default::default()
            },
        );
        assert!(out[1].flops_per_step < out[0].flops_per_step);
    }
}
