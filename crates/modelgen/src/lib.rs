//! Approximate-model construction (§4 of the paper).
//!
//! Given an input neural network (the Tompson-style base model), this
//! crate generates the paper's 133-model family:
//!
//! 1. five *shallow* variants (Operation 1: delete a layer);
//! 2. ten *narrow* variants of each (Operation 2: remove `|L|/10`
//!    neurons) — 55 models;
//! 3. a *pooling* variant of each (Operation 3) — 110 models;
//! 4. eighteen *dropout* variants (Operation 4) — 128 models;
//! 5. plus five accurate models from the Auto-Keras-substitute
//!    architecture search — 133 models.
//!
//! Each generated model is trained on the shared projection dataset,
//! its (time cost, quality loss) is measured, and the Pareto-optimal
//! subset becomes the "model candidates" handed to the §5 MLP.

#![warn(missing_docs)]

pub mod evaluate;
pub mod family;
pub mod inherit;
pub mod pareto;
pub mod search;
pub mod transform;

pub use evaluate::{EvalContext, ModelMeasurement};
pub use family::{generate_family, FamilyConfig, GeneratedModel, Origin};
pub use pareto::select_candidates;
pub use search::{architecture_search, SearchConfig};
