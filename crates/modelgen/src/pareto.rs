//! Pareto-optimal candidate selection (§4, Figure 3).
//!
//! "We select models that have the lowest time cost, the lowest
//! quality loss, or both" — the Pareto front of the measured
//! (time, loss) scatter. The selected models are the paper's 14
//! "model candidates" passed to the §5 MLP.

use crate::evaluate::ModelMeasurement;
use sfn_stats::{pareto_front, ParetoPoint};

/// Returns the indices (into `measurements`) of the Pareto-optimal
/// models, ordered from fastest to slowest. Models whose simulation
/// diverged (infinite quality loss) never qualify.
pub fn select_candidates(measurements: &[ModelMeasurement]) -> Vec<usize> {
    let points: Vec<ParetoPoint> = measurements
        .iter()
        .enumerate()
        .map(|(idx, m)| ParetoPoint {
            id: idx,
            time: m.time_cost,
            loss: m.quality_loss,
        })
        .collect();
    pareto_front(&points).into_iter().map(|p| p.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfn_nn::network::SavedModel;
    use sfn_nn::NetworkSpec;

    fn m(id: usize, time: f64, loss: f64) -> ModelMeasurement {
        ModelMeasurement {
            id,
            name: format!("M{id}"),
            time_cost: time,
            quality_loss: loss,
            flops_per_step: 1,
            saved: SavedModel {
                spec: NetworkSpec::default(),
                weights: vec![],
            },
            per_problem: vec![],
        }
    }

    #[test]
    fn keeps_only_non_dominated_models() {
        let ms = vec![
            m(0, 1.0, 0.03), // fastest
            m(1, 2.0, 0.02),
            m(2, 3.0, 0.01), // most accurate
            m(3, 2.5, 0.025), // dominated by 1
            m(4, 4.0, 0.02), // dominated by 1 and 2
        ];
        assert_eq!(select_candidates(&ms), vec![0, 1, 2]);
    }

    #[test]
    fn diverged_models_never_selected() {
        let ms = vec![m(0, 0.5, f64::INFINITY), m(1, 1.0, 0.02)];
        assert_eq!(select_candidates(&ms), vec![1]);
    }

    #[test]
    fn front_ordered_by_time() {
        let ms = vec![m(0, 3.0, 0.01), m(1, 1.0, 0.05), m(2, 2.0, 0.02)];
        let sel = select_candidates(&ms);
        assert_eq!(sel, vec![1, 2, 0]);
    }
}
