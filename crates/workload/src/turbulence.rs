//! Pseudo-random turbulent initial velocity fields.
//!
//! A stream function `ψ(x, y) = Σ_m a_m sin(k_m·x + φ_m)` built from
//! random Fourier modes is differentiated analytically to produce the
//! velocity `u = ∂ψ/∂y, v = −∂ψ/∂x`, which is divergence-free in the
//! continuum. Sampling `ψ`'s derivatives directly on the staggered
//! faces gives a discretely *almost* divergence-free field with a
//! multi-scale spectrum — our substitute for wavelet turbulence
//! [Kim et al. 2008].

use sfn_grid::MacGrid;
use sfn_obs::json::{obj, FromJson, JsonError, ToJson, Value};
use sfn_rng::rngs::StdRng;
use sfn_rng::{RngExt, SeedableRng};

/// Parameters of the random turbulence spectrum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TurbulenceSpec {
    /// Number of random Fourier modes.
    pub modes: usize,
    /// Smallest wavelength in cells (highest spatial frequency).
    pub min_wavelength: f64,
    /// Largest wavelength in cells (lowest spatial frequency).
    pub max_wavelength: f64,
    /// RMS velocity target (grid units per time unit).
    pub rms_velocity: f64,
}

impl Default for TurbulenceSpec {
    fn default() -> Self {
        Self {
            modes: 24,
            min_wavelength: 4.0,
            max_wavelength: 64.0,
            rms_velocity: 1.0,
        }
    }
}

struct Mode {
    kx: f64,
    ky: f64,
    amp: f64,
    phase: f64,
}

impl ToJson for TurbulenceSpec {
    fn to_json_value(&self) -> Value {
        obj([
            ("modes", self.modes.to_json_value()),
            ("min_wavelength", self.min_wavelength.to_json_value()),
            ("max_wavelength", self.max_wavelength.to_json_value()),
            ("rms_velocity", self.rms_velocity.to_json_value()),
        ])
    }
}

impl FromJson for TurbulenceSpec {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        Ok(TurbulenceSpec {
            modes: v.field("modes")?,
            min_wavelength: v.field("min_wavelength")?,
            max_wavelength: v.field("max_wavelength")?,
            rms_velocity: v.field("rms_velocity")?,
        })
    }
}

impl TurbulenceSpec {
    fn sample_modes(&self, rng: &mut StdRng) -> Vec<Mode> {
        assert!(self.modes > 0, "need at least one mode");
        assert!(
            self.min_wavelength > 0.0 && self.max_wavelength >= self.min_wavelength,
            "bad wavelength range"
        );
        (0..self.modes)
            .map(|_| {
                // Log-uniform wavelength, Kolmogorov-ish amplitude decay
                // with wavenumber: a ∝ k^{-5/6} gives E(k) ∝ k^{-5/3}.
                let lam = (self.min_wavelength.ln()
                    + rng.random_range(0.0..1.0f64) * (self.max_wavelength / self.min_wavelength).ln())
                .exp();
                let k = 2.0 * std::f64::consts::PI / lam;
                let theta = rng.random_range(0.0..std::f64::consts::TAU);
                Mode {
                    kx: k * theta.cos(),
                    ky: k * theta.sin(),
                    amp: k.powf(-5.0 / 6.0),
                    phase: rng.random_range(0.0..std::f64::consts::TAU),
                }
            })
            .collect()
    }

    /// Generates the turbulent velocity field for an `nx × ny` grid.
    ///
    /// The result is deterministic in `seed`, has (approximately) the
    /// requested RMS speed, and is discretely near-divergence-free.
    pub fn generate(&self, nx: usize, ny: usize, seed: u64) -> MacGrid {
        let mut rng = StdRng::seed_from_u64(seed);
        let modes = self.sample_modes(&mut rng);
        let mut vel = MacGrid::new(nx, ny, 1.0);
        // u = ∂ψ/∂y sampled at u-face positions (i, j+0.5).
        for j in 0..ny {
            for i in 0..=nx {
                let (x, y) = (i as f64, j as f64 + 0.5);
                let mut u = 0.0;
                for m in &modes {
                    u += m.amp * m.ky * (m.kx * x + m.ky * y + m.phase).cos();
                }
                vel.u.set(i, j, u);
            }
        }
        // v = −∂ψ/∂x sampled at v-face positions (i+0.5, j).
        for j in 0..=ny {
            for i in 0..nx {
                let (x, y) = (i as f64 + 0.5, j as f64);
                let mut v = 0.0;
                for m in &modes {
                    v -= m.amp * m.kx * (m.kx * x + m.ky * y + m.phase).cos();
                }
                vel.v.set(i, j, v);
            }
        }
        // Normalise to the requested RMS speed.
        let mut sum_sq = 0.0;
        let mut count = 0usize;
        for &u in vel.u.data() {
            sum_sq += u * u;
            count += 1;
        }
        for &v in vel.v.data() {
            sum_sq += v * v;
            count += 1;
        }
        let rms = (sum_sq / count as f64).sqrt();
        if rms > 0.0 {
            let s = self.rms_velocity / rms;
            vel.u.scale(s);
            vel.v.scale(s);
        }
        vel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfn_grid::CellFlags;

    #[test]
    fn deterministic_in_seed() {
        let spec = TurbulenceSpec::default();
        let a = spec.generate(32, 32, 9);
        let b = spec.generate(32, 32, 9);
        assert_eq!(a, b);
        let c = spec.generate(32, 32, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn rms_speed_matches_target() {
        let spec = TurbulenceSpec {
            rms_velocity: 2.5,
            ..Default::default()
        };
        let vel = spec.generate(48, 48, 3);
        let mut sum_sq = 0.0;
        let mut n = 0usize;
        for &u in vel.u.data() {
            sum_sq += u * u;
            n += 1;
        }
        for &v in vel.v.data() {
            sum_sq += v * v;
            n += 1;
        }
        let rms = (sum_sq / n as f64).sqrt();
        assert!((rms - 2.5).abs() < 1e-9, "rms {rms}");
    }

    #[test]
    fn field_is_nearly_divergence_free() {
        let spec = TurbulenceSpec::default();
        let vel = spec.generate(64, 64, 5);
        let flags = CellFlags::all_fluid(64, 64);
        let div = vel.divergence(&flags);
        // Discrete divergence of an analytic curl field is O(k²·dx²·|u|);
        // with min wavelength 4 cells it stays well under the RMS speed.
        let max_div = div.max_abs();
        assert!(max_div < 0.8, "max divergence {max_div}");
        let mean_abs: f64 =
            div.data().iter().map(|d| d.abs()).sum::<f64>() / div.data().len() as f64;
        assert!(mean_abs < 0.1, "mean |div| {mean_abs}");
    }

    #[test]
    fn different_seeds_decorrelate() {
        let spec = TurbulenceSpec::default();
        let a = spec.generate(32, 32, 1);
        let b = spec.generate(32, 32, 2);
        // Normalised inner product far from 1.
        let dot: f64 = a.u.data().iter().zip(b.u.data()).map(|(x, y)| x * y).sum();
        let na: f64 = a.u.data().iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = b.u.data().iter().map(|x| x * x).sum::<f64>().sqrt();
        let corr = (dot / (na * nb)).abs();
        assert!(corr < 0.5, "fields too correlated: {corr}");
    }

    #[test]
    fn contains_multiple_scales() {
        // Energy must not be concentrated in a single frequency: compare
        // coarse-grained and fine field energy.
        let spec = TurbulenceSpec::default();
        let vel = spec.generate(64, 64, 11);
        // Average u over 8x8 blocks: large-scale energy survives.
        let mut coarse_energy = 0.0;
        for bj in 0..8 {
            for bi in 0..8 {
                let mut s = 0.0;
                for j in 0..8 {
                    for i in 0..8 {
                        s += vel.u.at(bi * 8 + i, bj * 8 + j);
                    }
                }
                let mean = s / 64.0;
                coarse_energy += mean * mean;
            }
        }
        assert!(coarse_energy > 1e-4, "no large-scale energy: {coarse_energy}");
    }
}
