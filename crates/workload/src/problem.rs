//! Input problems and problem sets.
//!
//! The paper evaluates on 20,480 input problems per dataset (train and
//! evaluation, non-overlapping). An [`InputProblem`] bundles everything
//! one simulation run needs: configuration, geometry and the turbulent
//! initial velocity. A [`ProblemSet`] derives per-problem seeds from a
//! base seed so the train/eval split is disjoint by construction.

use crate::geometry::GeometrySpec;
use crate::turbulence::TurbulenceSpec;
use sfn_grid::{CellFlags, MacGrid};
use sfn_obs::json::{obj, FromJson, JsonError, ToJson, Value};
use sfn_sim::{SimConfig, Simulation};

/// One fluid-simulation input problem.
#[derive(Debug, Clone)]
pub struct InputProblem {
    /// Index within its problem set.
    pub id: usize,
    /// The seed every random component of this problem derives from.
    pub seed: u64,
    /// Simulation configuration.
    pub config: SimConfig,
    /// Occupancy geometry.
    pub flags: CellFlags,
    /// Turbulent initial velocity.
    pub initial_velocity: MacGrid,
}

impl InputProblem {
    /// Instantiates the simulation for this problem.
    pub fn simulation(&self) -> Simulation {
        Simulation::with_initial_velocity(
            self.config,
            self.flags.clone(),
            self.initial_velocity.clone(),
        )
    }
}

impl ToJson for InputProblem {
    fn to_json_value(&self) -> Value {
        obj([
            ("id", self.id.to_json_value()),
            ("seed", self.seed.to_json_value()),
            ("config", self.config.to_json_value()),
            ("flags", self.flags.to_json_value()),
            ("initial_velocity", self.initial_velocity.to_json_value()),
        ])
    }
}

impl FromJson for InputProblem {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        Ok(InputProblem {
            id: v.field("id")?,
            seed: v.field("seed")?,
            config: v.field("config")?,
            flags: v.field("flags")?,
            initial_velocity: v.field("initial_velocity")?,
        })
    }
}

impl ToJson for ProblemSet {
    fn to_json_value(&self) -> Value {
        obj([
            ("grid", self.grid.to_json_value()),
            ("count", self.count.to_json_value()),
            ("base_seed", self.base_seed.to_json_value()),
            ("turbulence", self.turbulence.to_json_value()),
            ("geometry", self.geometry.to_json_value()),
        ])
    }
}

impl FromJson for ProblemSet {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        Ok(ProblemSet {
            grid: v.field("grid")?,
            count: v.field("count")?,
            base_seed: v.field("base_seed")?,
            turbulence: v.field("turbulence")?,
            geometry: v.field("geometry")?,
        })
    }
}

/// Parameters for generating a family of problems.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProblemSet {
    /// Grid size (square grids, as in the paper's evaluation).
    pub grid: usize,
    /// Number of problems.
    pub count: usize,
    /// Base seed; problem `i` uses `base_seed + i` for geometry and a
    /// decorrelated stream for turbulence.
    pub base_seed: u64,
    /// Turbulence parameters.
    pub turbulence: TurbulenceSpec,
    /// Geometry parameters.
    pub geometry: GeometrySpec,
}

impl ProblemSet {
    /// An evaluation set with default physics at the given grid size.
    pub fn evaluation(grid: usize, count: usize) -> Self {
        Self {
            grid,
            count,
            base_seed: 0x5EED_0001,
            turbulence: TurbulenceSpec::default(),
            geometry: GeometrySpec::default(),
        }
    }

    /// A training set guaranteed not to overlap [`Self::evaluation`]
    /// (disjoint base-seed ranges).
    pub fn training(grid: usize, count: usize) -> Self {
        Self {
            grid,
            count,
            base_seed: 0xBEEF_8000_0000,
            turbulence: TurbulenceSpec::default(),
            geometry: GeometrySpec::default(),
        }
    }

    /// Generates problem `i` (0-based).
    ///
    /// # Panics
    /// Panics if `i >= count`.
    pub fn problem(&self, i: usize) -> InputProblem {
        assert!(i < self.count, "problem index {i} out of {}", self.count);
        let seed = self.base_seed.wrapping_add(i as u64);
        let config = SimConfig::plume(self.grid);
        let flags = self
            .geometry
            .generate(self.grid, self.grid, &config.source, seed);
        let initial_velocity =
            self.turbulence
                .generate(self.grid, self.grid, seed.wrapping_mul(0x9E3779B97F4A7C15));
        InputProblem {
            id: i,
            seed,
            config,
            flags,
            initial_velocity,
        }
    }

    /// Iterates over all problems.
    pub fn iter(&self) -> impl Iterator<Item = InputProblem> + '_ {
        (0..self.count).map(|i| self.problem(i))
    }

    /// Materialises every problem and writes the set to a JSON file —
    /// the exchange format for reproducing a run elsewhere (the
    /// deterministic seeds make this redundant on the same build, but
    /// pinned files survive generator changes).
    pub fn export(&self, path: &std::path::Path) -> std::io::Result<()> {
        let problems: Vec<InputProblem> = self.iter().collect();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let json = sfn_obs::json::to_json_string(&problems);
        std::fs::write(path, json)
    }

    /// Loads a pinned problem file written by [`ProblemSet::export`].
    pub fn import(path: &std::path::Path) -> std::io::Result<Vec<InputProblem>> {
        let text = std::fs::read_to_string(path)?;
        sfn_obs::json::from_json_str(&text)
            .map_err(|e| std::io::Error::other(format!("at byte {}: {}", e.at, e.message)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn problems_are_deterministic() {
        let set = ProblemSet::evaluation(32, 4);
        let a = set.problem(2);
        let b = set.problem(2);
        assert_eq!(a.flags, b.flags);
        assert_eq!(a.initial_velocity, b.initial_velocity);
    }

    #[test]
    fn problems_differ_from_each_other() {
        let set = ProblemSet::evaluation(32, 4);
        let a = set.problem(0);
        let b = set.problem(1);
        assert_ne!(a.initial_velocity, b.initial_velocity);
    }

    #[test]
    fn train_eval_disjoint_seeds() {
        let train = ProblemSet::training(32, 100);
        let eval = ProblemSet::evaluation(32, 100);
        for i in 0..100 {
            assert_ne!(train.problem(i).seed, eval.problem(i).seed);
        }
    }

    #[test]
    fn simulation_boots_from_problem() {
        let set = ProblemSet::evaluation(24, 1);
        let p = set.problem(0);
        let sim = p.simulation();
        assert!(sim.is_healthy());
        assert_eq!(sim.flags(), &p.flags);
        // Initial velocity must carry over (modulo solid-boundary
        // enforcement, which zeroes wall faces).
        let mut any_nonzero = false;
        for &u in sim.velocity().u.data() {
            any_nonzero |= u != 0.0;
        }
        assert!(any_nonzero, "initial turbulence lost");
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_problem_panics() {
        let set = ProblemSet::evaluation(16, 2);
        let _ = set.problem(2);
    }

    #[test]
    fn export_import_round_trip() {
        let set = ProblemSet::evaluation(16, 3);
        let path = std::env::temp_dir()
            .join("sfn-problem-io")
            .join("set.json");
        set.export(&path).unwrap();
        let back = ProblemSet::import(&path).unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in set.iter().zip(&back) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.flags, b.flags);
            assert_eq!(a.initial_velocity, b.initial_velocity);
        }
    }

    #[test]
    fn iter_yields_count_problems() {
        let set = ProblemSet::evaluation(16, 5);
        assert_eq!(set.iter().count(), 5);
        let ids: Vec<usize> = set.iter().map(|p| p.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
