//! Named simulation scenarios beyond the random evaluation problems —
//! classic smoke-simulation setups used by the examples and for
//! qualitative sanity checks of the surrogates.

use crate::problem::InputProblem;
use crate::turbulence::TurbulenceSpec;
use sfn_grid::{CellFlags, MacGrid};
use sfn_sim::SimConfig;

/// The available scenario presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// A clean rising plume, no obstacles, no initial turbulence.
    RisingPlume,
    /// A plume hitting a disc obstacle above the inlet (Kármán-style
    /// shedding at sufficient resolution).
    PlumeOverDisc,
    /// Two side inlets colliding in the centre.
    CollidingPlumes,
    /// A plume threading a narrow slot between two plates.
    SlottedWall,
    /// A turbulent box: strong initial curl-noise, centred source.
    TurbulentBox,
}

impl Scenario {
    /// All presets.
    pub const ALL: [Scenario; 5] = [
        Scenario::RisingPlume,
        Scenario::PlumeOverDisc,
        Scenario::CollidingPlumes,
        Scenario::SlottedWall,
        Scenario::TurbulentBox,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::RisingPlume => "rising-plume",
            Scenario::PlumeOverDisc => "plume-over-disc",
            Scenario::CollidingPlumes => "colliding-plumes",
            Scenario::SlottedWall => "slotted-wall",
            Scenario::TurbulentBox => "turbulent-box",
        }
    }

    /// Builds the scenario at grid size `n` (square). `seed` only
    /// affects scenarios with random components.
    pub fn build(self, n: usize, seed: u64) -> InputProblem {
        assert!(n >= 16, "scenario grids start at 16");
        let nf = n as f64;
        let mut config = SimConfig::plume(n);
        let mut flags = CellFlags::smoke_box(n, n);
        let mut initial_velocity = MacGrid::new(n, n, config.dx);
        match self {
            Scenario::RisingPlume => {}
            Scenario::PlumeOverDisc => {
                flags.add_solid_disc(nf * 0.5, nf * 0.55, nf * 0.08);
            }
            Scenario::CollidingPlumes => {
                // Two low inlets near the side walls; buoyancy carries
                // both plumes up and inward.
                config.source.x0 = nf * 0.08;
                config.source.x1 = nf * 0.22;
                config.source.y0 = nf * 0.05;
                config.source.y1 = nf * 0.12;
                // Mirror obstacle-free; the second inlet is emulated by
                // an initial upward jet on the right.
                for j in 0..(n / 6) {
                    for i in (n * 3 / 4)..(n - 2) {
                        initial_velocity.v.set(i, j, 1.5);
                    }
                }
            }
            Scenario::SlottedWall => {
                let y0 = nf * 0.5;
                let y1 = nf * 0.56;
                flags.add_solid_box(1.0, y0, nf * 0.42, y1);
                flags.add_solid_box(nf * 0.58, y0, nf - 1.0, y1);
            }
            Scenario::TurbulentBox => {
                let spec = TurbulenceSpec {
                    rms_velocity: 1.5,
                    ..Default::default()
                };
                initial_velocity = spec.generate(n, n, seed);
                config.source.x0 = nf * 0.4;
                config.source.x1 = nf * 0.6;
            }
        }
        InputProblem {
            id: 0,
            seed,
            config,
            flags,
            initial_velocity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfn_sim::ExactProjector;
    use sfn_solver::{MicPreconditioner, PcgSolver};

    fn run(scenario: Scenario) -> sfn_sim::Simulation {
        let p = scenario.build(24, 7);
        let mut sim = p.simulation();
        let mut proj = ExactProjector::labelled(
            PcgSolver::new(MicPreconditioner::default(), 1e-6, 100_000),
            "pcg",
        );
        sim.run(12, &mut proj);
        sim
    }

    #[test]
    fn every_scenario_runs_stably() {
        for s in Scenario::ALL {
            let sim = run(s);
            assert!(sim.is_healthy(), "{} produced non-finite state", s.name());
            assert!(sim.density().sum() > 0.0, "{} emitted no smoke", s.name());
        }
    }

    #[test]
    fn slotted_wall_blocks_midline() {
        let p = Scenario::SlottedWall.build(32, 0);
        // The wall row must contain both solid and fluid (the slot).
        let j = 17; // inside [0.5, 0.56] * 32
        let solids = (0..32).filter(|&i| p.flags.is_solid(i, j)).count();
        assert!(solids > 16, "wall missing: {solids} solid cells");
        assert!(solids < 32, "slot missing");
    }

    #[test]
    fn turbulent_box_depends_on_seed() {
        let a = Scenario::TurbulentBox.build(24, 1);
        let b = Scenario::TurbulentBox.build(24, 2);
        assert_ne!(a.initial_velocity, b.initial_velocity);
    }

    #[test]
    fn source_stays_inside_domain() {
        for s in Scenario::ALL {
            let p = s.build(48, 3);
            let src = p.config.source;
            assert!(src.x0 >= 0.0 && src.x1 <= 48.0, "{}", s.name());
            assert!(src.y0 >= 0.0 && src.y1 <= 48.0, "{}", s.name());
        }
    }
}
