//! Random occupancy geometry — the NTU-3D-dataset substitute.
//!
//! Each problem places a few random solid primitives (discs, boxes,
//! capsules) inside a smoke box with border walls, keeping the smoke
//! inlet and its immediate exhaust corridor clear so every problem can
//! actually develop a plume.

use sfn_grid::CellFlags;
use sfn_obs::json::{obj, FromJson, JsonError, ToJson, Value};
use sfn_rng::rngs::StdRng;
use sfn_rng::{RngExt, SeedableRng};
use sfn_sim::SmokeSource;

/// Parameters for random geometry placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometrySpec {
    /// Maximum number of obstacles (the actual count is random in
    /// `0..=max_objects`).
    pub max_objects: usize,
    /// Smallest obstacle radius as a fraction of the grid size.
    pub min_radius_frac: f64,
    /// Largest obstacle radius as a fraction of the grid size.
    pub max_radius_frac: f64,
}

impl Default for GeometrySpec {
    fn default() -> Self {
        Self {
            max_objects: 3,
            min_radius_frac: 0.04,
            max_radius_frac: 0.12,
        }
    }
}

impl ToJson for GeometrySpec {
    fn to_json_value(&self) -> Value {
        obj([
            ("max_objects", self.max_objects.to_json_value()),
            ("min_radius_frac", self.min_radius_frac.to_json_value()),
            ("max_radius_frac", self.max_radius_frac.to_json_value()),
        ])
    }
}

impl FromJson for GeometrySpec {
    fn from_json_value(v: &Value) -> Result<Self, JsonError> {
        Ok(GeometrySpec {
            max_objects: v.field("max_objects")?,
            min_radius_frac: v.field("min_radius_frac")?,
            max_radius_frac: v.field("max_radius_frac")?,
        })
    }
}

impl GeometrySpec {
    /// Generates a random occupancy grid for an `nx × ny` smoke box,
    /// never blocking the given source's inlet region.
    pub fn generate(&self, nx: usize, ny: usize, source: &SmokeSource, seed: u64) -> CellFlags {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut flags = CellFlags::smoke_box(nx, ny);
        let n_objects = rng.random_range(0..=self.max_objects);
        let nf = nx.min(ny) as f64;
        // Keep the inlet and a corridor above it clear.
        let clear_x0 = source.x0 - 2.0;
        let clear_x1 = source.x1 + 2.0;
        let clear_y0 = source.y0 - 2.0;
        let clear_y1 = source.y1 + nf * 0.15;
        let mut placed = 0usize;
        let mut attempts = 0usize;
        while placed < n_objects && attempts < 50 {
            attempts += 1;
            let r = nf * rng.random_range(self.min_radius_frac..self.max_radius_frac);
            let cx = rng.random_range(r + 1.5..nx as f64 - r - 1.5);
            let cy = rng.random_range(ny as f64 * 0.25..ny as f64 - r - 2.0);
            // Reject obstacles overlapping the protected corridor.
            if cx + r > clear_x0 && cx - r < clear_x1 && cy + r > clear_y0 && cy - r < clear_y1 {
                continue;
            }
            match rng.random_range(0..3u32) {
                0 => flags.add_solid_disc(cx, cy, r),
                1 => flags.add_solid_box(cx - r, cy - r * 0.6, cx + r, cy + r * 0.6),
                _ => {
                    let angle: f64 = rng.random_range(0.0..std::f64::consts::PI);
                    let (dx, dy) = (angle.cos() * r, angle.sin() * r);
                    flags.add_solid_capsule(cx - dx, cy - dy, cx + dx, cy + dy, r * 0.35);
                }
            }
            placed += 1;
        }
        flags
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let spec = GeometrySpec::default();
        let src = SmokeSource::plume_inlet(64, 64);
        assert_eq!(spec.generate(64, 64, &src, 4), spec.generate(64, 64, &src, 4));
    }

    #[test]
    fn inlet_never_blocked() {
        let spec = GeometrySpec {
            max_objects: 6,
            ..Default::default()
        };
        for n in [32usize, 64] {
            let src = SmokeSource::plume_inlet(n, n);
            for seed in 0..40 {
                let flags = spec.generate(n, n, &src, seed);
                for j in 0..n {
                    for i in 0..n {
                        if src.contains(i, j) {
                            assert!(
                                flags.is_fluid(i, j),
                                "seed {seed}: inlet cell ({i},{j}) blocked"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn border_wall_always_present() {
        let spec = GeometrySpec::default();
        let src = SmokeSource::plume_inlet(32, 32);
        let flags = spec.generate(32, 32, &src, 7);
        for j in 0..32 {
            assert!(flags.is_solid(0, j));
            assert!(flags.is_solid(31, j));
        }
        for i in 0..32 {
            assert!(flags.is_solid(i, 0));
        }
    }

    #[test]
    fn some_seeds_place_obstacles() {
        let spec = GeometrySpec::default();
        let src = SmokeSource::plume_inlet(64, 64);
        let baseline = CellFlags::smoke_box(64, 64).solid_count();
        let with_extra = (0..20)
            .filter(|&s| spec.generate(64, 64, &src, s).solid_count() > baseline)
            .count();
        assert!(with_extra >= 10, "only {with_extra}/20 seeds placed obstacles");
    }

    #[test]
    fn domain_stays_mostly_fluid() {
        let spec = GeometrySpec::default();
        let src = SmokeSource::plume_inlet(64, 64);
        for seed in 0..10 {
            let flags = spec.generate(64, 64, &src, seed);
            let fluid_frac = flags.fluid_count() as f64 / (64.0 * 64.0);
            assert!(fluid_frac > 0.6, "seed {seed}: fluid fraction {fluid_frac}");
        }
    }
}
