//! Quickstart: build the Smart-fluidnet offline pipeline (cached) and
//! run one fluid-simulation problem under the adaptive runtime.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use smart_fluidnet::core::{OfflineConfig, SmartFluidnet};
use smart_fluidnet::runtime::SchedulerEvent;
use smart_fluidnet::workload::ProblemSet;

fn main() {
    // The offline phase: generate the model family from the base
    // network, train every member, select Pareto candidates, train the
    // success-rate MLP and build the KNN quality database. Artifacts
    // are cached under target/sfn-artifacts, so the second run is
    // instant.
    println!("building Smart-fluidnet offline pipeline (cached)...");
    let config = OfflineConfig::quick().from_env();
    let framework = SmartFluidnet::build_cached(&config);

    let (q, t) = framework.requirement();
    println!("derived user requirement U(q, t): quality loss <= {q:.4}, time <= {t:.3}s");
    println!("runtime model candidates:");
    for c in &framework.artifacts().selected {
        println!(
            "  {:<4} P(meet U)={:.2}  offline qloss={:.4}  exec={:.4}s",
            c.name, c.probability, c.quality_loss, c.exec_time
        );
    }

    // The online phase: one turbulent smoke-plume problem.
    let steps = 32;
    let problem = ProblemSet::evaluation(config.eval_grid, 1).problem(0);
    println!("\nrunning problem (grid {0}x{0}, {steps} steps)...", config.eval_grid);
    let outcome = framework.run_problem(&problem, steps);

    println!("final CumDivNorm: {:.3}", outcome.cum_div_norm.last().unwrap());
    println!("restarted with PCG: {}", outcome.restarted);
    for e in &outcome.events {
        match e {
            SchedulerEvent::Switch {
                step,
                from,
                to,
                predicted_loss,
            } => println!("  step {step}: switch {from} -> {to} (predicted Qloss {predicted_loss:.4})"),
            SchedulerEvent::Restart {
                step,
                predicted_loss,
            } => println!("  step {step}: restart with PCG (predicted Qloss {predicted_loss:.4})"),
            SchedulerEvent::Quarantine { step, model, strikes, until_interval } => println!(
                "  step {step}: quarantine {model} (strike {strikes}, until {until_interval:?})"
            ),
            SchedulerEvent::Rollback { step, to_step, from, to } => println!(
                "  step {step}: rollback to step {to_step}, {from} -> {to}"
            ),
            SchedulerEvent::Degrade { step, barred } => {
                println!("  step {step}: degraded to PCG ({barred} models barred)")
            }
        }
    }
    println!("\nprojection time per model:");
    for (name, (&secs, &steps)) in outcome
        .model_names
        .iter()
        .zip(outcome.time_per_model.iter().zip(&outcome.steps_per_model))
    {
        if steps > 0 {
            println!("  {name:<4} {steps:>3} steps, {secs:.4}s");
        }
    }
    println!("\ndone — smoke mass in final frame: {:.2}", outcome.density.sum());
}
