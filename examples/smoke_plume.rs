//! Smoke-plume demo: the paper's 2-D Eulerian smoke simulation,
//! rendered as ASCII frames, comparing the exact PCG projection with a
//! (quickly trained) Tompson-style neural surrogate.
//!
//! ```sh
//! cargo run --release --example smoke_plume
//! ```

use smart_fluidnet::grid::{CellFlags, Field2};
use smart_fluidnet::sim::{quality_loss, ExactProjector, SimConfig, Simulation};
use smart_fluidnet::solver::{MicPreconditioner, PcgSolver};
use smart_fluidnet::surrogate::{
    tompson_spec, train_projection_model, NeuralProjector, ProjectionDataset, TrainConfig,
};
use smart_fluidnet::workload::ProblemSet;

const GRID: usize = 48;
const STEPS: usize = 48;

fn render(density: &Field2, flags: &CellFlags) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let mut out = String::new();
    // Terminal cells are taller than wide: sample every other row, top
    // to bottom (grid j grows upward).
    for j in (0..density.h()).rev().step_by(2) {
        for i in 0..density.w() {
            if flags.is_solid(i, j) {
                out.push('█');
            } else {
                let d = density.at(i, j).clamp(0.0, 1.0);
                let idx = (d * (RAMP.len() - 1) as f64).round() as usize;
                out.push(RAMP[idx] as char);
            }
        }
        out.push('\n');
    }
    out
}

fn main() {
    // An obstacle-laden smoke box.
    let cfg = SimConfig::plume(GRID);
    let mut flags = CellFlags::smoke_box(GRID, GRID);
    flags.add_solid_disc(GRID as f64 * 0.5, GRID as f64 * 0.55, GRID as f64 * 0.08);

    // Reference run: MICCG(0), the paper's exact method.
    println!("running PCG (MICCG(0)) reference simulation...");
    let mut pcg_sim = Simulation::new(cfg, flags.clone());
    let mut pcg = ExactProjector::labelled(
        PcgSolver::new(MicPreconditioner::default(), 1e-7, 100_000),
        "pcg",
    );
    let pcg_stats = pcg_sim.run(STEPS, &mut pcg);
    let pcg_secs: f64 = pcg_stats.iter().map(|s| s.projection_time.as_secs_f64()).sum();

    // Quickly train a small Tompson-style surrogate and rerun.
    println!("training a Tompson-style surrogate (small budget)...");
    let dataset = ProjectionDataset::generate(&ProblemSet::training(32, 3), 12, 2);
    let (net, report) = train_projection_model(
        &tompson_spec(8),
        &dataset,
        &TrainConfig {
            epochs: 60,
            ..Default::default()
        },
    );
    println!(
        "  DivNorm training loss: {:.4} -> {:.4}",
        report.loss_curve[0], report.final_loss
    );
    let mut nn_sim = Simulation::new(cfg, flags.clone());
    let mut nn = NeuralProjector::new(net, "tompson");
    let nn_stats = nn_sim.run(STEPS, &mut nn);
    let nn_secs: f64 = nn_stats.iter().map(|s| s.projection_time.as_secs_f64()).sum();

    println!("\n=== PCG frame (step {STEPS}) ===");
    print!("{}", render(pcg_sim.density(), &flags));
    println!("\n=== neural-surrogate frame (step {STEPS}) ===");
    print!("{}", render(nn_sim.density(), &flags));

    let qloss = quality_loss(nn_sim.density(), pcg_sim.density());
    println!("\nprojection time : PCG {pcg_secs:.3}s vs NN {nn_secs:.3}s  ({:.1}x speedup)", pcg_secs / nn_secs.max(1e-12));
    println!("quality loss    : {qloss:.5}  (Eq. 3 vs the PCG frame)");
    println!(
        "final DivNorm   : PCG {:.2e} vs NN {:.2e}",
        pcg_stats.last().unwrap().div_norm,
        nn_stats.last().unwrap().div_norm
    );
}
