//! Model zoo: generate the paper's §4 model family structurally (no
//! training) and show the cost spectrum the four transformation
//! operations create, plus the FLOP-based Pareto preview.
//!
//! ```sh
//! cargo run --release --example model_zoo
//! ```

use smart_fluidnet::modelgen::{generate_family, FamilyConfig, Origin, SearchConfig};
use smart_fluidnet::nn::flops::spec_flops;
use smart_fluidnet::stats::TextTable;
use smart_fluidnet::surrogate::{tompson_default, ProjectionDataset};
use smart_fluidnet::workload::ProblemSet;

fn origin_tag(o: &Origin) -> &'static str {
    match o {
        Origin::Base => "base",
        Origin::Search => "search",
        Origin::Shallow { .. } => "shallow",
        Origin::Narrow { .. } => "narrow",
        Origin::Pooling { .. } => "pooling",
        Origin::Dropout { .. } => "dropout",
    }
}

fn main() {
    let base = tompson_default();
    println!("base model: {}", base.render());
    println!("parameters: {}", base.param_count());

    // The full paper schedule (133-ish models); search disabled here to
    // keep this example training-free.
    let cfg = FamilyConfig {
        search_models: 0,
        ..Default::default()
    };
    let dataset = ProjectionDataset::generate(&ProblemSet::training(16, 1), 2, 1);
    let family = generate_family(&base, &dataset, &SearchConfig::fast(), &cfg);
    println!("\ngenerated {} models via the §4 schedule", family.len());

    // Count per origin.
    let mut counts = std::collections::BTreeMap::new();
    for m in &family {
        *counts.entry(origin_tag(&m.origin)).or_insert(0usize) += 1;
    }
    for (tag, n) in &counts {
        println!("  {tag:<8} {n}");
    }

    // FLOP spectrum at the paper's smallest grid.
    let input = (2usize, 128usize, 128usize);
    let mut rows: Vec<(u64, &str, String, usize)> = family
        .iter()
        .map(|m| {
            (
                spec_flops(&m.spec, input).expect("valid spec"),
                origin_tag(&m.origin),
                m.name.clone(),
                m.spec.param_count(),
            )
        })
        .collect();
    rows.sort_by_key(|r| r.0);

    let mut table = TextTable::new(["model", "origin", "MFLOP/step @128²", "params"]);
    // Cheapest five, the base, and the most expensive five.
    let base_flops = spec_flops(&base, input).unwrap();
    for (f, tag, name, params) in rows.iter().take(5) {
        table.row([
            name.clone(),
            tag.to_string(),
            format!("{:.1}", *f as f64 / 1e6),
            params.to_string(),
        ]);
    }
    table.row(["...".into(), String::new(), String::new(), String::new()]);
    table.row([
        "M0 (base)".into(),
        "base".into(),
        format!("{:.1}", base_flops as f64 / 1e6),
        base.param_count().to_string(),
    ]);
    table.row(["...".into(), String::new(), String::new(), String::new()]);
    for (f, tag, name, params) in rows.iter().rev().take(5).rev() {
        table.row([
            name.clone(),
            tag.to_string(),
            format!("{:.1}", *f as f64 / 1e6),
            params.to_string(),
        ]);
    }
    println!("\n{table}");

    let min = rows.first().unwrap().0 as f64;
    let max = rows.last().unwrap().0 as f64;
    println!(
        "cost spread: {:.1}x between the cheapest and the most expensive member",
        max / min
    );
    println!(
        "base sits at {:.1}% of the most expensive model's cost",
        100.0 * base_flops as f64 / max
    );
}
