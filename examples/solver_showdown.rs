//! Solver showdown: every Poisson backend on the same pressure
//! problem — iterations, FLOPs, wall time and residual, across grid
//! sizes. This is the substrate comparison behind the paper's claim
//! that the PCG solve dominates simulation time (70-80%).
//!
//! ```sh
//! cargo run --release --example solver_showdown
//! ```

use smart_fluidnet::grid::{CellFlags, Field2};
use smart_fluidnet::sim::{ExactProjector, SimConfig, Simulation};
use smart_fluidnet::solver::{
    divergence_rhs, CgSolver, JacobiSolver, MicPreconditioner, MultigridSolver, PcgSolver,
    PoissonProblem, PoissonSolver, SorSolver,
};
use smart_fluidnet::stats::TextTable;
use std::time::Instant;

/// A realistic mid-simulation right-hand side at grid `n`.
fn rhs_at(n: usize) -> (CellFlags, Field2) {
    let cfg = SimConfig::plume(n);
    let mut flags = CellFlags::smoke_box(n, n);
    flags.add_solid_disc(n as f64 * 0.5, n as f64 * 0.6, n as f64 * 0.07);
    let mut sim = Simulation::new(cfg, flags.clone());
    let mut proj = ExactProjector::labelled(
        PcgSolver::new(MicPreconditioner::default(), 1e-6, 200_000),
        "pcg",
    );
    sim.run(8, &mut proj);
    let mut vel = sim.velocity().clone();
    smart_fluidnet::sim::forces::add_buoyancy(&mut vel, sim.density(), &flags, 1.0, cfg.dt);
    let div = vel.divergence(&flags);
    let b = divergence_rhs(&div, &flags, cfg.dt);
    (flags, b)
}

fn main() {
    for n in [32usize, 64, 128] {
        let (flags, b) = rhs_at(n);
        let problem = PoissonProblem::new(&flags, 1.0);
        println!(
            "\n=== grid {n}x{n} ({} fluid cells, tolerance 1e-6) ===",
            problem.unknowns()
        );
        let mut table = TextTable::new(["solver", "iterations", "MFLOP", "time (ms)", "rel residual"]);
        let solvers: Vec<(&str, Box<dyn PoissonSolver>)> = vec![
            (
                "Jacobi (w=2/3)",
                Box::new(JacobiSolver::new(2.0 / 3.0, 1e-6, 2_000_000)),
            ),
            ("SOR (w=1.7)", Box::new(SorSolver::new(1.7, 1e-6, 500_000))),
            ("CG", Box::new(CgSolver::plain(1e-6, 200_000))),
            (
                "PCG + MIC(0)",
                Box::new(PcgSolver::new(MicPreconditioner::default(), 1e-6, 200_000)),
            ),
            (
                "Multigrid V(2,2)",
                Box::new(MultigridSolver {
                    tolerance: 1e-6,
                    ..Default::default()
                }),
            ),
        ];
        for (name, solver) in solvers {
            let t0 = Instant::now();
            let (_, stats) = solver.solve(&problem, &b);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            table.row([
                name.to_string(),
                format!(
                    "{}{}",
                    stats.iterations,
                    if stats.converged { "" } else { " (cap)" }
                ),
                format!("{:.1}", stats.flops as f64 / 1e6),
                format!("{ms:.2}"),
                format!("{:.1e}", stats.rel_residual),
            ]);
        }
        println!("{table}");
    }
    println!(
        "\nMICCG(0) is mantaflow's production solver and the paper's exact \
         baseline;\nthe neural surrogates replace exactly this solve."
    );
}
