//! Quality-SLA walkthrough — the paper's Figure 7 example.
//!
//! A user states a requirement `U(q, t)`; the runtime starts with the
//! model the MLP rates most likely to satisfy it, then every check
//! interval predicts the final quality loss (CumDivNorm regression +
//! KNN) and switches models — or restarts with PCG — to honour the
//! requirement. This example prints the full decision trace for three
//! different quality targets over the same input problem.
//!
//! ```sh
//! cargo run --release --example quality_sla
//! ```

use smart_fluidnet::core::{OfflineConfig, SmartFluidnet};
use smart_fluidnet::runtime::{RuntimeConfig, SchedulerEvent};
use smart_fluidnet::sim::{quality_loss, ExactProjector};
use smart_fluidnet::solver::{MicPreconditioner, PcgSolver};
use smart_fluidnet::workload::ProblemSet;

fn main() {
    let config = OfflineConfig::quick().from_env();
    let framework = SmartFluidnet::build_cached(&config);
    let (q_base, _) = framework.requirement();
    let steps = 32;

    let problem = ProblemSet::evaluation(config.eval_grid, 2).problem(1);

    // The PCG ground truth for judging the outcomes.
    let mut reference = problem.simulation();
    let mut pcg = ExactProjector::labelled(
        PcgSolver::new(MicPreconditioner::default(), 1e-7, 100_000),
        "pcg",
    );
    reference.run(steps, &mut pcg);

    // Three SLAs: loose, the derived baseline, and near-impossible.
    for (label, q) in [
        ("loose   (4x baseline)", q_base * 4.0),
        ("baseline (Tompson avg)", q_base),
        ("strict  (baseline/50) ", q_base / 50.0),
    ] {
        println!("\n=== SLA {label}: quality loss <= {q:.5} ===");
        let mut rt = framework.runtime_with(RuntimeConfig {
            total_steps: steps,
            quality_target: q,
            ..Default::default()
        });
        let out = rt.run(problem.simulation());
        for e in &out.events {
            match e {
                SchedulerEvent::Switch {
                    step,
                    from,
                    to,
                    predicted_loss,
                } => println!("  step {step:>3}: {from} -> {to}   (predicted {predicted_loss:.5})"),
                SchedulerEvent::Restart {
                    step,
                    predicted_loss,
                } => println!("  step {step:>3}: RESTART with PCG (predicted {predicted_loss:.5})"),
                SchedulerEvent::Quarantine { step, model, strikes, until_interval } => println!(
                    "  step {step:>3}: QUARANTINE {model} (strike {strikes}, until {until_interval:?})"
                ),
                SchedulerEvent::Rollback { step, to_step, from, to } => println!(
                    "  step {step:>3}: ROLLBACK to step {to_step}, {from} -> {to}"
                ),
                SchedulerEvent::Degrade { step, barred } => println!(
                    "  step {step:>3}: DEGRADE to PCG ({barred} models barred)"
                ),
            }
        }
        if out.events.is_empty() {
            println!("  (no switches: first model held for the whole run)");
        }
        let achieved = quality_loss(&out.density, reference.density());
        println!(
            "  achieved quality loss {achieved:.5}  -> requirement {}",
            if achieved <= q { "MET" } else { "MISSED" }
        );
        let used: Vec<String> = out
            .model_names
            .iter()
            .zip(&out.steps_per_model)
            .filter(|(_, &s)| s > 0)
            .map(|(n, &s)| format!("{n}({s})"))
            .collect();
        println!(
            "  models used: {}{}",
            used.join(", "),
            if out.restarted { "  + PCG restart" } else { "" }
        );
    }
}
